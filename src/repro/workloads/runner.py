"""System assembly and run orchestration.

:class:`SystemBuilder` wires a complete simulated deployment — scheduler,
FIFO network, offline channel, keystore, server (correct or Byzantine),
clients, history recorder — and :class:`StorageSystem` drives it.  All
tests, examples and benchmarks build their worlds through this module, so
a deployment is always described by a handful of declarative knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.common.errors import ConfigurationError
from repro.common.types import ClientId
from repro.crypto.keystore import KeyStore
from repro.history.history import History
from repro.history.recorder import HistoryRecorder
from repro.sim.faults import ServerFaultInjector
from repro.sim.network import FixedLatency, LatencyModel, Network
from repro.sim.offline import OfflineChannel
from repro.sim.scheduler import Scheduler
from repro.sim.trace import SimTrace
from repro.store.engine import make_engine
from repro.ustor.client import UstorClient
from repro.ustor.server import UstorServer

#: Builds a server given (num_clients, name); lets tests inject Byzantine ones.
ServerFactory = Callable[[int, str], UstorServer]


@dataclass
class StorageSystem:
    """A fully wired simulated deployment."""

    scheduler: Scheduler
    network: Network
    offline: OfflineChannel
    server: UstorServer
    clients: list
    recorder: HistoryRecorder
    trace: SimTrace
    keystore: KeyStore
    faust_clients: list = field(default_factory=list)

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Advance the simulation; returns the number of events fired."""
        return self.scheduler.run(until=until, max_events=max_events)

    def run_until(
        self, predicate: Callable[[], bool], timeout: float | None = None
    ) -> bool:
        return self.scheduler.run_until(predicate, timeout=timeout)

    def run_until_quiescent(
        self, check_every: float = 1.0, timeout: float = 10_000.0
    ) -> None:
        """Run until no operation is pending at any client (or timeout)."""

        def quiet() -> bool:
            return all(
                not getattr(c, "busy", False) for c in self.clients if not c.crashed
            )

        self.run_until(quiet, timeout=timeout)

    def history(self) -> History:
        """The recorded history (pending operations included)."""
        return self.recorder.history()

    def profile(self) -> dict:
        """Machine-readable performance profile of this deployment
        (:func:`repro.perf.system_profile`): scheduler/server/client
        counters plus hot-path cache effectiveness."""
        from repro.perf.profile import system_profile

        return system_profile(self)

    def client(self, client_id: ClientId):
        return self.clients[client_id]

    def crash_client_at(self, client_id: ClientId, time: float) -> None:
        """Schedule a crash-stop of one client at an absolute virtual time."""
        node = self.clients[client_id]
        self.scheduler.schedule_at(
            time, lambda: (node.crash(), self.trace.note(time, node.name, "crash"))
        )

    # -- server faults (the storage/recovery axis) --------------------- #

    def crash_server_at(self, time: float) -> None:
        """Schedule a server crash at an absolute virtual time."""
        self._server_faults().crash_at(time)

    def restart_server_at(self, time: float) -> None:
        """Schedule a server restart (engine recovery) at a virtual time."""
        self._server_faults().restart_at(time)

    def server_outage(self, start: float, duration: float) -> None:
        """One crash-recovery window: server down over [start, start+duration)."""
        self._server_faults().outage(start, duration)

    def _server_faults(self) -> ServerFaultInjector:
        return ServerFaultInjector(self.scheduler, self.server, self.trace)

    @property
    def now(self) -> float:
        return self.scheduler.now


class SystemBuilder:
    """Declarative construction of a :class:`StorageSystem`.

    >>> system = SystemBuilder(num_clients=2, seed=1).build()
    >>> system.clients[0].write(b"hello")
    >>> system.run(until=10)  # doctest: +SKIP
    """

    def __init__(
        self,
        num_clients: int,
        seed: int = 0,
        scheme: str = "hmac",
        latency: LatencyModel | None = None,
        offline_latency: LatencyModel | None = None,
        server_factory: ServerFactory | None = None,
        commit_piggyback: bool = False,
        server_name: str = "S",
        storage: str | Callable = "memory",
        scheduler: Scheduler | None = None,
        trace: SimTrace | None = None,
    ) -> None:
        if num_clients < 1:
            raise ConfigurationError("need at least one client")
        self.num_clients = num_clients
        self.seed = seed
        self.scheme = scheme
        self.latency = latency or FixedLatency(1.0)
        self.offline_latency = offline_latency or FixedLatency(5.0)
        self.storage = storage
        # A custom factory owns its server's durability; the default server
        # persists through the engine ``storage`` selects.
        self.server_factory = server_factory or (
            lambda n, name: UstorServer(n, name=name, engine=make_engine(storage, n))
        )
        self.commit_piggyback = commit_piggyback
        self.server_name = server_name
        # Multi-server topologies (repro.cluster) build several deployments
        # over ONE event loop: pass the shared scheduler (and optionally a
        # shared trace) so every shard lives in the same virtual time.
        self._shared_scheduler = scheduler
        self._shared_trace = trace

    def _core(self):
        scheduler = self._shared_scheduler or Scheduler(seed=self.seed)
        trace = self._shared_trace or SimTrace()
        network = Network(scheduler, default_latency=self.latency, trace=trace)
        offline = OfflineChannel(scheduler, latency=self.offline_latency, trace=trace)
        keystore = KeyStore(self.num_clients, scheme=self.scheme)
        recorder = HistoryRecorder()
        server = self.server_factory(self.num_clients, self.server_name)
        network.register(server)
        return scheduler, trace, network, offline, keystore, recorder, server

    def build(self) -> StorageSystem:
        """A plain USTOR deployment (no fail-aware layer)."""
        scheduler, trace, network, offline, keystore, recorder, server = self._core()
        clients = []
        for i in range(self.num_clients):
            client = UstorClient(
                client_id=i,
                num_clients=self.num_clients,
                signer=keystore.signer(i),
                server_name=self.server_name,
                recorder=recorder,
                commit_piggyback=self.commit_piggyback,
            )
            network.register(client)
            offline.register(client)
            clients.append(client)
        return StorageSystem(
            scheduler=scheduler,
            network=network,
            offline=offline,
            server=server,
            clients=clients,
            recorder=recorder,
            trace=trace,
            keystore=keystore,
        )

    def build_faust(self, **faust_kwargs) -> StorageSystem:
        """A FAUST deployment: USTOR plus the fail-aware layer (Section 6)."""
        from repro.faust.client import FaustClient

        scheduler, trace, network, offline, keystore, recorder, server = self._core()
        clients = []
        for i in range(self.num_clients):
            client = FaustClient(
                client_id=i,
                num_clients=self.num_clients,
                signer=keystore.signer(i),
                server_name=self.server_name,
                recorder=recorder,
                commit_piggyback=self.commit_piggyback,
                **faust_kwargs,
            )
            network.register(client)
            offline.register(client)
            client.attach_offline(offline)
            client.start()
            clients.append(client)
        return StorageSystem(
            scheduler=scheduler,
            network=network,
            offline=offline,
            server=server,
            clients=clients,
            recorder=recorder,
            trace=trace,
            keystore=keystore,
            faust_clients=list(clients),
        )
