"""System assembly and run orchestration.

:class:`SystemBuilder` wires a complete simulated deployment — scheduler,
FIFO network, offline channel, keystore, server (correct or Byzantine),
clients, history recorder — and :class:`StorageSystem` drives it.  All
tests, examples and benchmarks build their worlds through this module, so
a deployment is always described by a handful of declarative knobs.

:class:`IncrementalAuditor` adds periodic consistency audits to any
deployment (single-server or cluster): streaming checkers subscribe to
the live recorder(s) and a scheduler timer snapshots their verdicts
every ``every`` time units — O(operations since the last audit) per
check instead of the full-history re-check an offline audit costs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.common.errors import ConfigurationError
from repro.common.types import ClientId
from repro.crypto.keystore import KeyStore
from repro.history.history import History
from repro.history.recorder import HistoryRecorder
from repro.obs.registry import COUNT_BUCKETS, get_registry
from repro.sim.faults import ServerFaultInjector
from repro.sim.network import FixedLatency, LatencyModel, Network
from repro.sim.offline import OfflineChannel
from repro.sim.scheduler import Scheduler
from repro.sim.timers import PeriodicTimer
from repro.sim.trace import SimTrace
from repro.store.engine import make_engine
from repro.ustor.client import UstorClient
from repro.ustor.server import UstorServer

if TYPE_CHECKING:  # pragma: no cover - typing only (api imports runner)
    from repro.api.config import BatchingPolicy

#: Builds a server given (num_clients, name); lets tests inject Byzantine ones.
ServerFactory = Callable[[int, str], UstorServer]


@dataclass
class StorageSystem:
    """A fully wired simulated deployment."""

    scheduler: Scheduler
    network: Network
    offline: OfflineChannel
    server: UstorServer
    clients: list
    recorder: HistoryRecorder
    trace: SimTrace
    keystore: KeyStore
    faust_clients: list = field(default_factory=list)
    #: The throughput pipeline this deployment was built with (``None``
    #: = unbatched); sessions read their flush policy from here.
    batching: "BatchingPolicy | None" = None
    #: Assign a :class:`repro.obs.tracing.SpanLog` here *before* opening
    #: sessions to collect per-operation spans (sessions capture it once).
    span_log: object | None = None
    #: The full replica group (``[server]`` when unreplicated): every
    #: server of this deployment's shard, in replica order.  ``server``
    #: stays the first replica so single-server call sites run unchanged.
    replica_servers: list = field(default_factory=list)

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Advance the simulation; returns the number of events fired."""
        return self.scheduler.run(until=until, max_events=max_events)

    def run_until(
        self, predicate: Callable[[], bool], timeout: float | None = None
    ) -> bool:
        """Run until ``predicate()`` holds; False on timeout."""
        return self.scheduler.run_until(predicate, timeout=timeout)

    def run_until_quiescent(
        self, check_every: float = 1.0, timeout: float = 10_000.0
    ) -> None:
        """Run until no operation is pending at any client (or timeout).

        ``check_every`` is the poll cadence: the O(clients) all-idle scan
        re-runs only once virtual time has advanced by that much since the
        last scan (``run_until`` evaluates its predicate after *every*
        event, so an unthrottled scan would dominate busy runs).  The
        system may therefore run up to ``check_every`` time units past
        the first quiescent instant before this call returns.
        """
        if check_every <= 0:
            raise ConfigurationError("check_every must be positive")

        last_scan = [float("-inf")]

        def quiet() -> bool:
            now = self.scheduler.now
            if now - last_scan[0] < check_every:
                return False
            last_scan[0] = now
            return all(
                not getattr(c, "busy", False) for c in self.clients if not c.crashed
            )

        self.run_until(quiet, timeout=timeout)

    def history(self) -> History:
        """The recorded history (pending operations included)."""
        return self.recorder.history()

    def attach_audit(
        self,
        every: float = 50.0,
        checks: tuple[str, ...] = ("linearizability", "causal"),
    ) -> "IncrementalAuditor":
        """Start periodic O(delta) consistency audits on this deployment."""
        return IncrementalAuditor(self, every=every, checks=checks)

    def profile(self) -> dict:
        """Machine-readable performance profile of this deployment
        (:func:`repro.perf.system_profile`): scheduler/server/client
        counters plus hot-path cache effectiveness."""
        from repro.perf.profile import system_profile

        return system_profile(self)

    def client(self, client_id: ClientId):
        """The protocol client with id ``client_id``."""
        return self.clients[client_id]

    def crash_client_at(self, client_id: ClientId, time: float) -> None:
        """Schedule a crash-stop of one client at an absolute virtual time."""
        node = self.clients[client_id]
        self.scheduler.schedule_at(
            time, lambda: (node.crash(), self.trace.note(time, node.name, "crash"))
        )

    # -- server faults (the storage/recovery axis) --------------------- #

    def crash_server_at(self, time: float) -> None:
        """Schedule a server crash at an absolute virtual time."""
        self._server_faults().crash_at(time)

    def restart_server_at(self, time: float) -> None:
        """Schedule a server restart (engine recovery) at a virtual time."""
        self._server_faults().restart_at(time)

    def server_outage(self, start: float, duration: float) -> None:
        """One crash-recovery window: server down over [start, start+duration).

        On a replica group the window hits **every** replica — a
        correlated outage, matching the single-server semantics "the
        service is down".  Use :meth:`replica_outage` to crash one
        replica (the fault an honest majority masks).
        """
        for index in range(len(self.replica_servers) or 1):
            self._server_faults(index).outage(start, duration)

    def replica_outage(self, replica: int, start: float, duration: float) -> None:
        """One crash-recovery window for a single replica of the group."""
        self._server_faults(replica).outage(start, duration)

    def crash_replica_at(self, replica: int, time: float) -> None:
        """Schedule a crash of one replica at an absolute virtual time."""
        self._server_faults(replica).crash_at(time)

    def restart_replica_at(self, replica: int, time: float) -> None:
        """Schedule one replica's restart (engine recovery)."""
        self._server_faults(replica).restart_at(time)

    def _server_faults(self, replica: int = 0) -> ServerFaultInjector:
        group = self.replica_servers or [self.server]
        if not 0 <= replica < len(group):
            raise ConfigurationError(
                f"replica {replica} out of range: the group has "
                f"{len(group)} replica(s)"
            )
        return ServerFaultInjector(self.scheduler, group[replica], self.trace)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.scheduler.now


@dataclass(frozen=True)
class AuditRecord:
    """One periodic audit: when it ran, what each checker said, and how
    many operations were newly streamed since the last audit (the delta
    — counted once per consistency domain, not once per checker)."""

    time: float
    verdicts: dict
    delta_ops: int

    @property
    def ok(self) -> bool:
        """Did every checker pass at this audit?"""
        return all(result.ok for result in self.verdicts.values())


class IncrementalAuditor:
    """Periodic O(delta) consistency audits over a running deployment.

    Streaming checkers (:mod:`repro.consistency.incremental`) subscribe
    to the deployment's recorder — one checker set per shard on a
    cluster, since each shard is its own consistency domain — and a
    repeating scheduler event snapshots their verdicts every ``every``
    virtual time units.  Because the checkers do their work as operations
    stream in, an audit tick only *reads* verdicts: the per-audit cost is
    O(operations appended since the last audit), not O(history).

    ``checks`` names any of ``"linearizability"`` / ``"causal"``.  Audit
    snapshots accumulate in :attr:`audits` (shard-qualified keys like
    ``"shard0.causal"`` on clusters); :meth:`final` takes one last
    snapshot and returns it.
    """

    def __init__(
        self,
        system,
        every: float = 50.0,
        checks: tuple[str, ...] = ("linearizability", "causal"),
    ) -> None:
        from repro.consistency.incremental import attach_incremental_checkers

        if every <= 0:
            raise ConfigurationError("audit cadence must be positive")
        if not checks:
            raise ConfigurationError(
                "an auditor needs at least one check "
                "('linearizability' and/or 'causal')"
            )
        self._system = system
        self.every = every
        self.checks = tuple(checks)
        self._checkers: dict[str, object] = {}
        #: Checkers grouped per consistency domain (one recorder each):
        #: all of a domain's checkers see the same operation stream, so
        #: the domain's delta is counted once, not once per checker.
        self._domains: list[list] = []
        shards = getattr(system, "shards", None)
        if shards is not None:
            for index, shard in enumerate(shards):
                attached = attach_incremental_checkers(shard.recorder, self.checks)
                for name, checker in attached.items():
                    self._checkers[f"shard{index}.{name}"] = checker
                self._domains.append(list(attached.values()))
        else:
            attached = attach_incremental_checkers(system.recorder, self.checks)
            self._checkers.update(attached)
            self._domains.append(list(attached.values()))
        self._ops_at_last_audit = 0
        #: Periodic snapshots, in audit order.
        self.audits: list[AuditRecord] = []
        registry = get_registry()
        self._obs_audits = registry.counter("audit.audits")
        self._obs_delta = registry.histogram("audit.delta_ops", COUNT_BUCKETS)
        self._obs_ok = registry.gauge("audit.ok")
        self._timer = PeriodicTimer(system.scheduler, every, self.snapshot)
        self._timer.start()

    def _streamed_ops(self) -> int:
        # Writes count at invocation and reads at response in every
        # checker of a domain, so any one checker's tally is the domain's
        # operation-event count; max() tolerates uneven check sets.
        return sum(
            max(c.ops_processed for c in domain) for domain in self._domains
        )

    def snapshot(self) -> AuditRecord:
        """Take one audit now (also used by the periodic tick)."""
        verdicts = {
            name: checker.result() for name, checker in self._checkers.items()
        }
        streamed = self._streamed_ops()
        record = AuditRecord(
            time=self._system.scheduler.now,
            verdicts=verdicts,
            delta_ops=streamed - self._ops_at_last_audit,
        )
        self._ops_at_last_audit = streamed
        self.audits.append(record)
        self._obs_audits.inc()
        self._obs_delta.observe(record.delta_ops)
        self._obs_ok.set(1.0 if record.ok else 0.0)
        return record

    def stop(self) -> None:
        """Cancel the periodic tick (snapshots already taken are kept)."""
        self._timer.stop()

    def final(self) -> AuditRecord:
        """Stop ticking and return one last audit over everything seen."""
        self.stop()
        return self.snapshot()

    # -- outcomes -------------------------------------------------------- #

    @property
    def ok(self) -> bool:
        """Has every checker passed at every audit so far? (O(1) state —
        checkers are sticky, so the latest verdicts subsume the past.)"""
        return all(checker.result().ok for checker in self._checkers.values())

    @property
    def checkers(self) -> dict:
        """The live checkers, by (shard-qualified) check name."""
        return dict(self._checkers)

    def verdicts(self) -> dict:
        """The current verdict of every checker, by check name."""
        return {name: c.result() for name, c in self._checkers.items()}


class SystemBuilder:
    """Declarative construction of a :class:`StorageSystem`.

    >>> system = SystemBuilder(num_clients=2, seed=1).build()
    >>> system.clients[0].write(b"hello")
    >>> system.run(until=10)  # doctest: +SKIP
    """

    def __init__(
        self,
        num_clients: int,
        seed: int = 0,
        scheme: str = "hmac",
        latency: LatencyModel | None = None,
        offline_latency: LatencyModel | None = None,
        server_factory: ServerFactory | None = None,
        commit_piggyback: bool = False,
        server_name: str = "S",
        storage: str | Callable = "memory",
        scheduler: Scheduler | None = None,
        trace: SimTrace | None = None,
        batching: "BatchingPolicy | None" = None,
        latency_seed: int | None = None,
        replicas: int = 1,
        quorum: int | None = None,
        counter: str | None = None,
        replica_server_factories: dict | None = None,
    ) -> None:
        if num_clients < 1:
            raise ConfigurationError("need at least one client")
        if replicas < 1:
            raise ConfigurationError("need at least one replica")
        if counter not in (None, "volatile", "durable"):
            raise ConfigurationError(
                f"counter must be None, 'volatile' or 'durable', got {counter!r}"
            )
        if replicas > 1 and not isinstance(storage, (str, Callable)):
            raise ConfigurationError(
                "a replica group needs one engine per replica: pass a "
                "storage name or factory, not a ready engine instance"
            )
        for index in replica_server_factories or {}:
            if not 0 <= index < replicas:
                raise ConfigurationError(
                    f"replica_server_factories names replica {index!r} but "
                    f"the group has {replicas} replica(s)"
                )
        self.num_clients = num_clients
        self.seed = seed
        self.scheme = scheme
        self.latency = latency or FixedLatency(1.0)
        self.offline_latency = offline_latency or FixedLatency(5.0)
        self.storage = storage
        self.batching = batching
        # Dedicated latency-RNG stream for this deployment's network
        # (``None`` = share the scheduler's stream, byte-identical to a
        # build that predates the knob).  The cluster backend derives one
        # per shard so shards draw independent latency samples.
        self.latency_seed = latency_seed
        self.replicas = replicas
        self.quorum = quorum
        self.counter = counter
        self.replica_server_factories = dict(replica_server_factories or {})
        # A custom factory owns its server's durability (and its own
        # batching behaviour); the default server persists through the
        # engine ``storage`` selects and group-commits when the batching
        # policy asks for it.
        group_commit = bool(batching is not None and batching.group_commit)
        self.server_factory = server_factory or (
            lambda n, name: UstorServer(
                n,
                name=name,
                engine=make_engine(storage, n),
                group_commit=group_commit,
            )
        )
        self.commit_piggyback = commit_piggyback
        self.server_name = server_name
        # Multi-server topologies (repro.cluster) build several deployments
        # over ONE event loop: pass the shared scheduler (and optionally a
        # shared trace) so every shard lives in the same virtual time.
        self._shared_scheduler = scheduler
        self._shared_trace = trace

    def _replica_names(self) -> list[str]:
        if self.replicas == 1:
            return [self.server_name]
        return [f"{self.server_name}/r{k}" for k in range(self.replicas)]

    def _core(self):
        scheduler = self._shared_scheduler or Scheduler(seed=self.seed)
        trace = self._shared_trace or SimTrace()
        network = Network(
            scheduler,
            default_latency=self.latency,
            trace=trace,
            batching=bool(self.batching is not None and self.batching.transport),
            rng=(
                random.Random(self.latency_seed)
                if self.latency_seed is not None
                else None
            ),
        )
        offline = OfflineChannel(scheduler, latency=self.offline_latency, trace=trace)
        keystore = KeyStore(self.num_clients, scheme=self.scheme)
        recorder = HistoryRecorder()
        servers = []
        for index, name in enumerate(self._replica_names()):
            factory = self.replica_server_factories.get(index, self.server_factory)
            server = factory(self.num_clients, name)
            if self.counter is not None:
                from repro.replica.counter import MonotonicCounter

                server.attach_counter(
                    MonotonicCounter(name, durable=self.counter == "durable")
                )
            network.register(server)
            servers.append(server)
        return scheduler, trace, network, offline, keystore, recorder, servers

    def _client_replica_kwargs(self) -> dict:
        """Replica-group knobs every protocol client is built with."""
        if self.replicas == 1:
            return {"counter": self.counter is not None}
        return {
            "replica_servers": tuple(self._replica_names()),
            "quorum": self.quorum,
            "counter": self.counter is not None,
        }

    def build(self) -> StorageSystem:
        """A plain USTOR deployment (no fail-aware layer)."""
        scheduler, trace, network, offline, keystore, recorder, servers = self._core()
        clients = []
        for i in range(self.num_clients):
            client = UstorClient(
                client_id=i,
                num_clients=self.num_clients,
                signer=keystore.signer(i),
                server_name=self.server_name,
                recorder=recorder,
                commit_piggyback=self.commit_piggyback,
                **self._client_replica_kwargs(),
            )
            network.register(client)
            offline.register(client)
            clients.append(client)
        return StorageSystem(
            scheduler=scheduler,
            network=network,
            offline=offline,
            server=servers[0],
            clients=clients,
            recorder=recorder,
            trace=trace,
            keystore=keystore,
            batching=self.batching,
            replica_servers=list(servers),
        )

    def build_faust(
        self, checkpoint=None, membership=None, **faust_kwargs
    ) -> StorageSystem:
        """A FAUST deployment: USTOR plus the fail-aware layer (Section 6).

        ``checkpoint`` (a :class:`~repro.faust.checkpoint.CheckpointPolicy`)
        enables authenticated checkpointing: every client runs a
        :class:`~repro.faust.checkpoint.CheckpointManager`, and — when the
        policy prunes history — the shared recorder (and its incremental
        checkers) compacts behind each cut once *every* client has
        installed it, so verdicts never depend on one client racing ahead.

        ``membership`` (a :class:`~repro.faust.membership.MembershipPolicy`)
        layers lease-based membership epochs under the checkpoint
        protocol, so the chain keeps advancing after a crashed-forever
        client is evicted (compaction then waits for the checkpoint's
        *signers* only — an evicted client can never install).
        """
        from repro.faust.client import FaustClient

        scheduler, trace, network, offline, keystore, recorder, servers = self._core()
        clients = []
        for i in range(self.num_clients):
            client = FaustClient(
                client_id=i,
                num_clients=self.num_clients,
                signer=keystore.signer(i),
                server_name=self.server_name,
                recorder=recorder,
                commit_piggyback=self.commit_piggyback,
                checkpoint=checkpoint,
                membership=membership,
                **faust_kwargs,
                **self._client_replica_kwargs(),
            )
            network.register(client)
            offline.register(client)
            client.attach_offline(offline)
            client.start()
            clients.append(client)
        if checkpoint is not None and checkpoint.prune_history:
            installs: dict[int, int] = {}

            def _on_install(cp, _installs=installs, _recorder=recorder):
                count = _installs.get(cp.seq, 0) + 1
                if count >= (len(cp.signers) or self.num_clients):
                    _installs.pop(cp.seq, None)
                    _recorder.compact(cp.cut, keep_tail=checkpoint.keep_tail)
                else:
                    _installs[cp.seq] = count

            for client in clients:
                client.add_checkpoint_listener(_on_install)
        return StorageSystem(
            scheduler=scheduler,
            network=network,
            offline=offline,
            server=servers[0],
            clients=clients,
            recorder=recorder,
            trace=trace,
            keystore=keystore,
            faust_clients=list(clients),
            batching=self.batching,
            replica_servers=list(servers),
        )
