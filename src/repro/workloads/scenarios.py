"""The paper's concrete scenarios, scripted end to end.

* :func:`figure2_scenario` — the Alice/Bob/Carlos collaboration of
  Figure 2, reproducing the exact stability cut
  ``stable_Alice([10, 8, 3])`` and then (optionally) Carlos's return,
  after which every operation becomes stable at all clients.
* :func:`figure3_scenario` — the Figure 3 history: a server hides
  ``write_1(X1, u)`` from ``C2``'s first read and rejoins on the second,
  yielding a weakly-fork-linearizable, non-fork-linearizable history.
* :func:`split_brain_scenario` — a general forking attack driving two
  client groups on divergent branches, used by the detection experiments.
* :func:`server_outage_scenario` — honest crash-recovery: the server goes
  down mid-workload and recovers from its storage engine; with a durable
  engine every operation completes and nobody raises fail.
* :func:`rollback_attack_scenario` — the persistence-axis attack: the
  server "recovers" from a deliberately stale snapshot; fail-aware
  clients detect the fork into the past.
* :func:`split_brain_shard_scenario` — the cluster-axis attack: one
  shard's server forks its clients while every other shard stays honest;
  detection must reach exactly the clients that touched the forked
  shard, and honest shards must keep serving.
* :func:`replica_rollback_scenario` — the rollback attack against a
  replica group (:mod:`repro.replica`): one replica recovers from a
  stale snapshot while the rest stay honest.  An honest quorum masks the
  deviant replies outright; a durable monotonic counter convicts the
  rolled-back replica on its first post-restart reply; a volatile
  counter shows the trust-anchor pitfall by falsely accusing an honest
  crash-recovered replica.
"""

from __future__ import annotations

import random

from dataclasses import dataclass, field

from repro.api.backends import ClusterBackend, FaustBackend, UstorBackend
from repro.api.config import FaustParams, SystemConfig
from repro.api.events import FailureNotification
from repro.api.handles import OpResult
from repro.api.session import Session
from repro.api.system import System
from repro.common.types import BOTTOM, OpKind
from repro.history.history import History
from repro.sim.network import FixedLatency
from repro.store.codec import encode_server_state
from repro.ustor.byzantine import Fig3Server, RollbackServer, SplitBrainServer
from repro.workloads.generator import (
    Driver,
    PlannedOp,
    WorkloadConfig,
    generate_scripts,
    unique_value,
)

ALICE, BOB, CARLOS = 0, 1, 2


@dataclass
class Figure2Result:
    """Outcome of the Figure 2 stability-cut scenario."""

    system: System
    #: Alice's stability cuts in notification order.
    alice_cuts: list[tuple[int, ...]]
    #: True once the exact cut (10, 8, 3) was emitted.
    reproduced: bool


def _sync_op(system: System, session: Session, kind: OpKind, argument) -> OpResult:
    """Run one operation to completion, then let a moment pass.

    The settle gap makes consecutive scripted operations *strictly* ordered
    in real time (``o <_sigma o'``), as the paper's scenarios assume —
    without it the next invocation lands at the exact virtual instant the
    previous response occurred and the operations count as concurrent.
    """
    handle = (
        session.write(argument) if kind is OpKind.WRITE else session.read(argument)
    )
    result = handle.result(timeout=10_000.0)
    system.run(until=system.now + 0.1)
    return result


def figure2_scenario(
    seed: int = 2, include_carlos_return: bool = True
) -> Figure2Result:
    """Reproduce Figure 2's stability cut ``stable_Alice([10, 8, 3])``.

    Day in Europe: Alice and Bob collaborate; Carlos read Alice's document
    early (up to her 3rd operation) and went to sleep.  Alice keeps
    working; her cut shows consistency with herself up to t=10, with Bob
    up to t=8, with Carlos up to t=3.
    """
    system = FaustBackend().open_system(
        SystemConfig(
            num_clients=3,
            seed=seed,
            latency=FixedLatency(0.5),
            offline_latency=FixedLatency(3.0),
            faust=FaustParams(
                enable_dummy_reads=False,  # scripted reads make the cut exact
                enable_probes=False,
                delta=200.0,
            ),
        )
    )
    alice, bob, carlos = system.sessions()

    def doc(version: int) -> bytes:
        return f"shared-document-v{version}".encode()

    # Alice edits the document three times (timestamps 1..3).
    for v in range(1, 4):
        _sync_op(system, alice, OpKind.WRITE, doc(v))
    # Carlos catches up on Alice's work, then goes to sleep.
    _sync_op(system, carlos, OpKind.READ, ALICE)
    _sync_op(system, alice, OpKind.READ, CARLOS)  # Alice's t=4: learns Carlos
    carlos.client.pause()
    system.offline.set_online(carlos.client.name, False)

    # Alice keeps editing (t = 5..8).
    for v in range(5, 9):
        _sync_op(system, alice, OpKind.WRITE, doc(v))
    # Bob reads Alice's latest edit; Alice then reads Bob (t=9), and makes
    # one final edit (t=10) — at which point her cut is exactly [10, 8, 3].
    _sync_op(system, bob, OpKind.READ, ALICE)
    _sync_op(system, alice, OpKind.READ, BOB)
    _sync_op(system, alice, OpKind.WRITE, doc(10))

    alice_client = alice.client
    reproduced = (10, 8, 3) in [cut for _, cut in alice_client.stable_notifications]

    if include_carlos_return:
        # America wakes up: Carlos returns, reads, and background version
        # exchange makes everything stable at every client.
        system.offline.set_online(carlos.client.name, True)
        carlos.client.resume()
        for client in system.clients:
            client.enable_background(dummy_reads=True, probes=True)
        system.run(until=system.now + 400.0)

    return Figure2Result(
        system=system,
        alice_cuts=[cut for _, cut in alice_client.stable_notifications],
        reproduced=reproduced,
    )


@dataclass
class Figure3Result:
    """Outcome of the Figure 3 forking scenario."""

    system: System
    history: History
    #: The three operations in the order of Figure 3.
    write_outcome: OpResult
    read1_outcome: OpResult
    read2_outcome: OpResult
    #: Whether any USTOR client output fail (must be False: the attack is
    #: designed to pass every check of Algorithm 1).
    ustor_detected: bool


def figure3_scenario(seed: int = 3, faust: bool = False) -> Figure3Result:
    """Run the Figure 3 attack: write1(X1,u); read2(X1)->BOTTOM; read2(X1)->u.

    With ``faust=True`` the clients run the fail-aware layer with probing
    enabled, so the (undetectable-at-USTOR-level) fork is exposed once the
    clients exchange versions offline.
    """
    config = SystemConfig(
        num_clients=2,
        seed=seed,
        latency=FixedLatency(0.5),
        offline_latency=FixedLatency(2.0),
        server_factory=lambda n, name: Fig3Server(n, writer=0, victim=1, name=name),
        faust=FaustParams(
            enable_dummy_reads=False,
            enable_probes=True,
            delta=20.0,
            probe_check_period=5.0,
        ),
    )
    backend = FaustBackend() if faust else UstorBackend()
    system = backend.open_system(config)
    writer, victim = system.sessions()

    write_outcome = _sync_op(system, writer, OpKind.WRITE, b"u")
    read1 = _sync_op(system, victim, OpKind.READ, 0)
    read2 = _sync_op(system, victim, OpKind.READ, 0)

    assert read1.value is BOTTOM, "the hidden write must be invisible to read 1"
    assert read2.value == b"u", "the rejoin must expose the write to read 2"

    detected = any(c.failed for c in system.clients)
    return Figure3Result(
        system=system,
        history=system.history(),
        write_outcome=write_outcome,
        read1_outcome=read1,
        read2_outcome=read2,
        ustor_detected=detected,
    )


@dataclass
class SplitBrainResult:
    """Outcome of the split-brain (forking server) scenario."""

    system: System
    driver: Driver
    groups: list[set[int]]
    fork_time: float


def split_brain_scenario(
    num_clients: int = 4,
    seed: int = 11,
    fork_time: float = 30.0,
    ops_per_client: int = 12,
    faust: bool = True,
    delta: float = 25.0,
    run_for: float = 600.0,
) -> SplitBrainResult:
    """A forking attack over a random workload.

    Clients are split into two groups (even/odd ids) at ``fork_time``;
    both groups keep operating on divergent branches.  With FAUST enabled,
    cross-group version exchange eventually proves the fork.
    """
    groups = [
        {c for c in range(num_clients) if c % 2 == 0},
        {c for c in range(num_clients) if c % 2 == 1},
    ]
    config = SystemConfig(
        num_clients=num_clients,
        seed=seed,
        server_factory=lambda n, name: SplitBrainServer(
            n, groups=groups, fork_time=fork_time, name=name
        ),
        faust=FaustParams(delta=delta, probe_check_period=delta / 3),
    )
    backend = FaustBackend() if faust else UstorBackend()
    system = backend.open_system(config)

    rng = random.Random(seed)
    scripts = generate_scripts(
        num_clients,
        WorkloadConfig(ops_per_client=ops_per_client, read_fraction=0.5),
        rng,
    )
    driver = Driver(system)
    driver.attach_all(scripts)
    system.run(until=run_for)
    return SplitBrainResult(
        system=system, driver=driver, groups=groups, fork_time=fork_time
    )


@dataclass
class ServerOutageResult:
    """Outcome of the server crash-recovery scenario."""

    system: System
    driver: Driver
    outage_start: float
    outage_end: float
    #: Did every scripted operation complete despite the outage?
    completed_all: bool
    #: Failure notifications raised (must be empty: honest recovery is
    #: not misbehaviour).
    failure_events: list
    #: Recovery restored the exact pre-crash ``ServerState`` (compared on
    #: canonical bytes).  False with the volatile engine — a memory-engine
    #: restart *is* a rollback (to zero), and clients treat it as one.
    recovery_byte_identical: bool


def server_outage_scenario(
    num_clients: int = 3,
    seed: int = 21,
    ops_per_client: int = 8,
    outage_start: float = 25.0,
    outage_duration: float = 20.0,
    storage: str = "log",
    faust: bool = True,
    run_for: float = 4_000.0,
) -> ServerOutageResult:
    """Honest crash-recovery under a random workload.

    The server goes down over ``[outage_start, outage_start +
    outage_duration)`` and recovers from its storage engine; requests
    delivered during the window are held by the reliable channels and
    served after recovery.  With ``storage="log"`` the outage only delays
    operations; with ``storage="memory"`` the restarted server has
    forgotten everything and clients detect the amnesia like a rollback.
    FAUST's background machinery stays armed — dummy reads and probes must
    *not* mistake an honest recovery for misbehaviour, and they are what
    exposes a volatile server's amnesia even after the workload drains.
    """
    config = SystemConfig(
        num_clients=num_clients,
        seed=seed,
        storage=storage,
        server_outages=((outage_start, outage_duration),),
    )
    backend = FaustBackend() if faust else UstorBackend()
    system = backend.open_system(config)

    scripts = generate_scripts(
        num_clients,
        WorkloadConfig(ops_per_client=ops_per_client, read_fraction=0.5),
        random.Random(seed),
    )
    driver = Driver(system)
    driver.attach_all(scripts)
    completed_all = driver.run_to_completion(timeout=run_for)
    outage_end = outage_start + outage_duration
    if system.now <= outage_end:
        # A short workload may drain before the window closes; run through
        # it so the crash and the recovery actually happen.
        system.run(until=outage_end + 1.0)
        completed_all = driver.stats.all_done()

    server = system.server
    identical = (
        server.last_pre_crash_state is not None
        and server.last_recovery_state is not None
        and encode_server_state(server.last_pre_crash_state)
        == encode_server_state(server.last_recovery_state)
    )
    failures = [
        e
        for e in system.notifications.history
        if isinstance(e, FailureNotification)
    ]
    return ServerOutageResult(
        system=system,
        driver=driver,
        outage_start=outage_start,
        outage_end=outage_end,
        completed_all=completed_all,
        failure_events=failures,
        recovery_byte_identical=identical,
    )


@dataclass
class RollbackAttackResult:
    """Outcome of the rollback-attack scenario."""

    system: System
    driver: Driver
    #: When the adversary crashed / came back from the stale snapshot.
    crash_time: float | None
    restart_time: float | None
    #: Per-client fail times (fail-aware clients only).
    detection_times: list[float]
    #: Virtual time from the dishonest restart to the first detection
    #: (``nan`` if the attack went unnoticed).
    detection_latency: float


def rollback_attack_scenario(
    num_clients: int = 3,
    seed: int = 31,
    ops_per_client: int = 10,
    snapshot_after_submits: int = 3,
    rollback_after_submits: int = 9,
    outage: float = 5.0,
    delta: float = 25.0,
    faust: bool = True,
    run_for: float = 2_000.0,
) -> RollbackAttackResult:
    """The rollback attack under a random workload.

    A :class:`RollbackServer` checkpoints early, serves honestly, then
    crashes and "recovers" from the stale snapshot.  Clients whose
    committed versions include post-snapshot operations are shown stale
    versions or stale data on their next operation (Algorithm 1, lines
    36/43/51); clients forked into the past are caught by FAUST's version
    comparison over the offline channel.  Either way the fail-aware layer
    turns one detection into system-wide failure notifications.
    """
    config = SystemConfig(
        num_clients=num_clients,
        seed=seed,
        server_factory=lambda n, name: RollbackServer(
            n,
            snapshot_after_submits=snapshot_after_submits,
            rollback_after_submits=rollback_after_submits,
            outage=outage,
            name=name,
        ),
        faust=FaustParams(delta=delta, probe_check_period=delta / 3),
    )
    backend = FaustBackend() if faust else UstorBackend()
    system = backend.open_system(config)

    scripts = generate_scripts(
        num_clients,
        WorkloadConfig(ops_per_client=ops_per_client, read_fraction=0.5),
        random.Random(seed),
    )
    driver = Driver(system)
    driver.attach_all(scripts)
    system.run(until=run_for)

    server = system.server
    detection_times = [
        c.faust_fail_time
        for c in system.clients
        if getattr(c, "faust_fail_time", None) is not None
    ]
    restart = server.rollback_restart_time
    latency = (
        min(detection_times) - restart
        if detection_times and restart is not None
        else float("nan")
    )
    return RollbackAttackResult(
        system=system,
        driver=driver,
        crash_time=server.rollback_crash_time,
        restart_time=restart,
        detection_times=detection_times,
        detection_latency=latency,
    )


@dataclass
class ShardSplitBrainResult:
    """Outcome of the sharded split-brain scenario."""

    system: object
    driver: Driver
    #: Shards whose server runs the forking attack.
    forked_shards: frozenset[int]
    fork_time: float
    #: Clients scripted to never touch a forked shard.
    avoiders: frozenset[int]
    #: Shards each client actually touched with user operations.
    touched: dict[int, frozenset[int]] = field(default_factory=dict)
    #: Clients expected to be notified (touched a forked shard).
    expected_detectors: frozenset[int] = frozenset()
    #: Clients that raised a cluster-level failure notification.
    notified_clients: frozenset[int] = frozenset()
    #: Virtual time from the fork to the first failure notification
    #: (``nan`` if the attack went unnoticed).
    detection_latency: float = float("nan")

    @property
    def exact_detection(self) -> bool:
        """Notified exactly the clients that touched the forked shard?"""
        return self.notified_clients == self.expected_detectors

    def avoiders_completed(self) -> bool:
        """Did every avoider finish its whole (honest-shard) script?"""
        return all(
            self.driver.stats.completed.get(c, 0)
            >= self.driver.stats.planned.get(c, 0)
            for c in self.avoiders
        )


@dataclass
class ReplicaRollbackResult:
    """Outcome of the replicated rollback scenario."""

    system: object
    driver: Driver
    replicas: int
    quorum: int
    counter: str | None
    #: When the faulty (or honestly crashed) replica went down / came back.
    crash_time: float | None
    restart_time: float | None
    #: Aggregated :meth:`QuorumCoordinator.stats` over every client
    #: (all-zero for the unreplicated baseline).
    masked_deviations: int = 0
    read_repairs: int = 0
    #: ``replica name -> violation`` for every counter conviction, and
    #: the virtual time of the first one (``nan`` if none fired).
    convicted: dict = field(default_factory=dict)
    conviction_time: float = float("nan")
    #: Times of protocol-level ``fail_i`` outputs (the unreplicated
    #: baseline's only detection signal; also how a replicated client
    #: reports an unattainable quorum).
    fail_times: list[float] = field(default_factory=list)
    #: Virtual time from the dishonest restart to the first signal of
    #: either kind (``nan`` = the attack went unnoticed).
    detection_latency: float = float("nan")
    #: Client operations that completed between the restart and the
    #: first signal — the paper-level cost of detection.  The counter's
    #: O(1) claim is this number staying ~num_clients, independent of
    #: workload length.
    ops_until_detection: int = 0
    completed: int = 0
    planned: int = 0

    @property
    def all_completed(self) -> bool:
        """True when every planned operation completed."""
        return self.completed >= self.planned

    @property
    def detected(self) -> bool:
        """Did any signal (fail_i or conviction) fire at all?"""
        return bool(self.fail_times) or bool(self.convicted)


def replica_rollback_scenario(
    num_clients: int = 4,
    seed: int = 31,
    ops_per_client: int = 8,
    replicas: int = 3,
    quorum: int | None = None,
    counter: str | None = None,
    rollback_replica: int | None = 1,
    honest_outage: tuple[int, float, float] | None = None,
    snapshot_after_submits: int = 2,
    rollback_after_submits: int = 6,
    outage: float = 5.0,
    delta: float = 25.0,
    run_for: float = 2_000.0,
) -> ReplicaRollbackResult:
    """The rollback attack against one replica of a k-of-n group.

    ``rollback_replica`` runs a :class:`RollbackServer` (checkpoint
    early, crash, "recover" from the stale snapshot) while the other
    replicas stay honest; ``None`` runs an all-honest group.
    ``honest_outage=(replica, start, duration)`` instead crashes an
    *honest* replica and recovers it from durable storage — paired with
    ``counter="volatile"`` it demonstrates the false accusation: the
    replica's state remembers its operations but the reset counter does
    not, so honest recovery becomes indistinguishable from misbehaviour.

    The interesting corners:

    * ``replicas=1`` (+ the attack) — the paper's single server:
      detection waits until the rolled state contradicts a client's
      committed version, so ``ops_until_detection`` grows with the
      workload.
    * ``replicas=3`` — an honest majority outvotes the deviant replies
      (``masked_deviations > 0``, nothing fails, everything completes).
    * ``counter="durable"`` — the trusted counter convicts the rolled
      replica on its first post-restart reply: ``ops_until_detection``
      stays O(num_clients) regardless of workload length.
    """
    attack = rollback_replica is not None
    if attack and not 0 <= rollback_replica < replicas:
        raise ValueError(
            f"rollback_replica {rollback_replica} out of range for "
            f"{replicas} replica(s)"
        )
    if honest_outage is not None and attack:
        raise ValueError(
            "honest_outage crashes an honest replica; drop rollback_replica"
        )

    def rollback_factory(n, name):
        return RollbackServer(
            n,
            snapshot_after_submits=snapshot_after_submits,
            rollback_after_submits=rollback_after_submits,
            outage=outage,
            name=name,
        )

    config = SystemConfig(
        num_clients=num_clients,
        seed=seed,
        shards=1,
        replicas=replicas,
        quorum=quorum,
        counter=counter,
        # Honest recovery needs real durability; the rollback server owns
        # its own (deliberately stale) persistence.
        storage="log" if honest_outage is not None else "memory",
        server_factory=(rollback_factory if attack and replicas == 1 else None),
        replica_server_factories=(
            {rollback_replica: rollback_factory} if attack and replicas > 1 else {}
        ),
        faust=FaustParams(delta=delta, probe_check_period=delta / 3),
    )
    system = ClusterBackend().open_system(config)
    shard = system.shards[0]
    if honest_outage is not None:
        shard.replica_outage(*honest_outage)

    scripts = generate_scripts(
        num_clients,
        WorkloadConfig(ops_per_client=ops_per_client, read_fraction=0.5),
        random.Random(seed),
    )
    driver = Driver(system)
    driver.attach_all(scripts)
    system.run(until=run_for)

    coordinators = [
        c.quorum_coordinator
        for c in shard.clients
        if getattr(c, "quorum_coordinator", None) is not None
    ]
    masked = sum(c.stats()["masked_deviations"] for c in coordinators)
    repairs = sum(c.stats()["read_repairs"] for c in coordinators)
    convicted: dict = {}
    for coordinator in coordinators:
        convicted.update(coordinator.stats()["convicted"])
    conviction_notes = shard.trace.notes_of_kind("replica-convicted")
    conviction_time = (
        min(n.time for n in conviction_notes) if conviction_notes else float("nan")
    )
    fail_times = [n.time for n in shard.trace.notes_of_kind("ustor-fail")]

    if attack:
        faulty = shard.replica_servers[rollback_replica]
        crash_time = faulty.rollback_crash_time
        restart_time = faulty.rollback_restart_time
    elif honest_outage is not None:
        crash_time = honest_outage[1]
        restart_time = honest_outage[1] + honest_outage[2]
    else:
        crash_time = restart_time = None

    signals = list(fail_times)
    if conviction_notes:
        signals.append(conviction_time)
    latency = (
        min(signals) - restart_time
        if signals and restart_time is not None
        else float("nan")
    )
    caught_at = min(signals) if signals else None
    ops_until = (
        sum(
            1
            for op in system.shard_histories()[0]
            if op.responded_at is not None
            and restart_time < op.responded_at <= caught_at
        )
        if caught_at is not None and restart_time is not None
        else 0
    )
    return ReplicaRollbackResult(
        system=system,
        driver=driver,
        replicas=replicas,
        quorum=coordinators[0].quorum if coordinators else 1,
        counter=counter,
        crash_time=crash_time,
        restart_time=restart_time,
        masked_deviations=masked,
        read_repairs=repairs,
        convicted=convicted,
        conviction_time=conviction_time,
        fail_times=fail_times,
        detection_latency=latency,
        ops_until_detection=ops_until,
        completed=driver.stats.total_completed(),
        planned=driver.stats.total_planned(),
    )


def split_brain_shard_scenario(
    num_clients: int = 6,
    shards: int = 4,
    forked_shards: tuple[int, ...] = (1,),
    seed: int = 41,
    fork_time: float = 25.0,
    ops_per_client: int = 12,
    delta: float = 25.0,
    shard_map: str = "range",
    run_for: float = 600.0,
) -> ShardSplitBrainResult:
    """One (or more) forking shard(s) inside an otherwise honest cluster.

    The forked shards' servers run the classic split-brain attack from
    ``fork_time`` on; every other shard is honest.  Client scripts are
    shaped so that a subset (*avoiders* — clients whose registers and
    reads all live on honest shards) never touches a forked shard, while
    everyone else does.  The cluster contract under test:

    * every client that operated on a forked shard raises a
      shard-tagged failure notification,
    * no avoider raises any,
    * avoiders' operations — all on honest shards — complete in full.
    """
    forked = frozenset(forked_shards)
    if not forked:
        raise ValueError("need at least one forked shard")

    def forking_factory(n, name):
        return SplitBrainServer(
            n,
            groups=[
                {c for c in range(n) if c % 2 == 0},
                {c for c in range(n) if c % 2 == 1},
            ],
            fork_time=fork_time,
            name=name,
        )

    config = SystemConfig(
        num_clients=num_clients,
        seed=seed,
        shards=shards,
        shard_map=shard_map,
        shard_server_factories={k: forking_factory for k in forked},
        faust=FaustParams(delta=delta, probe_check_period=delta / 3),
    )
    system = ClusterBackend().open_system(config)
    if not any(system.shard_of(r) in forked for r in range(num_clients)):
        raise ValueError(
            "no register maps to a forked shard; nothing would be attacked"
        )

    honest_registers = [
        r for r in range(num_clients) if system.shard_of(r) not in forked
    ]
    forked_registers = [
        r for r in range(num_clients) if system.shard_of(r) in forked
    ]
    # Avoiders: clients whose own register lives on an honest shard; take
    # every other such client so both populations stay non-empty.
    honest_home = [c for c in honest_registers]
    avoiders = frozenset(honest_home[::2])

    rng = random.Random(seed)
    scripts: dict[int, list[PlannedOp]] = {}
    for client in range(num_clients):
        allowed = honest_registers if client in avoiders else None
        ops: list[PlannedOp] = []
        writes = 0
        for index in range(ops_per_client):
            think = rng.expovariate(1.0 / 3.0)
            if client not in avoiders and index == 1:
                # Guarantee every non-avoider touches a forked shard early.
                ops.append(
                    PlannedOp(
                        OpKind.READ, rng.choice(forked_registers), think_time=think
                    )
                )
            elif rng.random() < 0.5:
                pool = allowed if allowed is not None else range(num_clients)
                ops.append(
                    PlannedOp(OpKind.READ, rng.choice(list(pool)), think_time=think)
                )
            else:
                writes += 1
                ops.append(
                    PlannedOp(
                        OpKind.WRITE,
                        client,
                        value=unique_value(client, writes, 24),
                        think_time=think,
                    )
                )
        scripts[client] = ops

    driver = Driver(system)
    driver.attach_all(scripts)
    system.run(until=run_for)

    touched = {
        c: frozenset(system.touched_shards(c)) for c in range(num_clients)
    }
    expected = frozenset(
        c for c, shards_touched in touched.items() if shards_touched & forked
    )
    failures = system.notifications.failure_events()
    notified = frozenset(e.client for e in failures)
    latency = (
        min(e.time for e in failures) - fork_time
        if failures
        else float("nan")
    )
    return ShardSplitBrainResult(
        system=system,
        driver=driver,
        forked_shards=forked,
        fork_time=fork_time,
        avoiders=avoiders,
        touched=touched,
        expected_detectors=expected,
        notified_clients=notified,
        detection_latency=latency,
    )
