"""The paper's concrete scenarios, scripted end to end.

* :func:`figure2_scenario` — the Alice/Bob/Carlos collaboration of
  Figure 2, reproducing the exact stability cut
  ``stable_Alice([10, 8, 3])`` and then (optionally) Carlos's return,
  after which every operation becomes stable at all clients.
* :func:`figure3_scenario` — the Figure 3 history: a server hides
  ``write_1(X1, u)`` from ``C2``'s first read and rejoins on the second,
  yielding a weakly-fork-linearizable, non-fork-linearizable history.
* :func:`split_brain_scenario` — a general forking attack driving two
  client groups on divergent branches, used by the detection experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.backends import FaustBackend, UstorBackend
from repro.api.config import FaustParams, SystemConfig
from repro.api.handles import OpResult
from repro.api.session import Session
from repro.api.system import System
from repro.common.types import BOTTOM, OpKind
from repro.history.history import History
from repro.sim.network import FixedLatency
from repro.ustor.byzantine import Fig3Server, SplitBrainServer
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts

ALICE, BOB, CARLOS = 0, 1, 2


@dataclass
class Figure2Result:
    system: System
    #: Alice's stability cuts in notification order.
    alice_cuts: list[tuple[int, ...]]
    #: True once the exact cut (10, 8, 3) was emitted.
    reproduced: bool


def _sync_op(system: System, session: Session, kind: OpKind, argument) -> OpResult:
    """Run one operation to completion, then let a moment pass.

    The settle gap makes consecutive scripted operations *strictly* ordered
    in real time (``o <_sigma o'``), as the paper's scenarios assume —
    without it the next invocation lands at the exact virtual instant the
    previous response occurred and the operations count as concurrent.
    """
    handle = (
        session.write(argument) if kind is OpKind.WRITE else session.read(argument)
    )
    result = handle.result(timeout=10_000.0)
    system.run(until=system.now + 0.1)
    return result


def figure2_scenario(
    seed: int = 2, include_carlos_return: bool = True
) -> Figure2Result:
    """Reproduce Figure 2's stability cut ``stable_Alice([10, 8, 3])``.

    Day in Europe: Alice and Bob collaborate; Carlos read Alice's document
    early (up to her 3rd operation) and went to sleep.  Alice keeps
    working; her cut shows consistency with herself up to t=10, with Bob
    up to t=8, with Carlos up to t=3.
    """
    system = FaustBackend().open_system(
        SystemConfig(
            num_clients=3,
            seed=seed,
            latency=FixedLatency(0.5),
            offline_latency=FixedLatency(3.0),
            faust=FaustParams(
                enable_dummy_reads=False,  # scripted reads make the cut exact
                enable_probes=False,
                delta=200.0,
            ),
        )
    )
    alice, bob, carlos = system.sessions()

    def doc(version: int) -> bytes:
        return f"shared-document-v{version}".encode()

    # Alice edits the document three times (timestamps 1..3).
    for v in range(1, 4):
        _sync_op(system, alice, OpKind.WRITE, doc(v))
    # Carlos catches up on Alice's work, then goes to sleep.
    _sync_op(system, carlos, OpKind.READ, ALICE)
    _sync_op(system, alice, OpKind.READ, CARLOS)  # Alice's t=4: learns Carlos
    carlos.client.pause()
    system.offline.set_online(carlos.client.name, False)

    # Alice keeps editing (t = 5..8).
    for v in range(5, 9):
        _sync_op(system, alice, OpKind.WRITE, doc(v))
    # Bob reads Alice's latest edit; Alice then reads Bob (t=9), and makes
    # one final edit (t=10) — at which point her cut is exactly [10, 8, 3].
    _sync_op(system, bob, OpKind.READ, ALICE)
    _sync_op(system, alice, OpKind.READ, BOB)
    _sync_op(system, alice, OpKind.WRITE, doc(10))

    alice_client = alice.client
    reproduced = (10, 8, 3) in [cut for _, cut in alice_client.stable_notifications]

    if include_carlos_return:
        # America wakes up: Carlos returns, reads, and background version
        # exchange makes everything stable at every client.
        system.offline.set_online(carlos.client.name, True)
        carlos.client.resume()
        for client in system.clients:
            client.enable_background(dummy_reads=True, probes=True)
        system.run(until=system.now + 400.0)

    return Figure2Result(
        system=system,
        alice_cuts=[cut for _, cut in alice_client.stable_notifications],
        reproduced=reproduced,
    )


@dataclass
class Figure3Result:
    system: System
    history: History
    #: The three operations in the order of Figure 3.
    write_outcome: OpResult
    read1_outcome: OpResult
    read2_outcome: OpResult
    #: Whether any USTOR client output fail (must be False: the attack is
    #: designed to pass every check of Algorithm 1).
    ustor_detected: bool


def figure3_scenario(seed: int = 3, faust: bool = False) -> Figure3Result:
    """Run the Figure 3 attack: write1(X1,u); read2(X1)->BOTTOM; read2(X1)->u.

    With ``faust=True`` the clients run the fail-aware layer with probing
    enabled, so the (undetectable-at-USTOR-level) fork is exposed once the
    clients exchange versions offline.
    """
    config = SystemConfig(
        num_clients=2,
        seed=seed,
        latency=FixedLatency(0.5),
        offline_latency=FixedLatency(2.0),
        server_factory=lambda n, name: Fig3Server(n, writer=0, victim=1, name=name),
        faust=FaustParams(
            enable_dummy_reads=False,
            enable_probes=True,
            delta=20.0,
            probe_check_period=5.0,
        ),
    )
    backend = FaustBackend() if faust else UstorBackend()
    system = backend.open_system(config)
    writer, victim = system.sessions()

    write_outcome = _sync_op(system, writer, OpKind.WRITE, b"u")
    read1 = _sync_op(system, victim, OpKind.READ, 0)
    read2 = _sync_op(system, victim, OpKind.READ, 0)

    assert read1.value is BOTTOM, "the hidden write must be invisible to read 1"
    assert read2.value == b"u", "the rejoin must expose the write to read 2"

    detected = any(c.failed for c in system.clients)
    return Figure3Result(
        system=system,
        history=system.history(),
        write_outcome=write_outcome,
        read1_outcome=read1,
        read2_outcome=read2,
        ustor_detected=detected,
    )


@dataclass
class SplitBrainResult:
    system: System
    driver: Driver
    groups: list[set[int]]
    fork_time: float


def split_brain_scenario(
    num_clients: int = 4,
    seed: int = 11,
    fork_time: float = 30.0,
    ops_per_client: int = 12,
    faust: bool = True,
    delta: float = 25.0,
    run_for: float = 600.0,
) -> SplitBrainResult:
    """A forking attack over a random workload.

    Clients are split into two groups (even/odd ids) at ``fork_time``;
    both groups keep operating on divergent branches.  With FAUST enabled,
    cross-group version exchange eventually proves the fork.
    """
    groups = [
        {c for c in range(num_clients) if c % 2 == 0},
        {c for c in range(num_clients) if c % 2 == 1},
    ]
    config = SystemConfig(
        num_clients=num_clients,
        seed=seed,
        server_factory=lambda n, name: SplitBrainServer(
            n, groups=groups, fork_time=fork_time, name=name
        ),
        faust=FaustParams(delta=delta, probe_check_period=delta / 3),
    )
    backend = FaustBackend() if faust else UstorBackend()
    system = backend.open_system(config)

    import random as _random

    rng = _random.Random(seed)
    scripts = generate_scripts(
        num_clients,
        WorkloadConfig(ops_per_client=ops_per_client, read_fraction=0.5),
        rng,
    )
    driver = Driver(system)
    driver.attach_all(scripts)
    system.run(until=run_for)
    return SplitBrainResult(
        system=system, driver=driver, groups=groups, fork_time=fork_time
    )
