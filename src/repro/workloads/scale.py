"""The open-loop scale harness: bounded state under sustained load.

The checkpoint extension (:mod:`repro.faust.checkpoint`) claims O(active
window) memory at every party — server ``pending`` list and WAL, client
view-history records, recorder and incremental-checker state — while the
protocol keeps detecting rollback across checkpoints.  This harness turns
that claim into a measured, regression-gated quantity:

* **open-loop arrivals** (Poisson interarrivals, Zipf key popularity,
  :func:`repro.workloads.generator.generate_open_loop`) offer load at a
  fixed rate regardless of completion, so latency percentiles include
  queueing delay — a closed-loop driver systematically under-reports it
  (coordinated omission);
* **resident-structure sampling** walks the live deployment at a fixed
  virtual-time cadence and records the size of every structure the
  checkpoint extension is supposed to bound;
* **steady-state growth ratio** compares the post-warmup first half of
  those samples against the second half: a bounded system hovers near
  1.0, an unbounded one grows with the run length;
* optional **session churn** (:class:`repro.workloads.sessions.SessionPool`
  plus a deterministic window plan) cycles logical sessions over the
  signer slots — each window logs one session out, takes its slot
  offline, and logs a fresh session in when the slot returns, so churn
  in the tens of thousands of sessions never needs that many signer
  keys;
* optional **client faults**
  (:class:`repro.sim.faults.ClientFaultInjector`, the ``--client-faults``
  flag) inject crash-forever / crash-restart / lease-expiry lifecycles:
  with ``membership=`` on, the quorum evicts a crashed-forever client
  and the checkpoint chain (and the growth ratio) recovers; without it,
  the chain stalls and resident state grows without bound — the
  difference this harness exists to measure.

``repro scale`` (the CLI) runs one configuration and renders the report
as JSON plus a Prometheus-style metrics file; ``benchmarks/
test_bench_scale.py`` pins the growth ratio in the BENCH regression
pipeline; experiment E19 sweeps the checkpoint interval.
"""

from __future__ import annotations

import random
import tracemalloc
from dataclasses import dataclass, field

from repro.api.backends import open_system
from repro.api.config import FaustParams, SystemConfig
from repro.common.errors import ConfigurationError
from repro.consistency.incremental import attach_incremental_checkers
from repro.faust.checkpoint import CheckpointPolicy
from repro.faust.membership import MembershipPolicy
from repro.obs.registry import Histogram, Registry
from repro.sim.faults import ClientFaultInjector
from repro.sim.network import FixedLatency
from repro.workloads.generator import Driver, OpenLoopConfig, generate_open_loop
from repro.workloads.sessions import SessionLease, SessionPool, plan_churn_windows


@dataclass
class ScaleConfig:
    """One scale-harness run, fully determined by its seed."""

    num_clients: int = 4
    seed: int = 20260730
    open_loop: OpenLoopConfig = field(default_factory=OpenLoopConfig)
    #: ``None`` runs without checkpointing — the unbounded baseline the
    #: growth ratio is compared against.
    checkpoint: CheckpointPolicy | None = None
    #: Lease-based membership epochs (requires ``checkpoint``): the
    #: quorum evicts crashed-forever clients so the chain keeps folding.
    membership: MembershipPolicy | None = None
    latency: float = 1.0
    offline_latency: float = 0.5
    storage: str = "log"
    #: Random session churn windows drawn over the schedule horizon
    #: (logical sessions cycling over the signer slots).
    churn_windows: int = 0
    churn_mean_duration: float = 5.0
    #: Client fault specs, ``kind:client@start[+duration]`` — see
    #: :meth:`repro.sim.faults.ClientFaultInjector.parse_spec`.
    client_faults: tuple[str, ...] = ()
    #: Virtual-time cadence of resident-structure samples.
    sample_every: float = 10.0
    #: Leading fraction of samples discarded before the growth ratio
    #: (ramp-up is growth by definition).
    warmup_fraction: float = 0.25
    #: Attach the streaming incremental checkers (their state is one of
    #: the structures checkpointing must bound).
    audit: bool = True
    #: Track Python allocations (tracemalloc) for a bytes/op figure.
    trace_malloc: bool = False
    #: Extra virtual time after the last arrival for queues to drain.
    drain: float = 50.0

    def __post_init__(self) -> None:
        if self.sample_every <= 0:
            raise ConfigurationError("sample_every must be positive")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigurationError("warmup_fraction must be in [0, 1)")


@dataclass(frozen=True)
class ResidentSample:
    """Sizes of the bounded structures at one instant of virtual time."""

    time: float
    server_pending: int
    wal_bytes: int
    recorder_ops: int
    checker_state: int
    vh_records: int
    stable_notifications: int

    @property
    def bounded_total(self) -> int:
        """The aggregate the growth ratio is computed over (everything
        the checkpoint extension prunes; WAL bytes are tracked separately
        because the engine compacts them on its own snapshot cadence
        too)."""
        return (
            self.server_pending
            + self.recorder_ops
            + self.checker_state
            + self.vh_records
            + self.stable_notifications
        )


@dataclass
class ScaleReport:
    """What one harness run measured."""

    config: ScaleConfig
    planned: int
    completed: int
    duration: float
    throughput: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    latency_max: float
    latency_mean: float
    samples: list[ResidentSample]
    #: mean(bounded_total, second half) / mean(bounded_total, first half)
    #: over post-warmup samples — ~1.0 when state is bounded.
    growth_ratio: float
    checkpoints_installed: int
    server_checkpoints: int
    pending_truncated: int
    recorder_compacted: int
    checker_ok: dict[str, bool]
    failed_clients: int
    #: Highest membership epoch installed by any live client.
    epoch: int = 0
    #: Clients outside the final epoch's member set (live clients' view).
    evicted_clients: tuple[int, ...] = ()
    #: Total re-admissions co-signed across the run (live clients' view).
    rejoins: int = 0
    #: Largest pending-checkpoint stall any live client reports at the end.
    checkpoint_stall_seconds: float = 0.0
    #: Logical sessions the pool leased / recycled over the run.
    sessions_created: int = 0
    sessions_recycled: int = 0
    peak_traced_bytes: int | None = None
    bytes_per_op: float | None = None

    def to_dict(self) -> dict:
        """A JSON-ready rendering (CLI output, BENCH details)."""
        return {
            "num_clients": self.config.num_clients,
            "seed": self.config.seed,
            "rate": self.config.open_loop.rate,
            "duration": self.duration,
            "zipf_exponent": self.config.open_loop.zipf_exponent,
            "checkpoint_interval": (
                self.config.checkpoint.interval if self.config.checkpoint else None
            ),
            "planned": self.planned,
            "completed": self.completed,
            "throughput": self.throughput,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "latency_max": self.latency_max,
            "latency_mean": self.latency_mean,
            "growth_ratio": self.growth_ratio,
            "checkpoints_installed": self.checkpoints_installed,
            "server_checkpoints": self.server_checkpoints,
            "pending_truncated": self.pending_truncated,
            "recorder_compacted": self.recorder_compacted,
            "checker_ok": dict(self.checker_ok),
            "failed_clients": self.failed_clients,
            "membership": self.config.membership is not None,
            "epoch": self.epoch,
            "evicted_clients": list(self.evicted_clients),
            "rejoins": self.rejoins,
            "checkpoint_stall_seconds": self.checkpoint_stall_seconds,
            "sessions_created": self.sessions_created,
            "sessions_recycled": self.sessions_recycled,
            "peak_traced_bytes": self.peak_traced_bytes,
            "bytes_per_op": self.bytes_per_op,
            "final_sample": (
                {
                    "server_pending": self.samples[-1].server_pending,
                    "wal_bytes": self.samples[-1].wal_bytes,
                    "recorder_ops": self.samples[-1].recorder_ops,
                    "checker_state": self.samples[-1].checker_state,
                    "vh_records": self.samples[-1].vh_records,
                    "stable_notifications": self.samples[-1].stable_notifications,
                }
                if self.samples
                else None
            ),
        }

    def publish(self, registry: Registry) -> None:
        """Expose the report as gauges (for ``/metrics`` scraping in CI)."""
        registry.gauge("scale.throughput").set(self.throughput)
        registry.gauge("scale.latency_p50").set(self.latency_p50)
        registry.gauge("scale.latency_p95").set(self.latency_p95)
        registry.gauge("scale.latency_p99").set(self.latency_p99)
        registry.gauge("scale.growth_ratio").set(self.growth_ratio)
        registry.gauge("scale.checkpoints_installed").set(
            self.checkpoints_installed
        )
        registry.gauge("scale.recorder_compacted").set(self.recorder_compacted)
        registry.gauge("scale.epoch").set(self.epoch)
        registry.gauge("scale.evicted_clients").set(len(self.evicted_clients))
        registry.gauge("scale.sessions_created").set(self.sessions_created)
        registry.gauge("scale.checkpoint_stall_seconds").set(
            self.checkpoint_stall_seconds
        )
        if self.samples:
            final = self.samples[-1]
            registry.gauge("scale.resident.server_pending").set(
                final.server_pending
            )
            registry.gauge("scale.resident.wal_bytes").set(final.wal_bytes)
            registry.gauge("scale.resident.recorder_ops").set(final.recorder_ops)
            registry.gauge("scale.resident.checker_state").set(
                final.checker_state
            )
            registry.gauge("scale.resident.vh_records").set(final.vh_records)
            registry.gauge("scale.resident.bounded_total").set(
                final.bounded_total
            )
        if self.bytes_per_op is not None:
            registry.gauge("scale.bytes_per_op").set(self.bytes_per_op)


def _checker_state_size(checkers: dict) -> int:
    """Entry count of the incremental checkers' per-register structures."""
    total = 0
    lin = checkers.get("linearizability")
    if lin is not None:
        for state in lin._registers.values():
            total += len(state.writes) + len(state.staircase)
            total += len(state.index_of_value)
    causal = checkers.get("causal")
    if causal is not None:
        for clocks in causal._write_clocks.values():
            total += len(clocks)
    return total


def _take_sample(raw, checkers: dict) -> ResidentSample:
    engine = getattr(raw.server, "_engine", None)
    wal_bytes = 0
    if engine is not None and hasattr(engine, "medium"):
        wal_bytes = engine.medium.size(engine.WAL)
    return ResidentSample(
        time=raw.now,
        server_pending=len(raw.server.state.pending),
        wal_bytes=wal_bytes,
        recorder_ops=raw.recorder.completed_count + raw.recorder.pending_count,
        checker_state=_checker_state_size(checkers),
        vh_records=sum(len(c.vh_records) for c in raw.clients),
        stable_notifications=sum(
            len(c.stable_notifications)
            for c in raw.clients
            if hasattr(c, "stable_notifications")
        ),
    )


def _growth_ratio(samples: list[ResidentSample], warmup_fraction: float) -> float:
    """Second-half vs first-half mean of the bounded aggregate."""
    start = int(len(samples) * warmup_fraction)
    window = samples[start:]
    if len(window) < 4:
        return 1.0  # too short to split meaningfully
    half = len(window) // 2
    early = window[:half]
    late = window[half:]
    early_mean = sum(s.bounded_total for s in early) / len(early)
    late_mean = sum(s.bounded_total for s in late) / len(late)
    if early_mean <= 0:
        return 1.0 if late_mean <= 0 else float("inf")
    return late_mean / early_mean


def run_scale(config: ScaleConfig) -> ScaleReport:
    """Run one open-loop scale configuration and measure it.

    Deterministic for a fixed :class:`ScaleConfig` — schedules, churn and
    the simulation all draw from seeded streams, so two runs of the same
    config produce identical latencies and samples.
    """
    system_config = SystemConfig(
        num_clients=config.num_clients,
        seed=config.seed,
        latency=FixedLatency(config.latency),
        offline_latency=FixedLatency(config.offline_latency),
        storage=config.storage,
        checkpoint=config.checkpoint,
        membership=config.membership,
        # Dummy reads and probes stay ON: under Zipf skew the unpopular
        # registers are rarely read, and stability (hence checkpointing)
        # would stall without the background version exchange.
        faust=FaustParams(),
    )
    system = open_system(system_config, backend="faust")
    raw = system.raw
    checkers = attach_incremental_checkers(raw.recorder) if config.audit else {}

    schedules = generate_open_loop(
        config.num_clients, config.open_loop, random.Random(config.seed)
    )
    latency_hist = Histogram()
    driver = Driver(raw)
    driver.attach_open_loop_all(
        schedules, on_latency=lambda _client, latency: latency_hist.observe(latency)
    )

    # Logical sessions lease the signer slots; churn and eviction move
    # through the pool so the signer count never grows with session count.
    pool = SessionPool(config.num_clients, provider=lambda slot: raw.clients[slot])
    active: dict[int, SessionLease] = {}
    for _ in range(config.num_clients):
        lease = pool.try_acquire()
        if lease is None:  # pragma: no cover - pool sized to the fleet
            break
        active[lease.slot] = lease

    if config.churn_windows:
        churn_rng = random.Random((config.seed << 1) ^ 0xC4A11)
        windows = plan_churn_windows(
            churn_rng,
            config.churn_windows,
            horizon=config.open_loop.duration,
            mean_duration=config.churn_mean_duration,
            num_slots=config.num_clients,
        )

        def _session_out(duration: float) -> None:
            quarantined = set(pool.quarantined)
            eligible = [
                slot
                for slot in sorted(active)
                if slot not in quarantined
                and not raw.clients[slot].crashed
                and not getattr(raw.clients[slot], "faust_failed", False)
            ]
            if not eligible:
                return  # every slot is away, crashed or evicted
            slot = churn_rng.choice(eligible)
            pool.release(active.pop(slot))
            client = raw.clients[slot]
            client.pause()
            raw.offline.set_online(client.name, False)
            raw.scheduler.schedule(duration, _session_in, slot)

        def _session_in(slot: int) -> None:
            client = raw.clients[slot]
            if client.crashed or getattr(client, "faust_failed", False):
                return
            raw.offline.set_online(client.name, True)
            client.resume()
            lease = pool.try_acquire_slot(slot)
            if lease is not None:  # slot may have been evicted while away
                active[slot] = lease

        for window in windows:
            raw.scheduler.schedule_at(window.start, _session_out, window.duration)

    if config.client_faults:
        injector = ClientFaultInjector(
            raw.scheduler, raw.clients, offline=raw.offline, trace=raw.trace
        )
        injector.schedule_specs(list(config.client_faults))

    tracing = False
    if config.trace_malloc and not tracemalloc.is_tracing():
        tracemalloc.start()
        tracing = True
    try:
        samples: list[ResidentSample] = []
        horizon = config.open_loop.duration
        while raw.now < horizon:
            raw.run(until=min(raw.now + config.sample_every, horizon))
            samples.append(_take_sample(raw, checkers))
        raw.run(until=horizon + config.drain)
        samples.append(_take_sample(raw, checkers))
        peak = None
        if tracemalloc.is_tracing():
            _current, peak = tracemalloc.get_traced_memory()
    finally:
        if tracing:
            tracemalloc.stop()

    planned = driver.stats.total_planned()
    completed = driver.stats.total_completed()
    duration = raw.now
    live = [
        c
        for c in raw.clients
        if not c.crashed and not getattr(c, "faust_failed", False)
    ]
    managers = [
        c.checkpoint_manager
        for c in live
        if getattr(c, "checkpoint_manager", None) is not None
    ]
    memberships = [
        c.membership_manager
        for c in live
        if getattr(c, "membership_manager", None) is not None
    ]
    epoch = 0
    evicted: tuple[int, ...] = ()
    rejoins = 0
    if memberships:
        newest = max(memberships, key=lambda m: m.epoch.epoch)
        epoch = newest.epoch.epoch
        evicted = newest.evicted_clients()
        rejoins = max(m.rejoins for m in memberships)
    return ScaleReport(
        config=config,
        planned=planned,
        completed=completed,
        duration=duration,
        throughput=completed / duration if duration > 0 else 0.0,
        latency_p50=latency_hist.p50,
        latency_p95=latency_hist.p95,
        latency_p99=latency_hist.p99,
        latency_max=latency_hist.max,
        latency_mean=latency_hist.mean,
        samples=samples,
        growth_ratio=_growth_ratio(samples, config.warmup_fraction),
        checkpoints_installed=(
            min(m.installed.seq for m in managers) if managers else 0
        ),
        server_checkpoints=getattr(raw.server, "checkpoints_handled", 0),
        pending_truncated=getattr(raw.server, "pending_truncated", 0),
        recorder_compacted=raw.recorder.compacted_ops,
        checker_ok={name: c.result().ok for name, c in checkers.items()},
        failed_clients=sum(
            1 for c in raw.clients if getattr(c, "faust_failed", False)
        ),
        epoch=epoch,
        evicted_clients=evicted,
        rejoins=rejoins,
        checkpoint_stall_seconds=max(
            (m.stall_seconds(raw.now) for m in managers), default=0.0
        ),
        sessions_created=pool.sessions_created,
        sessions_recycled=pool.sessions_recycled,
        peak_traced_bytes=peak,
        bytes_per_op=(peak / completed if peak and completed else None),
    )
