"""Churn: the disconnected-operation patterns the paper motivates.

Section 1: *"the clients in our model are not simultaneously present and
may be disconnected temporarily"* — the reason eventual (stability-based)
consistency is the right notion for this setting.  :class:`ChurnSchedule`
drives FAUST clients through random offline windows: while offline a
client pauses its background machinery and the offline channel buffers
its mail; on return everything resumes.

The storage-engine work adds *server-side* churn: crash-recovery windows
during which the server is down and then recovers from its storage
engine (:meth:`ChurnSchedule.add_server_outage`).  With a durable engine
both kinds of churn obey the same contract: invisible to failure
detection (a recovering server is not a Byzantine one, a sleeping client
is not a faulty server) and only *delaying* stability — properties the
churn tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.types import ClientId
from repro.workloads.runner import StorageSystem


@dataclass(frozen=True)
class OfflineWindow:
    """One planned disconnection."""

    client: ClientId
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class ServerOutageWindow:
    """One planned server crash-recovery cycle."""

    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


class ChurnSchedule:
    """Applies offline windows to a FAUST deployment."""

    def __init__(self, system: StorageSystem) -> None:
        self._system = system
        self.windows: list[OfflineWindow] = []
        self.server_outages: list[ServerOutageWindow] = []

    def add_window(self, client: ClientId, start: float, duration: float) -> None:
        if duration <= 0:
            raise ValueError("offline windows need positive duration")
        window = OfflineWindow(client=client, start=start, duration=duration)
        self.windows.append(window)
        self._system.scheduler.schedule_at(window.start, self._go_offline, window)
        self._system.scheduler.schedule_at(window.end, self._come_back, window)

    def random_windows(
        self,
        count: int,
        horizon: float,
        mean_duration: float,
        exclude: set[ClientId] | None = None,
    ) -> None:
        """Draw ``count`` random windows over ``[0, horizon]``."""
        rng = self._system.scheduler.rng
        exclude = exclude or set()
        eligible = [
            c.client_id for c in self._system.clients if c.client_id not in exclude
        ]
        for _ in range(count):
            client = rng.choice(eligible)
            start = rng.uniform(0.0, horizon)
            duration = max(rng.expovariate(1.0 / mean_duration), 1.0)
            self.add_window(client, start, duration)

    # ------------------------------------------------------------------ #
    # Server-side churn (crash-recovery windows)
    # ------------------------------------------------------------------ #

    def add_server_outage(self, start: float, duration: float) -> None:
        """Schedule one server crash-recovery window.

        The server crashes at ``start`` and recovers from its storage
        engine at ``start + duration``; requests delivered in between are
        held by the reliable channels and served after recovery.  With a
        durable engine this is client-churn's server-side mirror: delayed
        operations, no failure notifications.  Windows must not overlap —
        an overlapping restart would cut the longer outage short.
        """
        if duration <= 0:
            raise ValueError("server outage windows need positive duration")
        window = ServerOutageWindow(start=start, duration=duration)
        if any(self._overlaps(window, existing) for existing in self.server_outages):
            raise ValueError("server outage windows must not overlap")
        self.server_outages.append(window)
        self._system.server_outage(start, duration)

    def random_server_outages(
        self, count: int, horizon: float, mean_duration: float
    ) -> None:
        """Draw up to ``count`` random, non-overlapping windows over
        ``[0, horizon]`` (overlapping draws are skipped)."""
        rng = self._system.scheduler.rng
        for _ in range(count):
            start = rng.uniform(0.0, horizon)
            duration = max(rng.expovariate(1.0 / mean_duration), 1.0)
            candidate = ServerOutageWindow(start=start, duration=duration)
            if any(self._overlaps(candidate, w) for w in self.server_outages):
                continue
            self.add_server_outage(start, duration)

    @staticmethod
    def _overlaps(a: ServerOutageWindow, b: ServerOutageWindow) -> bool:
        return a.start < b.end and b.start < a.end

    # ------------------------------------------------------------------ #

    def _go_offline(self, window: OfflineWindow) -> None:
        client = self._system.clients[window.client]
        if client.crashed or getattr(client, "faust_failed", False):
            return
        client.pause()
        self._system.offline.set_online(client.name, False)
        self._system.trace.note(
            self._system.now, client.name, "offline", window.duration
        )

    def _come_back(self, window: OfflineWindow) -> None:
        client = self._system.clients[window.client]
        if client.crashed or getattr(client, "faust_failed", False):
            return
        self._system.offline.set_online(client.name, True)
        client.resume()
        self._system.trace.note(self._system.now, client.name, "online")
