"""Churn: the disconnected-operation patterns the paper motivates.

Section 1: *"the clients in our model are not simultaneously present and
may be disconnected temporarily"* — the reason eventual (stability-based)
consistency is the right notion for this setting.  :class:`ChurnSchedule`
drives FAUST clients through random offline windows: while offline a
client pauses its background machinery and the offline channel buffers
its mail; on return everything resumes.

The storage-engine work adds *server-side* churn: crash-recovery windows
during which the server is down and then recovers from its storage
engine (:meth:`ChurnSchedule.add_server_outage`).  With a durable engine
both kinds of churn obey the same contract: invisible to failure
detection (a recovering server is not a Byzantine one, a sleeping client
is not a faulty server) and only *delaying* stability — properties the
churn tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.types import ClientId
from repro.workloads.runner import StorageSystem


@dataclass(frozen=True)
class OfflineWindow:
    """One planned disconnection."""

    client: ClientId
    start: float
    duration: float

    @property
    def end(self) -> float:
        """When the client comes back online."""
        return self.start + self.duration


@dataclass(frozen=True)
class ServerOutageWindow:
    """One planned server crash-recovery cycle.

    ``shard`` targets one shard's server on a cluster deployment; ``None``
    means *the* server (single-server systems) or *every* server (a
    correlated, whole-cluster outage).
    """

    start: float
    duration: float
    shard: int | None = None

    @property
    def end(self) -> float:
        """When the server recovers."""
        return self.start + self.duration


class ChurnSchedule:
    """Applies offline windows to a FAUST deployment."""

    def __init__(self, system: StorageSystem) -> None:
        self._system = system
        self.windows: list[OfflineWindow] = []
        self.server_outages: list[ServerOutageWindow] = []

    def add_window(self, client: ClientId, start: float, duration: float) -> None:
        """Schedule one offline window for ``client``."""
        if duration <= 0:
            raise ValueError("offline windows need positive duration")
        window = OfflineWindow(client=client, start=start, duration=duration)
        self.windows.append(window)
        self._system.scheduler.schedule_at(window.start, self._go_offline, window)
        self._system.scheduler.schedule_at(window.end, self._come_back, window)

    def random_windows(
        self,
        count: int,
        horizon: float,
        mean_duration: float,
        exclude: set[ClientId] | None = None,
    ) -> None:
        """Draw ``count`` random windows over ``[0, horizon]``."""
        rng = self._system.scheduler.rng
        exclude = exclude or set()
        eligible = [
            c.client_id for c in self._system.clients if c.client_id not in exclude
        ]
        for _ in range(count):
            client = rng.choice(eligible)
            start = rng.uniform(0.0, horizon)
            duration = max(rng.expovariate(1.0 / mean_duration), 1.0)
            self.add_window(client, start, duration)

    # ------------------------------------------------------------------ #
    # Server-side churn (crash-recovery windows)
    # ------------------------------------------------------------------ #

    def add_server_outage(
        self, start: float, duration: float, shard: int | None = None
    ) -> None:
        """Schedule one server crash-recovery window.

        The server crashes at ``start`` and recovers from its storage
        engine at ``start + duration``; requests delivered in between are
        held by the reliable channels and served after recovery.  With a
        durable engine this is client-churn's server-side mirror: delayed
        operations, no failure notifications.  Windows targeting the same
        server must not overlap — an overlapping restart would cut the
        longer outage short.

        On a cluster deployment, ``shard`` crashes one shard's server
        only (the others keep serving); ``None`` takes the whole cluster
        down.
        """
        if duration <= 0:
            raise ValueError("server outage windows need positive duration")
        if shard is not None and not hasattr(self._system, "shard_outage"):
            raise ValueError(
                "shard-targeted outages need a cluster deployment"
            )
        window = ServerOutageWindow(start=start, duration=duration, shard=shard)
        if any(self._overlaps(window, existing) for existing in self.server_outages):
            raise ValueError("server outage windows must not overlap")
        self.server_outages.append(window)
        if shard is None:
            self._system.server_outage(start, duration)
        else:
            self._system.shard_outage(shard, start, duration)

    def random_server_outages(
        self, count: int, horizon: float, mean_duration: float
    ) -> None:
        """Draw up to ``count`` random, non-overlapping windows over
        ``[0, horizon]`` (overlapping draws are skipped)."""
        self._random_outages(count, horizon, mean_duration, lambda rng: None)

    def random_shard_outages(
        self, count: int, horizon: float, mean_duration: float
    ) -> None:
        """Cluster churn: draw up to ``count`` random windows, each
        hitting one random shard (overlapping same-target draws are
        skipped)."""
        if not hasattr(self._system, "shard_outage"):
            raise ValueError("shard-targeted outages need a cluster deployment")
        num_shards = self._system.num_shards
        self._random_outages(
            count, horizon, mean_duration, lambda rng: rng.randrange(num_shards)
        )

    def _random_outages(
        self, count: int, horizon: float, mean_duration: float, draw_shard
    ) -> None:
        rng = self._system.scheduler.rng
        for _ in range(count):
            shard = draw_shard(rng)
            start = rng.uniform(0.0, horizon)
            duration = max(rng.expovariate(1.0 / mean_duration), 1.0)
            candidate = ServerOutageWindow(
                start=start, duration=duration, shard=shard
            )
            if any(self._overlaps(candidate, w) for w in self.server_outages):
                continue
            self.add_server_outage(start, duration, shard=shard)

    @staticmethod
    def _overlaps(a: ServerOutageWindow, b: ServerOutageWindow) -> bool:
        """Windows conflict when they share a server and share time:
        ``shard=None`` (the whole deployment) conflicts with everything."""
        same_target = (
            a.shard is None or b.shard is None or a.shard == b.shard
        )
        return same_target and a.start < b.end and b.start < a.end

    # ------------------------------------------------------------------ #

    def _go_offline(self, window: OfflineWindow) -> None:
        client = self._system.clients[window.client]
        if client.crashed or getattr(client, "faust_failed", False):
            return
        client.pause()
        self._system.offline.set_online(client.name, False)
        self._system.trace.note(
            self._system.now, client.name, "offline", window.duration
        )

    def _come_back(self, window: OfflineWindow) -> None:
        client = self._system.clients[window.client]
        if client.crashed or getattr(client, "faust_failed", False):
            return
        self._system.offline.set_online(client.name, True)
        client.resume()
        self._system.trace.note(self._system.now, client.name, "online")
