"""Client churn: the disconnected-operation patterns the paper motivates.

Section 1: *"the clients in our model are not simultaneously present and
may be disconnected temporarily"* — the reason eventual (stability-based)
consistency is the right notion for this setting.  :class:`ChurnSchedule`
drives FAUST clients through random offline windows: while offline a
client pauses its background machinery and the offline channel buffers
its mail; on return everything resumes.

Churn must be *invisible* to failure detection (a sleeping client is not
a faulty server) and must only *delay* stability — properties the churn
tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.types import ClientId
from repro.workloads.runner import StorageSystem


@dataclass(frozen=True)
class OfflineWindow:
    """One planned disconnection."""

    client: ClientId
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


class ChurnSchedule:
    """Applies offline windows to a FAUST deployment."""

    def __init__(self, system: StorageSystem) -> None:
        self._system = system
        self.windows: list[OfflineWindow] = []

    def add_window(self, client: ClientId, start: float, duration: float) -> None:
        if duration <= 0:
            raise ValueError("offline windows need positive duration")
        window = OfflineWindow(client=client, start=start, duration=duration)
        self.windows.append(window)
        self._system.scheduler.schedule_at(window.start, self._go_offline, window)
        self._system.scheduler.schedule_at(window.end, self._come_back, window)

    def random_windows(
        self,
        count: int,
        horizon: float,
        mean_duration: float,
        exclude: set[ClientId] | None = None,
    ) -> None:
        """Draw ``count`` random windows over ``[0, horizon]``."""
        rng = self._system.scheduler.rng
        exclude = exclude or set()
        eligible = [
            c.client_id for c in self._system.clients if c.client_id not in exclude
        ]
        for _ in range(count):
            client = rng.choice(eligible)
            start = rng.uniform(0.0, horizon)
            duration = max(rng.expovariate(1.0 / mean_duration), 1.0)
            self.add_window(client, start, duration)

    # ------------------------------------------------------------------ #

    def _go_offline(self, window: OfflineWindow) -> None:
        client = self._system.clients[window.client]
        if client.crashed or getattr(client, "faust_failed", False):
            return
        client.pause()
        self._system.offline.set_online(client.name, False)
        self._system.trace.note(
            self._system.now, client.name, "offline", window.duration
        )

    def _come_back(self, window: OfflineWindow) -> None:
        client = self._system.clients[window.client]
        if client.crashed or getattr(client, "faust_failed", False):
            return
        self._system.offline.set_online(client.name, True)
        client.resume()
        self._system.trace.note(self._system.now, client.name, "online")
