"""Workload generation and the driver that feeds operations to clients.

A workload is, per client, a list of :class:`PlannedOp` — operation kind,
target register, value, and a think-time before issuing.  The
:class:`Driver` walks each client through its script, issuing the next
operation when the previous one completes, and keeps completion statistics
(essential for the wait-freedom experiments, where *not completing* is the
phenomenon under study).

Closed loop vs open loop.  Scripted workloads are *closed-loop*: each
client issues its next operation only after the previous one completed,
so the offered load adapts to the system's speed and queueing delay is
invisible.  The scale harness (:mod:`repro.workloads.scale`) needs the
opposite — *open-loop* arrivals (:class:`TimedOp`, Poisson interarrivals,
Zipf key popularity) issue at absolute times regardless of completion, so
measured latency includes the queueing a loaded deployment actually
inflicts (the coordinated-omission trap closed loops fall into).
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError, ProtocolError
from repro.common.types import ClientId, OpKind, RegisterId
from repro.workloads.runner import StorageSystem


@dataclass(frozen=True)
class PlannedOp:
    """One scripted operation."""

    kind: OpKind
    register: RegisterId
    value: bytes | None = None  # writes only
    think_time: float = 0.0  # delay between previous completion and issue


@dataclass
class WorkloadConfig:
    """Knobs for random workload generation."""

    ops_per_client: int = 20
    read_fraction: float = 0.5
    value_size: int = 32
    mean_think_time: float = 2.0
    #: clients that issue no operations (pure observers)
    silent_clients: frozenset[ClientId] = frozenset()

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigurationError("read_fraction must be in [0, 1]")
        if self.ops_per_client < 0 or self.value_size < 1:
            raise ConfigurationError("invalid workload parameters")


def unique_value(client: ClientId, sequence: int, size: int) -> bytes:
    """A distinct, self-describing register value (Section 2 assumes
    written values are unique; we make them traceable too)."""
    stem = f"C{client + 1}#{sequence}|".encode()
    if len(stem) >= size:
        return stem
    return stem + bytes((client * 131 + sequence * 17 + k) % 256 for k in range(size - len(stem)))


def generate_scripts(
    num_clients: int, config: WorkloadConfig, rng: random.Random
) -> dict[ClientId, list[PlannedOp]]:
    """Random per-client scripts under ``config``."""
    scripts: dict[ClientId, list[PlannedOp]] = {}
    for client in range(num_clients):
        ops: list[PlannedOp] = []
        if client in config.silent_clients:
            scripts[client] = ops
            continue
        write_count = 0
        for _ in range(config.ops_per_client):
            think = rng.expovariate(1.0 / config.mean_think_time) if config.mean_think_time > 0 else 0.0
            if rng.random() < config.read_fraction:
                target = rng.randrange(num_clients)
                ops.append(PlannedOp(OpKind.READ, target, think_time=think))
            else:
                write_count += 1
                ops.append(
                    PlannedOp(
                        OpKind.WRITE,
                        client,
                        value=unique_value(client, write_count, config.value_size),
                        think_time=think,
                    )
                )
        scripts[client] = ops
    return scripts


class ZipfSampler:
    """Zipf(s)-distributed indexes over ``0 .. num_items - 1``.

    Item ``k`` (0-based) is drawn with probability proportional to
    ``1 / (k + 1) ** exponent`` — the skewed key popularity real storage
    front-ends see.  The CDF is precomputed once; each draw is a single
    uniform variate plus a bisection, so sampling stays O(log n) and the
    sequence is fully determined by the caller's RNG.
    """

    def __init__(self, num_items: int, exponent: float = 1.0) -> None:
        if num_items < 1:
            raise ConfigurationError("ZipfSampler needs at least one item")
        if exponent < 0:
            raise ConfigurationError("Zipf exponent must be non-negative")
        self.num_items = num_items
        self.exponent = exponent
        weights = [1.0 / (k + 1) ** exponent for k in range(num_items)]
        total = sum(weights)
        cdf: list[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cdf.append(acc)
        cdf[-1] = 1.0  # guard against float drift at the tail
        self._cdf = cdf

    def sample(self, rng: random.Random) -> int:
        """Draw one index using ``rng``."""
        return bisect_left(self._cdf, rng.random())


@dataclass(frozen=True)
class TimedOp:
    """One open-loop operation: issued at absolute time ``at``."""

    at: float
    kind: OpKind
    register: RegisterId
    value: bytes | None = None  # writes only


@dataclass
class OpenLoopConfig:
    """Knobs for open-loop (Poisson/Zipf) schedule generation."""

    #: Mean arrivals per virtual time unit, per client.
    rate: float = 1.0
    #: Schedule horizon: arrivals are drawn over ``[0, duration]``.
    duration: float = 100.0
    read_fraction: float = 0.5
    #: Key-popularity skew for read targets (0 = uniform).
    zipf_exponent: float = 1.0
    value_size: int = 32

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.duration <= 0:
            raise ConfigurationError("rate and duration must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigurationError("read_fraction must be in [0, 1]")
        if self.zipf_exponent < 0 or self.value_size < 1:
            raise ConfigurationError("invalid open-loop parameters")


def generate_open_loop(
    num_clients: int, config: OpenLoopConfig, rng: random.Random
) -> dict[ClientId, list[TimedOp]]:
    """Per-client open-loop schedules: Poisson arrivals, Zipf read keys.

    Arrival times are cumulative exponential interarrivals (a Poisson
    process of rate ``config.rate`` per client); reads target a
    Zipf-popular register, writes go to the client's own register (SWMR).
    The schedule depends only on ``rng``, so a pinned seed replays the
    identical workload.
    """
    sampler = ZipfSampler(num_clients, config.zipf_exponent)
    schedules: dict[ClientId, list[TimedOp]] = {}
    for client in range(num_clients):
        at = 0.0
        ops: list[TimedOp] = []
        writes = 0
        while True:
            at += rng.expovariate(config.rate)
            if at > config.duration:
                break
            if rng.random() < config.read_fraction:
                ops.append(TimedOp(at, OpKind.READ, sampler.sample(rng)))
            else:
                writes += 1
                ops.append(
                    TimedOp(
                        at,
                        OpKind.WRITE,
                        client,
                        unique_value(client, writes, config.value_size),
                    )
                )
        schedules[client] = ops
    return schedules


@dataclass
class DriverStats:
    """Per-client completion accounting."""

    issued: dict[ClientId, int] = field(default_factory=dict)
    completed: dict[ClientId, int] = field(default_factory=dict)
    planned: dict[ClientId, int] = field(default_factory=dict)

    def total_completed(self) -> int:
        """Operations completed across every client."""
        return sum(self.completed.values())

    def total_planned(self) -> int:
        """Operations planned across every client."""
        return sum(self.planned.values())

    def all_done(self) -> bool:
        """True when every client completed its full plan."""
        return all(
            self.completed.get(c, 0) >= planned
            for c, planned in self.planned.items()
        )


class Driver:
    """Feeds scripts to clients, one operation at a time per client.

    ``via_sessions=True`` routes operations through the api-level
    per-client sessions instead of calling the protocol clients
    directly — the mode a batching deployment needs, since the session
    is the layer that buffers and auto-flushes submissions
    (``SystemConfig(batching=...)``).  Requires a system exposing
    ``session(client_id)`` (the api facade or a cluster).
    """

    def __init__(self, system: StorageSystem, via_sessions: bool = False) -> None:
        self._system = system
        self._via_sessions = via_sessions
        if via_sessions and not hasattr(system, "session"):
            raise ConfigurationError(
                "via_sessions needs a system with per-client sessions "
                "(open it through repro.api)"
            )
        self.stats = DriverStats()

    def attach(self, client_id: ClientId, script: list[PlannedOp]) -> None:
        """Start feeding ``script`` to ``client_id`` (closed loop)."""
        self.stats.planned[client_id] = len(script)
        self.stats.issued.setdefault(client_id, 0)
        self.stats.completed.setdefault(client_id, 0)
        if script:
            self._schedule_next(client_id, script, 0)

    def attach_all(self, scripts: dict[ClientId, list[PlannedOp]]) -> None:
        """Attach every client's closed-loop script."""
        for client_id, script in scripts.items():
            self.attach(client_id, script)

    def _schedule_next(self, client_id: ClientId, script, index: int) -> None:
        planned = script[index]
        self._system.scheduler.schedule(
            planned.think_time, self._issue, client_id, script, index
        )

    def _issue(self, client_id: ClientId, script, index: int) -> None:
        client = self._system.clients[client_id]
        if client.crashed or getattr(client, "failed", False):
            return  # a crashed or halted client takes no more steps
        if getattr(client, "faust_failed", False):
            return
        planned: PlannedOp = script[index]
        self.stats.issued[client_id] += 1

        def completed(_outcome) -> None:
            self.stats.completed[client_id] += 1
            if index + 1 < len(script):
                self._schedule_next(client_id, script, index + 1)

        if self._via_sessions:
            # Pipelined submission: the session (and its batch buffer)
            # absorbs the stream, so think time spaces *submissions* and
            # batches can actually fill — waiting for completion first
            # would cap every batch at one operation.
            session = self._system.session(client_id)
            try:
                handle = (
                    session.write(planned.value)
                    if planned.kind is OpKind.WRITE
                    else session.read(planned.register)
                )
            except ProtocolError:
                return  # client died between operations; stop the script
            def settled(h) -> None:
                if h._exception is None:
                    self.stats.completed[client_id] += 1
            handle.add_done_callback(settled)
            if index + 1 < len(script):
                self._schedule_next(client_id, script, index + 1)
        elif planned.kind is OpKind.WRITE:
            client.write(planned.value, completed)
        else:
            client.read(planned.register, completed)

    # ------------------------------------------------------------------ #
    # Open-loop mode
    # ------------------------------------------------------------------ #

    def attach_open_loop(
        self,
        client_id: ClientId,
        schedule: list[TimedOp],
        on_latency=None,
    ) -> None:
        """Drive one client by absolute arrival times (open loop).

        Operations issue at each :class:`TimedOp`'s ``at`` regardless of
        whether earlier ones completed — the client's submission queue
        absorbs the backlog, so ``on_latency(client_id, latency)`` (called
        at each completion with ``completion_time - arrival_time``)
        measures *response time including queueing delay*, which is the
        quantity a closed-loop driver cannot see.
        """
        self.stats.planned[client_id] = (
            self.stats.planned.get(client_id, 0) + len(schedule)
        )
        self.stats.issued.setdefault(client_id, 0)
        self.stats.completed.setdefault(client_id, 0)
        if schedule:
            self._system.scheduler.schedule_at(
                schedule[0].at, self._issue_timed, client_id, schedule, 0, on_latency
            )

    def attach_open_loop_all(
        self, schedules: dict[ClientId, list[TimedOp]], on_latency=None
    ) -> None:
        """Attach every client's open-loop schedule."""
        for client_id, schedule in schedules.items():
            self.attach_open_loop(client_id, schedule, on_latency)

    def _issue_timed(self, client_id: ClientId, schedule, index: int, on_latency) -> None:
        # Chain before issuing: a dead client stops the chain below, but a
        # slow one must not delay the next arrival (that's the open loop).
        if index + 1 < len(schedule):
            self._system.scheduler.schedule_at(
                schedule[index + 1].at,
                self._issue_timed, client_id, schedule, index + 1, on_latency,
            )
        client = self._system.clients[client_id]
        if client.crashed or getattr(client, "failed", False):
            return
        if getattr(client, "faust_failed", False):
            return
        op: TimedOp = schedule[index]
        self.stats.issued[client_id] += 1
        arrival = op.at

        def completed(_outcome) -> None:
            self.stats.completed[client_id] += 1
            if on_latency is not None:
                on_latency(client_id, self._system.now - arrival)

        if op.kind is OpKind.WRITE:
            client.write(op.value, completed)
        else:
            client.read(op.register, completed)

    # ------------------------------------------------------------------ #
    # Run helpers
    # ------------------------------------------------------------------ #

    def run_to_completion(self, timeout: float = 100_000.0) -> bool:
        """Run until every script finished; False if blocked/failed first."""
        return self._system.run_until(self.stats.all_done, timeout=timeout)

    def completion_fraction(self) -> float:
        """Completed / planned over all clients (1.0 when nothing planned)."""
        planned = self.stats.total_planned()
        if planned == 0:
            return 1.0
        return self.stats.total_completed() / planned
