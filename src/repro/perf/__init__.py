"""Performance accounting for the reproduction (see PERFORMANCE.md).

Two halves:

* :mod:`repro.perf.profile` — the runtime harness: :class:`Profiler`
  (timers / counters / allocation stats) plus :func:`system_profile`,
  which snapshots any running deployment (single-server, api-level or
  sharded cluster) into machine-readable data, hot-path cache
  effectiveness included.
* :mod:`repro.perf.regression` — the pipeline that compares two
  ``BENCH_*.json`` files and fails CI on >20% regressions
  (``python -m repro.perf baseline.json current.json``).
"""

from repro.perf.profile import (
    AllocationStat,
    Profiler,
    TimerStat,
    hot_path_cache_stats,
    reset_hot_path_caches,
    system_profile,
)
from repro.perf.regression import (
    DEFAULT_MAX_REGRESSION,
    Delta,
    Report,
    compare,
    load_results,
)

__all__ = [
    "AllocationStat",
    "DEFAULT_MAX_REGRESSION",
    "Delta",
    "Profiler",
    "Report",
    "TimerStat",
    "compare",
    "hot_path_cache_stats",
    "load_results",
    "reset_hot_path_caches",
    "system_profile",
]
