"""The performance-profiling harness (timers, counters, allocation stats).

One :class:`Profiler` collects everything a scenario needs to explain
where its time went, in a machine-readable form:

* **Timers** — ``with profiler.timer("phase"):`` accumulates wall-clock
  seconds and call counts per named section.
* **Counters** — ``profiler.count("replies")`` for event tallies.
* **Allocation stats** — ``with profiler.track_allocations("phase"):``
  records the current/peak traced memory delta of a section via
  :mod:`tracemalloc` (enabled only inside the block, so the rest of the
  run pays nothing).
* **System harvesting** — :func:`system_profile` (also exposed as
  ``profile()`` on :class:`~repro.workloads.runner.StorageSystem`,
  :class:`~repro.api.system.System` and
  :class:`~repro.cluster.system.ClusterSystem`) snapshots the counters
  the runtime already maintains: scheduler events, per-client completed
  operations, server SUBMIT/COMMIT tallies and pending-list pressure,
  plus the hot-path cache effectiveness of the encoding, digest-chain
  and signature-verification memos.

Everything returned is plain dict/list/str/int/float, so profiles can be
``json.dump``-ed next to the ``BENCH_*.json`` trajectory (see
PERFORMANCE.md for the cost model they feed).
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.registry import get_registry


@dataclass
class TimerStat:
    """Accumulated wall-clock time of one named section."""

    calls: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0

    def observe(self, seconds: float) -> None:
        """Fold one section execution into the aggregate."""
        self.calls += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds


@dataclass
class AllocationStat:
    """Traced-memory delta of one named section (bytes)."""

    calls: int = 0
    allocated_bytes: int = 0
    peak_bytes: int = 0

    def observe(self, allocated: int, peak: int) -> None:
        """Fold one tracked section into the aggregate."""
        self.calls += 1
        self.allocated_bytes += allocated
        if peak > self.peak_bytes:
            self.peak_bytes = peak


class _AllocSection:
    """One open ``track_allocations`` section (process-global stack entry).

    ``peak_so_far`` carries the highest *absolute* traced-memory peak
    observed while the section was open: every inner section boundary
    folds the current peak into all open sections before resetting the
    high-water mark, so an outer section keeps its pre-inner peak even
    though the inner section resets :mod:`tracemalloc`'s single counter.
    """

    __slots__ = ("before", "peak_so_far")

    def __init__(self, before: int) -> None:
        self.before = before
        self.peak_so_far = before


#: Open allocation-tracking sections, outermost first.  tracemalloc is
#: process-global state, so the stack is too (shared across Profilers).
_alloc_stack: list[_AllocSection] = []
_tracing_started_by_us = False


def _fold_peak_into_open_sections(peak: int) -> None:
    for section in _alloc_stack:
        if peak > section.peak_so_far:
            section.peak_so_far = peak


@dataclass
class Profiler:
    """Timers + counters + allocation stats with a JSON-able snapshot.

    When the process-wide :mod:`repro.obs` registry is enabled
    (:func:`repro.obs.registry.enable_metrics`), timers and counters are
    mirrored onto it as ``perf.timer.<name>`` histograms and
    ``perf.counter.<name>`` counters, so profiler sections show up in
    the same exposition (``/metrics``, ``repro stats``) as the runtime's
    own instrumentation.  :meth:`snapshot` always reads the local state.
    """

    timers: dict[str, TimerStat] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    allocations: dict[str, AllocationStat] = field(default_factory=dict)
    #: The obs registry mirrored into (captured at construction).
    registry: Any = field(default_factory=get_registry, repr=False, compare=False)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Accumulate the wall-clock duration of the ``with`` body."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            stat = self.timers.get(name)
            if stat is None:
                stat = self.timers[name] = TimerStat()
            stat.observe(elapsed)
            if self.registry.enabled:
                self.registry.histogram(f"perf.timer.{name}").observe(elapsed)

    def count(self, name: str, by: int = 1) -> None:
        """Add ``by`` to the named counter (created at zero)."""
        self.counters[name] = self.counters.get(name, 0) + by
        if self.registry.enabled:
            self.registry.counter(f"perf.counter.{name}").inc(by)

    @contextmanager
    def track_allocations(self, name: str) -> Iterator[None]:
        """Record the traced-memory delta of the ``with`` body.

        Starts :mod:`tracemalloc` only if it is not already running (and
        stops it again once the last tracked section exits).  The peak
        high-water mark is reset on entry, so ``peak_bytes`` is the peak
        *above the section's starting usage* — not the process-lifetime
        peak — even when ambient tracing was already active.

        Sections nest correctly: tracemalloc has a single process-wide
        high-water mark, so each section boundary folds the current peak
        into every still-open section before resetting it.  An outer
        section therefore reports ``max`` over its whole body (including
        any peak reached *before* an inner section reset the mark), and
        an inner section never inherits allocations from outside itself.
        """
        global _tracing_started_by_us
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            _tracing_started_by_us = True
        before, peak = tracemalloc.get_traced_memory()
        _fold_peak_into_open_sections(peak)
        tracemalloc.reset_peak()
        section = _AllocSection(before)
        _alloc_stack.append(section)
        try:
            yield
        finally:
            current, peak = tracemalloc.get_traced_memory()
            for index, open_section in enumerate(_alloc_stack):
                if open_section is section:
                    del _alloc_stack[index]
                    break
            _fold_peak_into_open_sections(peak)
            tracemalloc.reset_peak()
            if not _alloc_stack and _tracing_started_by_us:
                tracemalloc.stop()
                _tracing_started_by_us = False
            stat = self.allocations.get(name)
            if stat is None:
                stat = self.allocations[name] = AllocationStat()
            stat.observe(
                max(0, current - section.before),
                max(0, max(section.peak_so_far, peak) - section.before),
            )

    def snapshot(self) -> dict[str, Any]:
        """Everything collected so far as plain JSON-able data."""
        return {
            "timers": {
                name: {
                    "calls": t.calls,
                    "total_seconds": t.total_seconds,
                    "max_seconds": t.max_seconds,
                }
                for name, t in sorted(self.timers.items())
            },
            "counters": dict(sorted(self.counters.items())),
            "allocations": {
                name: {
                    "calls": a.calls,
                    "allocated_bytes": a.allocated_bytes,
                    "peak_bytes": a.peak_bytes,
                }
                for name, a in sorted(self.allocations.items())
            },
        }


def hot_path_cache_stats() -> dict[str, dict[str, int]]:
    """Hit/miss counters of the process-wide hot-path memo caches.

    Covers the TLV-encoding memos (:mod:`repro.common.encoding`) and the
    digest-chain memo (:mod:`repro.ustor.digests`).  The per-system
    signature-verification cache is reported by :func:`system_profile`
    since it lives on the system's keystore, not at module level.
    """
    from repro.common.encoding import encoding_cache_stats
    from repro.ustor.digests import chain_cache_stats

    return {
        "encoding": encoding_cache_stats(),
        "digest_chain": chain_cache_stats(),
    }


def reset_hot_path_caches() -> None:
    """Reset the process-wide memo caches and their counters.

    Benchmarks call this between the reference and optimized passes so
    hit rates describe exactly one measured workload.
    """
    from repro.common.encoding import reset_encoding_caches
    from repro.ustor.digests import reset_chain_cache

    reset_encoding_caches()
    reset_chain_cache()


def _server_stats(server: Any) -> dict[str, Any]:
    stats = {
        "submits_handled": getattr(server, "submits_handled", 0),
        "commits_handled": getattr(server, "commits_handled", 0),
        "max_pending_len": getattr(server, "max_pending_len", 0),
        "restarts": getattr(server, "restarts", 0),
    }
    if getattr(server, "group_commit", False):
        stats["group_commits"] = getattr(server, "group_commits", 0)
        stats["largest_group_commit"] = getattr(server, "largest_group_commit", 0)
    return stats


def _shard_profile(shard: Any) -> dict[str, Any]:
    """The per-deployment core of :func:`system_profile` (one scheduler +
    server + client population)."""
    profile: dict[str, Any] = {
        "scheduler": {
            "now": shard.scheduler.now,
            "events_processed": shard.scheduler.events_processed,
            "pending_events": shard.scheduler.pending,
        },
        "clients": {
            "count": len(shard.clients),
            "completed_operations": sum(
                getattr(c, "completed_operations", 0) for c in shard.clients
            ),
            "failed": sum(
                1
                for c in shard.clients
                if getattr(c, "failed", False) or getattr(c, "faust_failed", False)
            ),
            "crashed": sum(1 for c in shard.clients if c.crashed),
        },
    }
    server = getattr(shard, "server", None)
    if server is not None:
        profile["server"] = _server_stats(server)
    network = getattr(shard, "network", None)
    if network is not None and getattr(network, "batching", False):
        profile["transport_batching"] = {
            "bursts_formed": network.bursts_formed,
            "messages_coalesced": network.messages_coalesced,
        }
    keystore = getattr(shard, "keystore", None)
    if keystore is not None and hasattr(keystore, "verification_cache_stats"):
        profile["verification_cache"] = keystore.verification_cache_stats()
    return profile


def system_profile(system: Any) -> dict[str, Any]:
    """A machine-readable performance profile of a running deployment.

    Accepts a raw :class:`~repro.workloads.runner.StorageSystem`, an
    api-level :class:`~repro.api.system.System` (unwrapped via ``.raw``),
    or a sharded :class:`~repro.cluster.system.ClusterSystem` (profiled
    per shard and aggregated).  Always includes the process-wide
    hot-path cache stats, so a scenario's profile shows how much hashing
    and encoding work the fast paths removed.
    """
    backend_name = getattr(system, "backend_name", None)
    raw = getattr(system, "raw", system)
    shards = getattr(raw, "shards", None)
    if shards is not None:
        per_shard = [_shard_profile(shard) for shard in shards]
        profile: dict[str, Any] = {
            "kind": "cluster",
            "num_shards": len(shards),
            "scheduler": {
                "now": raw.scheduler.now,
                "events_processed": raw.scheduler.events_processed,
                "pending_events": raw.scheduler.pending,
            },
            "shards": per_shard,
            "clients": {
                "count": raw.num_clients,
                "completed_operations": sum(
                    getattr(c, "completed_operations", 0) for c in raw.clients
                ),
            },
            "server": {
                "submits_handled": sum(
                    s["server"]["submits_handled"] for s in per_shard if "server" in s
                ),
                "commits_handled": sum(
                    s["server"]["commits_handled"] for s in per_shard if "server" in s
                ),
            },
        }
    else:
        profile = {"kind": "single", **_shard_profile(raw)}
    if backend_name is not None:
        profile["backend"] = backend_name
    profile["hot_path_caches"] = hot_path_cache_stats()
    registry = get_registry()
    if registry.enabled:
        profile["obs"] = registry.snapshot()
    return profile
