"""``python -m repro.perf`` — the benchmark-regression comparison CLI."""

from repro.perf.regression import main

raise SystemExit(main())
