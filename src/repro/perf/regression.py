"""The benchmark-regression pipeline over ``BENCH_*.json`` trajectories.

``benchmarks/conftest.py`` writes a machine-readable results file for
every benchmark session: per-test wall-clock durations plus a
``hot_paths`` section with the reference-vs-optimized speedups measured
by ``benchmarks/test_bench_perf.py``.  This module compares two such
files and turns the deltas into a CI verdict::

    python -m repro.perf benchmarks/results/BENCH_baseline.json \\
                         benchmarks/results/BENCH_latest.json

Two kinds of checks, with different portability:

* **Hot-path speedups (the default gate).**  A speedup is a ratio of two
  timings taken in the same process on the same machine, so — for
  same-language code paths — it transfers across hardware: a 3x
  digest-chain speedup on a laptop is still ~3x on a CI runner.  The
  gate fails when a gated hot path's measured speedup drops more than
  ``--max-regression`` (default 20%) below the committed baseline's, or
  when a gated baseline hot path disappears.  Hot paths recorded with
  ``gate: false`` (ratios that measure machine properties, e.g. crypto
  C-extension cost vs. interpreter overhead) are reported but never
  fail the run.
* **Absolute wall-clock (``--absolute``).**  Raw per-test durations only
  compare meaningfully on the same machine; enable this locally when
  chasing a regression, not in CI.  Sub-``--min-seconds`` tests are
  ignored as noise.

Exit status: 0 when no regression, 1 otherwise — wire it straight into a
CI job (see ``.github/workflows/ci.yml``, job ``bench-regression``).

**Result rotation** (``--keep N``): every benchmark session writes a
timestamped ``BENCH_<stamp>.json``, which accumulates without bound.
``--keep N`` prunes the timestamped files in the results directory down
to the newest ``N`` after the comparison (or standalone, with no
baseline/current arguments).  ``BENCH_baseline.json``,
``BENCH_latest.json`` and archived ``BENCH_archive_*.json`` trajectory
points are never touched.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: Fail when a metric worsens by more than this fraction of the baseline.
DEFAULT_MAX_REGRESSION = 0.20

#: Ignore absolute-time comparisons on tests faster than this (noise).
DEFAULT_MIN_SECONDS = 0.05

#: Timestamped per-session result files (the only ones rotation prunes).
_TIMESTAMPED = re.compile(r"^BENCH_\d{8}T\d{6}\.json$")


def rotate_results(results_dir: str | Path, keep: int) -> list[Path]:
    """Prune timestamped ``BENCH_*.json`` files down to the newest ``keep``.

    Only per-session files (``BENCH_<YYYYMMDD>T<HHMMSS>.json``) are
    candidates; the committed baseline, the ``BENCH_latest.json`` alias
    and archived trajectory points are never touched.  Returns the paths
    removed (sorted oldest first).
    """
    if keep < 0:
        raise ValueError("--keep takes a non-negative count")
    directory = Path(results_dir)
    stamped = sorted(
        path for path in directory.glob("BENCH_*.json")
        if _TIMESTAMPED.match(path.name)
    )
    doomed = stamped[: max(0, len(stamped) - keep)]
    for path in doomed:
        path.unlink()
    return doomed


@dataclass
class Delta:
    """One compared metric: its baseline value, current value and verdict."""

    name: str
    kind: str  # "hot_path" | "test"
    baseline: float
    current: float
    change: float  # signed fraction; positive means worse
    regressed: bool

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        if self.kind == "hot_path":
            return (
                f"hot path {self.name}: speedup {self.baseline:.2f}x -> "
                f"{self.current:.2f}x ({self.change:+.1%})"
            )
        if self.kind == "hot_path_info":
            return (
                f"hot path {self.name} (informational): speedup "
                f"{self.baseline:.2f}x -> {self.current:.2f}x ({self.change:+.1%})"
            )
        return (
            f"test {self.name}: {self.baseline:.3f}s -> {self.current:.3f}s "
            f"({self.change:+.1%})"
        )


@dataclass
class Report:
    """Outcome of comparing two benchmark result files."""

    deltas: list[Delta] = field(default_factory=list)
    missing_hot_paths: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[Delta]:
        """The deltas that exceed the allowed regression."""
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        """True when nothing regressed and no baseline hot path vanished."""
        return not self.regressions and not self.missing_hot_paths

    def to_json(self) -> dict[str, Any]:
        """The report as plain JSON-able data."""
        return {
            "ok": self.ok,
            "regressions": [d.describe() for d in self.regressions],
            "missing_hot_paths": list(self.missing_hot_paths),
            "deltas": [
                {
                    "name": d.name,
                    "kind": d.kind,
                    "baseline": d.baseline,
                    "current": d.current,
                    "change": d.change,
                    "regressed": d.regressed,
                }
                for d in self.deltas
            ],
            "notes": list(self.notes),
        }

    def render(self) -> str:
        """The report as a human-readable block of text."""
        lines = []
        for delta in self.deltas:
            marker = "REGRESSION" if delta.regressed else "ok"
            lines.append(f"[{marker:>10}] {delta.describe()}")
        for name in self.missing_hot_paths:
            lines.append(
                f"[REGRESSION] hot path {name}: present in baseline, missing "
                f"from current run"
            )
        for note in self.notes:
            lines.append(f"[      note] {note}")
        lines.append(
            "verdict: "
            + ("PASS" if self.ok else f"FAIL ({len(self.regressions) + len(self.missing_hot_paths)} regression(s))")
        )
        return "\n".join(lines)


def load_results(path: str | Path) -> dict[str, Any]:
    """Load one ``BENCH_*.json`` results file, validating its schema tag."""
    payload = json.loads(Path(path).read_text())
    schema = payload.get("schema", "")
    if not str(schema).startswith("repro-bench"):
        raise ValueError(f"{path}: not a repro benchmark results file ({schema!r})")
    return payload


def _test_durations(payload: dict[str, Any]) -> dict[str, float]:
    return {
        entry["id"]: float(entry["call_seconds"])
        for entry in payload.get("tests", [])
    }


def _hot_path_speedups(payload: dict[str, Any]) -> dict[str, tuple[float, bool]]:
    """``{name: (speedup, gated)}``; entries recorded with ``gate: false``
    (machine-property ratios, see ``benchmarks/conftest.py``) are
    compared informationally but never fail the run."""
    return {
        name: (float(entry["speedup"]), bool(entry.get("gate", True)))
        for name, entry in payload.get("hot_paths", {}).items()
    }


def compare(
    baseline: dict[str, Any],
    current: dict[str, Any],
    max_regression: float = DEFAULT_MAX_REGRESSION,
    absolute: bool = False,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> Report:
    """Compare two loaded result payloads; see the module docstring for
    the gating rules."""
    report = Report()

    base_hot = _hot_path_speedups(baseline)
    cur_hot = _hot_path_speedups(current)
    for name, (base_speedup, gated) in sorted(base_hot.items()):
        if name not in cur_hot:
            if gated:
                report.missing_hot_paths.append(name)
            else:
                report.notes.append(
                    f"informational hot path {name} missing from current run"
                )
            continue
        cur_speedup, _ = cur_hot[name]
        # Positive change = worse (speedup shrank by that fraction).
        change = (base_speedup - cur_speedup) / base_speedup
        report.deltas.append(
            Delta(
                name=name,
                kind="hot_path" if gated else "hot_path_info",
                baseline=base_speedup,
                current=cur_speedup,
                change=change,
                regressed=gated and change > max_regression,
            )
        )
    for name in sorted(set(cur_hot) - set(base_hot)):
        report.notes.append(
            f"new hot path {name}: {cur_hot[name][0]:.2f}x (no baseline)"
        )

    if absolute:
        base_tests = _test_durations(baseline)
        cur_tests = _test_durations(current)
        for name, base_seconds in sorted(base_tests.items()):
            if name not in cur_tests:
                report.notes.append(f"test {name} not in current run")
                continue
            cur_seconds = cur_tests[name]
            if base_seconds < min_seconds and cur_seconds < min_seconds:
                continue
            change = (cur_seconds - base_seconds) / base_seconds
            report.deltas.append(
                Delta(
                    name=name,
                    kind="test",
                    baseline=base_seconds,
                    current=cur_seconds,
                    change=change,
                    regressed=change > max_regression,
                )
            )
    return report


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Compare two BENCH_*.json files and fail on regressions.",
    )
    parser.add_argument(
        "baseline", nargs="?", default=None,
        help="committed baseline BENCH_*.json (omit with --keep to only rotate)",
    )
    parser.add_argument(
        "current", nargs="?", default=None,
        help="freshly produced BENCH_*.json",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION,
        help="allowed worsening as a fraction (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="also gate on per-test wall clock (same-machine comparisons only)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=DEFAULT_MIN_SECONDS,
        help="ignore absolute comparisons below this duration",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of text",
    )
    parser.add_argument(
        "--keep",
        type=int,
        default=None,
        metavar="N",
        help="after the comparison (or standalone), prune timestamped "
        "BENCH_*.json files in --results-dir to the newest N",
    )
    parser.add_argument(
        "--results-dir",
        default=None,
        help="directory rotated by --keep (default: the current results "
        "file's directory, else benchmarks/results)",
    )
    args = parser.parse_args(argv)

    if args.baseline is None and args.keep is None:
        parser.error("nothing to do: pass baseline+current and/or --keep N")
    if (args.baseline is None) != (args.current is None):
        parser.error("baseline and current results must be given together")

    status = 0
    if args.baseline is not None:
        try:
            baseline = load_results(args.baseline)
            current = load_results(args.current)
            report = compare(
                baseline,
                current,
                max_regression=args.max_regression,
                absolute=args.absolute,
                min_seconds=args.min_seconds,
            )
        except (OSError, ValueError, KeyError, TypeError) as exc:
            # A broken comparison must not skip the rotation below —
            # unbounded result-file growth is exactly what --keep stops.
            print(f"error: {exc}", file=sys.stderr)
            status = 2
        else:
            if args.json:
                print(json.dumps(report.to_json(), indent=2))
            else:
                print(report.render())
            status = 0 if report.ok else 1

    if args.keep is not None:
        results_dir = args.results_dir
        if results_dir is None:
            if args.current is not None:
                results_dir = Path(args.current).resolve().parent
            else:
                results_dir = Path("benchmarks") / "results"
        try:
            removed = rotate_results(results_dir, args.keep)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        # Stderr, so --json consumers can parse stdout as pure JSON.
        print(
            f"rotation: kept newest {args.keep} timestamped result file(s) "
            f"in {results_dir}, removed {len(removed)}",
            file=sys.stderr,
        )
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via -m
    raise SystemExit(main())
