"""Shared primitives: identifiers, the BOTTOM value, errors, encoding."""

from repro.common.encoding import encode, encode_sequence
from repro.common.errors import (
    ChannelError,
    CheckerError,
    ConfigurationError,
    CryptoError,
    EncodingError,
    HistoryError,
    ProtocolError,
    ReproError,
    SimulationError,
    UnknownSignerError,
)
from repro.common.types import (
    BOTTOM,
    Bottom,
    ClientId,
    OpKind,
    RegisterId,
    Value,
    client_name,
    parse_client_name,
    register_name,
)

__all__ = [
    "BOTTOM",
    "Bottom",
    "ChannelError",
    "CheckerError",
    "ClientId",
    "ConfigurationError",
    "CryptoError",
    "EncodingError",
    "HistoryError",
    "OpKind",
    "ProtocolError",
    "RegisterId",
    "ReproError",
    "SimulationError",
    "UnknownSignerError",
    "Value",
    "client_name",
    "encode",
    "parse_client_name",
    "encode_sequence",
    "register_name",
]
