"""Shared primitive types used across the FAUST reproduction.

The paper (Section 2) fixes the functionality ``F`` as ``n`` single-writer
multi-reader (SWMR) registers ``X_1 .. X_n`` over a value domain ``X`` with a
distinguished initial value ``BOTTOM`` that is *not* in ``X``.  Client and
register identifiers are 1-based in the paper; we keep 0-based indices
internally and render 1-based names (``C1``, ``X1``) only in human-readable
output, mirroring how the paper's ``C_i`` writes register ``X_i``.
"""

from __future__ import annotations

import enum
from typing import Final

# Identifier of a client process; also the index of the one register the
# client may write (C_i writes X_i).  0-based.
ClientId = int

# Index of a register, 0-based.  RegisterId == ClientId of its writer.
RegisterId = int

# Register values. The paper assumes uniquely-valued writes from an abstract
# domain; we use bytes so values can be hashed and signed directly.
Value = bytes


class Bottom:
    """The initial register value ``BOTTOM``, outside the value domain.

    A singleton: ``Bottom()`` always returns the same object, so identity and
    equality checks agree everywhere (including after pickling dataclasses
    that embed it in recorded histories).
    """

    _instance: "Bottom | None" = None

    def __new__(cls) -> "Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "BOTTOM"

    def __reduce__(self):
        return (Bottom, ())


#: The initial value held by every register (paper: the special value
#: outside the domain X).
BOTTOM: Final[Bottom] = Bottom()


class OpKind(enum.Enum):
    """The two operation kinds of the register functionality.

    The paper's invocation tuples carry an opcode from
    ``{READ, WRITE, BOTTOM}``; we never materialise the BOTTOM opcode because
    it only pads the type in the pseudocode.
    """

    READ = "READ"
    WRITE = "WRITE"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def client_name(client: ClientId) -> str:
    """Render a 0-based client id the way the paper writes it (``C1`` ..)."""
    return f"C{client + 1}"


def register_name(register: RegisterId) -> str:
    """Render a 0-based register id the way the paper writes it (``X1`` ..)."""
    return f"X{register + 1}"


def parse_client_name(name: str) -> ClientId | None:
    """Inverse of :func:`client_name`; ``None`` if the name is not a client's."""
    if name.startswith("C") and name[1:].isdigit():
        index = int(name[1:]) - 1
        if index >= 0:
            return index
    return None
