"""Canonical, injective byte encoding for signing and hashing.

The paper signs and hashes structured payloads such as
``SUBMIT || WRITE || i || t`` (Algorithm 1, line 14).  Plain string
concatenation is not injective (``"ab" + "c" == "a" + "bc"``), which would
void the unforgeability argument, so every payload that flows into
:mod:`repro.crypto` goes through this module's tag-length-value encoder.

The encoding is deliberately tiny and self-contained:

========  =======================================
tag 0x00  ``None`` (the paper's ``BOTTOM``)
tag 0x01  ``bool``
tag 0x02  ``int`` (unbounded, sign-magnitude)
tag 0x03  ``bytes``
tag 0x04  ``str`` (UTF-8)
tag 0x05  ``tuple``/``list`` (length-prefixed, recursive)
tag 0x06  enum members (encoded by class and name)
========  =======================================

All lengths are 8-byte big-endian, making the encoding a prefix code and
therefore injective on the supported type universe.

Because the encoding is a prefix code it is also *decodable*:
:func:`decode` is the exact inverse used by the storage engine
(:mod:`repro.store`) to persist server state — the same bytes that are
signed can be replayed from disk.  Sequences decode as tuples (lists and
tuples encode identically); enum members decode through an explicit
registry passed by the caller, keeping this module free of protocol
imports.

Fast path vs. reference
-----------------------

Encoding sits under every signature, every hash and every digest-chain
link, which makes it the single hottest function of the whole
reproduction (see PERFORMANCE.md).  :func:`encode` and :func:`decode` are
therefore implemented as a single-pass fast path: one reused
``bytearray`` output buffer per call, integer tag comparisons on decode,
and small caches for the encodings that recur endlessly in protocol
traffic (domain-separation labels, enum opcodes, small integers, small
lengths).  The original straight-line implementations are kept as
:func:`encode_reference` / :func:`decode_reference` — they are the
executable specification, and ``tests/test_perf_equivalence.py`` proves
byte-for-byte equality between the two on randomized inputs.  The caches
never change outputs; they only skip recomputation of deterministic
byte strings.
"""

from __future__ import annotations

import enum
import struct
from typing import Any, Iterable

from repro.common.errors import (
    EncodingError,
    OversizedFrameError,
    TruncatedFrameError,
)

_TAG_NONE = b"\x00"
_TAG_BOOL = b"\x01"
_TAG_INT = b"\x02"
_TAG_BYTES = b"\x03"
_TAG_STR = b"\x04"
_TAG_SEQ = b"\x05"
_TAG_ENUM = b"\x06"

_LEN_BYTES = 8

# --------------------------------------------------------------------- #
# Fast-path caches.  Everything cached here is a pure function of its
# key, so the caches are invisible except for speed; sizes are bounded so
# adversarial inputs (huge strings, unbounded ints) cannot grow them.
# --------------------------------------------------------------------- #

#: Precomputed length prefixes for the small lengths that dominate real
#: payloads (labels, 32-byte hashes, 64-byte signatures, short vectors).
_LEN_CACHE = tuple(n.to_bytes(_LEN_BYTES, "big") for n in range(512))
_LEN_CACHE_MAX = len(_LEN_CACHE)

#: Bound for the memo dictionaries below (entries, not bytes).
_MEMO_LIMIT = 4096

_INT_MEMO: dict[int, bytes] = {}
_STR_MEMO: dict[str, bytes] = {}
_ENUM_MEMO: dict[enum.Enum, bytes] = {}

#: Miss counter + memo sizes, harvested by :mod:`repro.perf`.  Hits are
#: deliberately *not* counted: the hit path is the hot path, and even one
#: dict increment per memoized value measurably erodes the speedup the
#: memos exist to provide.  Misses (rare, one per distinct value) plus
#: entry counts characterise the caches fully enough for the cost model.
_stats = {"misses": 0}


def encoding_cache_stats() -> dict[str, int]:
    """Miss counter and entry counts of the encode memo caches."""
    return {
        "misses": _stats["misses"],
        "int_entries": len(_INT_MEMO),
        "str_entries": len(_STR_MEMO),
        "enum_entries": len(_ENUM_MEMO),
    }


def reset_encoding_caches() -> None:
    """Drop all memoized encodings and zero the counters (test isolation)."""
    _INT_MEMO.clear()
    _STR_MEMO.clear()
    _ENUM_MEMO.clear()
    _stats["misses"] = 0


def _encode_length(n: int) -> bytes:
    if n < _LEN_CACHE_MAX:
        return _LEN_CACHE[n]
    return n.to_bytes(_LEN_BYTES, "big")


def _int_bytes(value: int) -> bytes:
    """The full ``tag || sign || length || magnitude`` encoding of an int
    (memo slow path — the hit path is inlined in :func:`_encode_into`)."""
    _stats["misses"] += 1
    sign = b"\x01" if value >= 0 else b"\x00"
    magnitude = abs(value)
    payload = magnitude.to_bytes((magnitude.bit_length() + 7) // 8 or 1, "big")
    raw = _TAG_INT + sign + _encode_length(len(payload)) + payload
    if -_MEMO_LIMIT <= value <= _MEMO_LIMIT:
        if len(_INT_MEMO) >= 2 * _MEMO_LIMIT:  # pragma: no cover - bound guard
            _INT_MEMO.clear()
        _INT_MEMO[value] = raw
    return raw


def _str_bytes(value: str) -> bytes:
    """The full ``tag || length || utf8`` encoding of a string
    (memo slow path)."""
    _stats["misses"] += 1
    raw_payload = value.encode("utf-8")
    raw = _TAG_STR + _encode_length(len(raw_payload)) + raw_payload
    if len(raw_payload) <= 64:
        if len(_STR_MEMO) >= _MEMO_LIMIT:  # pragma: no cover - bound guard
            _STR_MEMO.clear()
        _STR_MEMO[value] = raw
    return raw


def _enum_bytes(value: enum.Enum) -> bytes:
    """The full ``tag || length || ClassName.MEMBER`` encoding of a member
    (memo slow path)."""
    _stats["misses"] += 1
    name = f"{type(value).__name__}.{value.name}".encode("utf-8")
    raw = _TAG_ENUM + _encode_length(len(name)) + name
    if len(_ENUM_MEMO) >= _MEMO_LIMIT:  # pragma: no cover - bound guard
        _ENUM_MEMO.clear()
    _ENUM_MEMO[value] = raw
    return raw


def encoded_int(value: int) -> bytes:
    """The canonical encoding of a bare ``int`` (public fast-path helper).

    Exactly the bytes :func:`encode` emits for an integer element,
    served from the small-int memo when possible.  Exists so other fast
    paths (the digest chain feeds client ids straight into a hash state)
    can reuse the memo without touching this module's internals.
    """
    memo = _INT_MEMO.get(value)
    return memo if memo is not None else _int_bytes(value)


def _encode_slow(value: Any, buf: bytearray) -> None:
    """Uncommon types: enum members, bytes-like views, subclasses, errors.

    Mirrors the type dispatch order of the reference encoder exactly
    (bool before int, enum before int) so subclass corner cases encode
    identically on both paths.
    """
    if isinstance(value, bool):
        buf += b"\x01\x01" if value else b"\x01\x00"
    elif isinstance(value, enum.Enum):
        buf += _ENUM_MEMO.get(value) or _enum_bytes(value)
    elif isinstance(value, int):
        buf += _INT_MEMO.get(value) or _int_bytes(value)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        buf += _TAG_BYTES
        buf += _encode_length(len(raw))
        buf += raw
    elif isinstance(value, str):
        buf += _STR_MEMO.get(value) or _str_bytes(value)
    elif isinstance(value, (tuple, list)):
        buf += _TAG_SEQ
        buf += _encode_length(len(value))
        for item in value:
            _encode_into(item, buf)
    else:
        raise EncodingError(
            f"cannot canonically encode value of type {type(value).__name__}: {value!r}"
        )


def _encode_into(value: Any, buf: bytearray) -> None:
    """Append the canonical encoding of ``value`` to ``buf`` (single pass).

    Dispatches on exact type first — ``value.__class__`` identity is the
    cheapest check CPython offers and covers all protocol traffic — with
    memo lookups inlined so a hit costs one dict probe and one buffer
    append.  Exactness matters for correctness too: ``True`` has class
    ``bool``, not ``int``, so the bool-before-int rule of the reference
    encoder is preserved; subclasses fall through to :func:`_encode_slow`,
    which replicates the reference dispatch order.
    """
    cls = value.__class__
    if cls is int:
        memo = _INT_MEMO.get(value)
        buf += memo if memo is not None else _int_bytes(value)
    elif cls is bytes:
        buf += _TAG_BYTES
        n = len(value)
        buf += _LEN_CACHE[n] if n < _LEN_CACHE_MAX else n.to_bytes(8, "big")
        buf += value
    elif cls is str:
        memo = _STR_MEMO.get(value)
        buf += memo if memo is not None else _str_bytes(value)
    elif cls is tuple or cls is list:
        buf += _TAG_SEQ
        n = len(value)
        buf += _LEN_CACHE[n] if n < _LEN_CACHE_MAX else n.to_bytes(8, "big")
        for item in value:
            _encode_into(item, buf)
    elif value is None:
        buf += _TAG_NONE
    elif cls is bool:
        buf += b"\x01\x01" if value else b"\x01\x00"
    else:
        _encode_slow(value, buf)


def encode(*values: Any) -> bytes:
    """Encode ``values`` as a single canonical byte string.

    ``encode(a, b)`` is equivalent to ``encode((a, b))`` modulo a constant
    prefix; both are injective.  This is the only entry point the rest of
    the library uses, e.g. ``encode("SUBMIT", OpKind.WRITE, i, t)`` for the
    SUBMIT-signature payload of Algorithm 1 line 14.  Byte-identical to
    :func:`encode_reference`.
    """
    buf = bytearray()
    buf += _TAG_SEQ
    n = len(values)
    buf += _LEN_CACHE[n] if n < _LEN_CACHE_MAX else n.to_bytes(8, "big")
    for value in values:
        _encode_into(value, buf)
    return bytes(buf)


def encode_sequence(values: Iterable[Any]) -> bytes:
    """Encode an iterable of values (materialised as a tuple)."""
    return encode(tuple(values))


# --------------------------------------------------------------------- #
# Decoding — the inverse, used by repro.store for durable server state
# --------------------------------------------------------------------- #


#: One shared big-endian u64 reader; ``unpack_from`` reads straight out
#: of the buffer without allocating an 8-byte slice first.
_READ_U64 = struct.Struct(">Q").unpack_from


def _decode_fast(
    data: bytes,
    offset: int,
    end: int,
    enum_lookup: dict[str, enum.Enum],
    _u64=_READ_U64,
    _from_bytes=int.from_bytes,
) -> tuple[Any, int]:
    """Decode one value starting at ``offset``; returns (value, new offset).

    Tags are compared as integers (``data[offset]``), length fields are
    read in place via :func:`struct.unpack_from`, and bounds are checked
    inline — the hot loop allocates nothing but the decoded values
    themselves.  Truncation is reported as the typed
    :class:`TruncatedFrameError` so socket readers can distinguish a
    short read from structural corruption; the sequence-count guard
    rejects a declared element count larger than the remaining input
    *before* looping (every element costs at least one byte, so such a
    count can never decode — failing fast keeps a hostile peer from
    driving a long doomed loop).
    """
    if offset >= end:
        raise TruncatedFrameError(
            f"truncated encoding: needed 1 byte(s) at offset {offset}, "
            f"only {end - offset} available"
        )
    tag = data[offset]
    offset += 1
    if tag == 0x05:
        if offset + 8 > end:
            raise TruncatedFrameError(
                f"truncated encoding: needed 8 byte(s) at offset {offset}, "
                f"only {end - offset} available"
            )
        count = _u64(data, offset)[0]
        offset += 8
        if count > end - offset:
            raise TruncatedFrameError(
                f"truncated encoding: sequence declares {count} element(s) at "
                f"offset {offset}, only {end - offset} byte(s) available"
            )
        items = []
        append = items.append
        for _ in range(count):
            item, offset = _decode_fast(data, offset, end, enum_lookup)
            append(item)
        return tuple(items), offset
    if tag == 0x03 or tag == 0x04 or tag == 0x06:
        if offset + 8 > end:
            raise TruncatedFrameError(
                f"truncated encoding: needed 8 byte(s) at offset {offset}, "
                f"only {end - offset} available"
            )
        count = _u64(data, offset)[0]
        offset += 8
        if offset + count > end:
            raise TruncatedFrameError(
                f"truncated encoding: needed {count} byte(s) at offset {offset}, "
                f"only {end - offset} available"
            )
        payload = data[offset:offset + count]
        offset += count
        if tag == 0x03:
            return payload, offset
        if tag == 0x04:
            return payload.decode("utf-8"), offset
        name = payload.decode("utf-8")
        try:
            return enum_lookup[name], offset
        except KeyError:
            raise EncodingError(
                f"cannot decode enum member {name!r}: its class was not "
                f"passed in ``enums``"
            ) from None
    if tag == 0x02:
        # Checked in the reference decoder's order (sign presence, sign
        # validity, length presence) so corrupted input raises the same
        # error *type* on both paths.
        if offset + 1 > end:
            raise TruncatedFrameError(
                f"truncated encoding: needed 1 byte(s) at offset {offset}, "
                f"only {end - offset} available"
            )
        sign = data[offset]
        if sign > 1:
            raise EncodingError(
                f"malformed int sign byte {data[offset:offset + 1]!r}"
            )
        offset += 1
        if offset + 8 > end:
            raise TruncatedFrameError(
                f"truncated encoding: needed 8 byte(s) at offset {offset}, "
                f"only {end - offset} available"
            )
        count = _u64(data, offset)[0]
        offset += 8
        if offset + count > end:
            raise TruncatedFrameError(
                f"truncated encoding: needed {count} byte(s) at offset {offset}, "
                f"only {end - offset} available"
            )
        magnitude = _from_bytes(data[offset:offset + count], "big")
        return (magnitude if sign == 1 else -magnitude), offset + count
    if tag == 0x00:
        return None, offset
    if tag == 0x01:
        if offset + 1 > end:
            raise TruncatedFrameError(
                f"truncated encoding: needed 1 byte(s) at offset {offset}, "
                f"only {end - offset} available"
            )
        raw = data[offset]
        if raw > 1:
            raise EncodingError(f"malformed bool payload {data[offset:offset + 1]!r}")
        return raw == 1, offset + 1
    raise EncodingError(f"unknown encoding tag 0x{tag:02x} at offset {offset - 1}")


def decode(
    data: bytes, *, enums: Iterable[type] = (), max_bytes: int | None = None
) -> tuple:
    """Inverse of :func:`encode`: ``decode(encode(a, b)) == (a, b)``.

    ``enums`` lists the enum classes that may appear in the payload (their
    members are keyed by ``ClassName.MEMBER``, exactly as encoded).  Lists
    always decode as tuples — the encoder does not distinguish them.
    Raises :class:`EncodingError` on trailing bytes, unknown tags, or enum
    members outside the registry; the :class:`DecodeError` subclasses
    :class:`TruncatedFrameError` (input ended mid-value) and
    :class:`OversizedFrameError` (input longer than ``max_bytes``) refine
    the failures an untrusted socket peer can provoke.  ``max_bytes`` is
    the hard input-size ceiling callers decoding network bytes must set —
    it is checked before any decoding work happens.
    """
    lookup: dict[str, enum.Enum] = {
        f"{cls.__name__}.{member.name}": member for cls in enums for member in cls
    }
    raw = bytes(data)
    if max_bytes is not None and len(raw) > max_bytes:
        raise OversizedFrameError(
            f"refusing to decode {len(raw)} byte(s): exceeds the "
            f"{max_bytes}-byte limit"
        )
    value, offset = _decode_fast(raw, 0, len(raw), lookup)
    if offset != len(raw):
        raise EncodingError(
            f"trailing garbage: {len(raw) - offset} byte(s) after a complete "
            f"encoding"
        )
    if not isinstance(value, tuple):
        raise EncodingError("top-level encoding must be a sequence")
    return value


# --------------------------------------------------------------------- #
# Reference implementations — the executable specification.
#
# These are the original, straight-line encoder/decoder.  They are kept
# (and exported) for three reasons: the property-based equivalence tests
# compare the fast path against them byte for byte, the benchmark suite
# measures the fast path's speedup over them, and they document the wire
# format without any caching noise.  Do not optimize these.
# --------------------------------------------------------------------- #


def _encode_one_reference(value: Any, out: list[bytes]) -> None:
    if value is None:
        out.append(_TAG_NONE)
    elif isinstance(value, bool):  # must precede int: bool is an int subclass
        out.append(_TAG_BOOL)
        out.append(b"\x01" if value else b"\x00")
    elif isinstance(value, enum.Enum):
        out.append(_TAG_ENUM)
        name = f"{type(value).__name__}.{value.name}".encode("utf-8")
        out.append(len(name).to_bytes(_LEN_BYTES, "big"))
        out.append(name)
    elif isinstance(value, int):
        sign = b"\x01" if value >= 0 else b"\x00"
        magnitude = abs(value)
        payload = magnitude.to_bytes((magnitude.bit_length() + 7) // 8 or 1, "big")
        out.append(_TAG_INT)
        out.append(sign)
        out.append(len(payload).to_bytes(_LEN_BYTES, "big"))
        out.append(payload)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out.append(_TAG_BYTES)
        out.append(len(raw).to_bytes(_LEN_BYTES, "big"))
        out.append(raw)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_TAG_STR)
        out.append(len(raw).to_bytes(_LEN_BYTES, "big"))
        out.append(raw)
    elif isinstance(value, (tuple, list)):
        out.append(_TAG_SEQ)
        out.append(len(value).to_bytes(_LEN_BYTES, "big"))
        for item in value:
            _encode_one_reference(item, out)
    else:
        raise EncodingError(
            f"cannot canonically encode value of type {type(value).__name__}: {value!r}"
        )


def encode_reference(*values: Any) -> bytes:
    """Reference encoder: specification for (and byte-identical to)
    :func:`encode`."""
    out: list[bytes] = []
    _encode_one_reference(tuple(values), out)
    return b"".join(out)


def _take(data: bytes, offset: int, count: int) -> tuple[bytes, int]:
    end = offset + count
    if end > len(data):
        raise TruncatedFrameError(
            f"truncated encoding: needed {count} byte(s) at offset {offset}, "
            f"only {len(data) - offset} available"
        )
    return data[offset:end], end


def _decode_one_reference(
    data: bytes, offset: int, enum_lookup: dict[str, enum.Enum]
) -> tuple[Any, int]:
    tag, offset = _take(data, offset, 1)
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_BOOL:
        raw, offset = _take(data, offset, 1)
        if raw not in (b"\x00", b"\x01"):
            raise EncodingError(f"malformed bool payload {raw!r}")
        return raw == b"\x01", offset
    if tag == _TAG_INT:
        sign, offset = _take(data, offset, 1)
        if sign not in (b"\x00", b"\x01"):
            raise EncodingError(f"malformed int sign byte {sign!r}")
        raw, offset = _take(data, offset, _LEN_BYTES)
        payload, offset = _take(data, offset, int.from_bytes(raw, "big"))
        magnitude = int.from_bytes(payload, "big")
        return (magnitude if sign == b"\x01" else -magnitude), offset
    if tag == _TAG_BYTES:
        raw, offset = _take(data, offset, _LEN_BYTES)
        payload, offset = _take(data, offset, int.from_bytes(raw, "big"))
        return payload, offset
    if tag == _TAG_STR:
        raw, offset = _take(data, offset, _LEN_BYTES)
        payload, offset = _take(data, offset, int.from_bytes(raw, "big"))
        return payload.decode("utf-8"), offset
    if tag == _TAG_SEQ:
        raw, offset = _take(data, offset, _LEN_BYTES)
        count = int.from_bytes(raw, "big")
        if count > len(data) - offset:  # mirror of the fast-path guard
            raise TruncatedFrameError(
                f"truncated encoding: sequence declares {count} element(s) at "
                f"offset {offset}, only {len(data) - offset} byte(s) available"
            )
        items = []
        for _ in range(count):
            item, offset = _decode_one_reference(data, offset, enum_lookup)
            items.append(item)
        return tuple(items), offset
    if tag == _TAG_ENUM:
        raw, offset = _take(data, offset, _LEN_BYTES)
        payload, offset = _take(data, offset, int.from_bytes(raw, "big"))
        name = payload.decode("utf-8")
        try:
            return enum_lookup[name], offset
        except KeyError:
            raise EncodingError(
                f"cannot decode enum member {name!r}: its class was not "
                f"passed in ``enums``"
            ) from None
    raise EncodingError(f"unknown encoding tag 0x{tag.hex()} at offset {offset - 1}")


def decode_reference(
    data: bytes, *, enums: Iterable[type] = (), max_bytes: int | None = None
) -> tuple:
    """Reference decoder: specification for (and equivalent to)
    :func:`decode`."""
    lookup: dict[str, enum.Enum] = {
        f"{cls.__name__}.{member.name}": member for cls in enums for member in cls
    }
    raw = bytes(data)
    if max_bytes is not None and len(raw) > max_bytes:
        raise OversizedFrameError(
            f"refusing to decode {len(raw)} byte(s): exceeds the "
            f"{max_bytes}-byte limit"
        )
    value, offset = _decode_one_reference(raw, 0, lookup)
    if offset != len(data):
        raise EncodingError(
            f"trailing garbage: {len(data) - offset} byte(s) after a complete "
            f"encoding"
        )
    if not isinstance(value, tuple):
        raise EncodingError("top-level encoding must be a sequence")
    return value
