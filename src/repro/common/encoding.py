"""Canonical, injective byte encoding for signing and hashing.

The paper signs and hashes structured payloads such as
``SUBMIT || WRITE || i || t`` (Algorithm 1, line 14).  Plain string
concatenation is not injective (``"ab" + "c" == "a" + "bc"``), which would
void the unforgeability argument, so every payload that flows into
:mod:`repro.crypto` goes through this module's tag-length-value encoder.

The encoding is deliberately tiny and self-contained:

========  =======================================
tag 0x00  ``None`` (the paper's ``BOTTOM``)
tag 0x01  ``bool``
tag 0x02  ``int`` (unbounded, sign-magnitude)
tag 0x03  ``bytes``
tag 0x04  ``str`` (UTF-8)
tag 0x05  ``tuple``/``list`` (length-prefixed, recursive)
tag 0x06  enum members (encoded by class and name)
========  =======================================

All lengths are 8-byte big-endian, making the encoding a prefix code and
therefore injective on the supported type universe.

Because the encoding is a prefix code it is also *decodable*:
:func:`decode` is the exact inverse used by the storage engine
(:mod:`repro.store`) to persist server state — the same bytes that are
signed can be replayed from disk.  Sequences decode as tuples (lists and
tuples encode identically); enum members decode through an explicit
registry passed by the caller, keeping this module free of protocol
imports.
"""

from __future__ import annotations

import enum
from typing import Any, Iterable

from repro.common.errors import EncodingError

_TAG_NONE = b"\x00"
_TAG_BOOL = b"\x01"
_TAG_INT = b"\x02"
_TAG_BYTES = b"\x03"
_TAG_STR = b"\x04"
_TAG_SEQ = b"\x05"
_TAG_ENUM = b"\x06"

_LEN_BYTES = 8


def _encode_length(n: int) -> bytes:
    return n.to_bytes(_LEN_BYTES, "big")


def _encode_one(value: Any, out: list[bytes]) -> None:
    if value is None:
        out.append(_TAG_NONE)
    elif isinstance(value, bool):  # must precede int: bool is an int subclass
        out.append(_TAG_BOOL)
        out.append(b"\x01" if value else b"\x00")
    elif isinstance(value, enum.Enum):
        out.append(_TAG_ENUM)
        name = f"{type(value).__name__}.{value.name}".encode("utf-8")
        out.append(_encode_length(len(name)))
        out.append(name)
    elif isinstance(value, int):
        sign = b"\x01" if value >= 0 else b"\x00"
        magnitude = abs(value)
        payload = magnitude.to_bytes((magnitude.bit_length() + 7) // 8 or 1, "big")
        out.append(_TAG_INT)
        out.append(sign)
        out.append(_encode_length(len(payload)))
        out.append(payload)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out.append(_TAG_BYTES)
        out.append(_encode_length(len(raw)))
        out.append(raw)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_TAG_STR)
        out.append(_encode_length(len(raw)))
        out.append(raw)
    elif isinstance(value, (tuple, list)):
        out.append(_TAG_SEQ)
        out.append(_encode_length(len(value)))
        for item in value:
            _encode_one(item, out)
    else:
        raise EncodingError(
            f"cannot canonically encode value of type {type(value).__name__}: {value!r}"
        )


def encode(*values: Any) -> bytes:
    """Encode ``values`` as a single canonical byte string.

    ``encode(a, b)`` is equivalent to ``encode((a, b))`` modulo a constant
    prefix; both are injective.  This is the only entry point the rest of
    the library uses, e.g. ``encode("SUBMIT", OpKind.WRITE, i, t)`` for the
    SUBMIT-signature payload of Algorithm 1 line 14.
    """
    out: list[bytes] = []
    _encode_one(tuple(values), out)
    return b"".join(out)


def encode_sequence(values: Iterable[Any]) -> bytes:
    """Encode an iterable of values (materialised as a tuple)."""
    return encode(tuple(values))


# --------------------------------------------------------------------- #
# Decoding — the inverse, used by repro.store for durable server state
# --------------------------------------------------------------------- #


def _take(data: bytes, offset: int, count: int) -> tuple[bytes, int]:
    end = offset + count
    if end > len(data):
        raise EncodingError(
            f"truncated encoding: needed {count} byte(s) at offset {offset}, "
            f"only {len(data) - offset} available"
        )
    return data[offset:end], end


def _decode_one(
    data: bytes, offset: int, enum_lookup: dict[str, enum.Enum]
) -> tuple[Any, int]:
    tag, offset = _take(data, offset, 1)
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_BOOL:
        raw, offset = _take(data, offset, 1)
        if raw not in (b"\x00", b"\x01"):
            raise EncodingError(f"malformed bool payload {raw!r}")
        return raw == b"\x01", offset
    if tag == _TAG_INT:
        sign, offset = _take(data, offset, 1)
        if sign not in (b"\x00", b"\x01"):
            raise EncodingError(f"malformed int sign byte {sign!r}")
        raw, offset = _take(data, offset, _LEN_BYTES)
        payload, offset = _take(data, offset, int.from_bytes(raw, "big"))
        magnitude = int.from_bytes(payload, "big")
        return (magnitude if sign == b"\x01" else -magnitude), offset
    if tag == _TAG_BYTES:
        raw, offset = _take(data, offset, _LEN_BYTES)
        payload, offset = _take(data, offset, int.from_bytes(raw, "big"))
        return payload, offset
    if tag == _TAG_STR:
        raw, offset = _take(data, offset, _LEN_BYTES)
        payload, offset = _take(data, offset, int.from_bytes(raw, "big"))
        return payload.decode("utf-8"), offset
    if tag == _TAG_SEQ:
        raw, offset = _take(data, offset, _LEN_BYTES)
        count = int.from_bytes(raw, "big")
        items = []
        for _ in range(count):
            item, offset = _decode_one(data, offset, enum_lookup)
            items.append(item)
        return tuple(items), offset
    if tag == _TAG_ENUM:
        raw, offset = _take(data, offset, _LEN_BYTES)
        payload, offset = _take(data, offset, int.from_bytes(raw, "big"))
        name = payload.decode("utf-8")
        try:
            return enum_lookup[name], offset
        except KeyError:
            raise EncodingError(
                f"cannot decode enum member {name!r}: its class was not "
                f"passed in ``enums``"
            ) from None
    raise EncodingError(f"unknown encoding tag 0x{tag.hex()} at offset {offset - 1}")


def decode(data: bytes, *, enums: Iterable[type] = ()) -> tuple:
    """Inverse of :func:`encode`: ``decode(encode(a, b)) == (a, b)``.

    ``enums`` lists the enum classes that may appear in the payload (their
    members are keyed by ``ClassName.MEMBER``, exactly as encoded).  Lists
    always decode as tuples — the encoder does not distinguish them.
    Raises :class:`EncodingError` on truncation, trailing bytes, unknown
    tags, or enum members outside the registry.
    """
    lookup: dict[str, enum.Enum] = {
        f"{cls.__name__}.{member.name}": member for cls in enums for member in cls
    }
    value, offset = _decode_one(bytes(data), 0, lookup)
    if offset != len(data):
        raise EncodingError(
            f"trailing garbage: {len(data) - offset} byte(s) after a complete "
            f"encoding"
        )
    if not isinstance(value, tuple):
        raise EncodingError("top-level encoding must be a sequence")
    return value
