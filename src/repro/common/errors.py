"""Exception hierarchy for the FAUST reproduction.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch library failures with a single ``except`` clause.
Protocol-level *detections* (a client noticing server misbehaviour) are not
exceptions: they are delivered through the ``fail_i`` notification channel,
because the paper models them as output actions, not control-flow faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A component was constructed or wired with invalid parameters."""


class EncodingError(ReproError):
    """A value could not be canonically encoded for signing or hashing."""


class DecodeError(EncodingError):
    """Bytes received from an untrusted source failed to decode.

    The canonical codec doubles as the wire format of the real transport
    (:mod:`repro.net`), where the peer is the *untrusted server* of the
    paper's model: malformed input is an expected hostile act, not a
    programming error.  Subclasses distinguish the two failure shapes a
    socket reader must treat differently — input that ended too early
    (:class:`TruncatedFrameError`, possibly just a short read) and input
    that claims to be larger than the reader is willing to buffer
    (:class:`OversizedFrameError`, a resource-exhaustion attempt)."""


class TruncatedFrameError(DecodeError):
    """The input ended before a complete value/frame was decoded."""


class OversizedFrameError(DecodeError):
    """A frame or value declared a size above the configured maximum."""


class CryptoError(ReproError):
    """A cryptographic operation failed (unknown key, malformed signature)."""


class UnknownSignerError(CryptoError):
    """A signature was requested for or attributed to an unknown client."""


class StorageError(ReproError):
    """The durable storage engine hit corrupt or inconsistent on-disk state.

    A *torn WAL tail* (the expected artifact of crashing mid-append) is not
    an error — recovery stops at it; a corrupt snapshot is, because
    snapshots are written atomically and must never be half-present.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class ChannelError(SimulationError):
    """A message was sent over a link that does not exist or is mis-wired."""


class ProtocolError(ReproError):
    """A protocol state machine was driven outside its contract.

    This signals a *local* usage bug (e.g. invoking a second operation while
    one is pending on the same client), never remote misbehaviour: remote
    misbehaviour is reported via fail notifications per the paper.
    """


class HistoryError(ReproError):
    """A recorded history is malformed (e.g. response without invocation)."""


class CheckerError(ReproError):
    """A consistency checker was given input it cannot analyse."""
