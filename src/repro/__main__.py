"""``python -m repro`` entry point (see repro.cli)."""

from repro.cli import main

raise SystemExit(main())
