"""USTOR: the weak fork-linearizable untrusted storage protocol (Section 5)."""

from repro.ustor.byzantine import (
    CrashingServer,
    Fig3Server,
    ForgingServer,
    ReplayServer,
    RollbackServer,
    SplitBrainServer,
    TamperingServer,
    UnresponsiveServer,
)
from repro.ustor.client import OpOutcome, UstorClient, ViewHistoryRecord
from repro.ustor.digests import EMPTY_DIGEST, digest_of_sequence, extend_digest
from repro.ustor.messages import (
    CommitMessage,
    InvocationTuple,
    MemEntry,
    ReplyMessage,
    SignedVersion,
    SubmitMessage,
    version_wire_size,
)
from repro.ustor.server import ServerState, UstorServer, apply_commit, apply_submit
from repro.ustor.version import Version, max_version
from repro.ustor.viewhistory import (
    build_client_views,
    merge_vh_records,
    reconstruct_view_history,
    view_from_keys,
)

__all__ = [
    "CommitMessage",
    "CrashingServer",
    "EMPTY_DIGEST",
    "Fig3Server",
    "ForgingServer",
    "InvocationTuple",
    "MemEntry",
    "OpOutcome",
    "ReplayServer",
    "ReplyMessage",
    "RollbackServer",
    "ServerState",
    "SignedVersion",
    "SplitBrainServer",
    "SubmitMessage",
    "TamperingServer",
    "UnresponsiveServer",
    "UstorClient",
    "UstorServer",
    "Version",
    "ViewHistoryRecord",
    "apply_commit",
    "apply_submit",
    "build_client_views",
    "digest_of_sequence",
    "extend_digest",
    "max_version",
    "merge_vh_records",
    "reconstruct_view_history",
    "version_wire_size",
    "view_from_keys",
]
