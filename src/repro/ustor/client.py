"""USTOR client — Algorithm 1 of the paper, line by line.

The client executes one operation at a time: it sends a SUBMIT message,
waits for the server's REPLY, runs ``updateVersion`` (and, for reads,
``checkData``), sends an asynchronous COMMIT and returns.  Every check in
the two procedures carries the line number of Algorithm 1 it implements.

If any check fails the client **outputs fail_i and halts** — at this layer
a detection is terminal; FAUST (Section 6) turns it into system-wide
failure notifications.

Two liberties are taken, both documented in DESIGN.md:

* ``x_bar_i`` (the hash of the last written value) is initialised to
  ``H(BOTTOM)`` rather than the literal ``BOTTOM`` so that line 50's check
  ``verify_j(delta_j, DATA || t_j || H(x_j))`` also succeeds for clients
  that read before ever writing; the paper elides this bootstrapping.
* In *piggyback mode* the COMMIT message rides on the next SUBMIT
  (Section 5: "this message can be eliminated by piggybacking its contents
  on the SUBMIT message of the next operation"); experiment E10 measures
  the garbage-collection cost of doing so.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.errors import ProtocolError
from repro.common.types import (
    BOTTOM,
    Bottom,
    ClientId,
    OpKind,
    RegisterId,
    Value,
    client_name,
)
from repro.crypto.hashing import hash_register_value
from repro.crypto.keystore import ClientSigner
from repro.history.recorder import HistoryRecorder
from repro.obs.tracing import make_trace_id
from repro.sim.process import Node
from repro.ustor.digests import extend_digest
from repro.ustor.messages import (
    CommitMessage,
    InvocationTuple,
    ReplyMessage,
    SubmitMessage,
)
from repro.ustor.version import Version


@dataclass(frozen=True)
class OpOutcome:
    """What an extended operation returns (lines 20 and 33).

    ``version`` is the version this operation committed; ``reader_version``
    is the writer's version ``(V_j, M_j)`` for reads (``None`` for writes).
    ``timestamp`` is the operation's timestamp ``t`` — the value FAUST
    reports to the application (Definition 5, Integrity).
    """

    kind: OpKind
    register: RegisterId
    value: Value | Bottom | None
    timestamp: int
    version: Version
    reader_version: Version | None


@dataclass(frozen=True)
class ViewHistoryRecord:
    """Analysis-side record of how this operation extended the view history.

    ``VH(o) = VH(o_c) || omega_1..omega_m || o`` — ``parent`` identifies
    ``o_c`` as ``(c, V^c[c])``, ``concurrent`` lists the ``omega`` operations
    from ``L`` as ``(client, assigned timestamp)`` pairs, ``own`` identifies
    ``o`` itself.  The analysis layer replays these records to rebuild exact
    view histories and feed them to the weak-fork-linearizability validator.
    """

    parent: tuple[ClientId, int] | None
    concurrent: tuple[tuple[ClientId, int], ...]
    own: tuple[ClientId, int]


class _PendingInvocation:
    __slots__ = ("kind", "register", "timestamp", "value", "op_id", "callback")

    def __init__(self, kind, register, timestamp, value, op_id, callback):
        self.kind = kind
        self.register = register
        self.timestamp = timestamp
        self.value = value
        self.op_id = op_id
        self.callback = callback


class UstorClient(Node):
    """State and code of client ``C_i`` (Algorithm 1)."""

    def __init__(
        self,
        client_id: ClientId,
        num_clients: int,
        signer: ClientSigner,
        server_name: str = "S",
        recorder: HistoryRecorder | None = None,
        on_fail: Callable[[str], None] | None = None,
        commit_piggyback: bool = False,
        trace_ids: bool = False,
        replica_servers: tuple | None = None,
        quorum: int | None = None,
        counter: bool = False,
    ) -> None:
        super().__init__(name=client_name(client_id))
        if signer.client != client_id:
            raise ProtocolError("signer is bound to a different client id")
        self._id = client_id
        self._n = num_clients
        self._signer = signer
        self._server = server_name
        # -- replica group (repro.replica; None/1-tuple = the paper's
        #    single server, every broadcast collapsing to one send) ------
        if replica_servers is not None and len(replica_servers) > 1:
            from repro.replica.coordinator import QuorumCoordinator
            from repro.replica.counter import CounterVerifier

            self._server = replica_servers[0]
            self.quorum_coordinator = QuorumCoordinator(
                tuple(replica_servers),
                quorum=quorum,
                verifier=CounterVerifier() if counter else None,
                on_convict=self._on_replica_convicted,
            )
            self._counter_verifier = None
        else:
            if replica_servers:
                self._server = replica_servers[0]
            self.quorum_coordinator = None
            if counter:
                from repro.replica.counter import CounterVerifier

                self._counter_verifier = CounterVerifier()
            else:
                self._counter_verifier = None
        self._pending_binding: bytes | None = None
        self._recorder = recorder
        self._on_fail = on_fail
        self._piggyback = commit_piggyback
        #: Stamp SUBMIT/COMMIT with deterministic causal trace ids.  Off
        #: by default: the wire bytes are then identical to a build that
        #: predates the field (and E4's size sums are unchanged).
        self.trace_ids = trace_ids
        #: Optional :class:`repro.obs.tracing.SpanLog`; when set, the
        #: client emits submit/commit/fail instants tagged with trace ids.
        self.span_log = None
        #: Optional hook fed each quorum-resolved REPLY (the winner the
        #: protocol engine actually consumes).  The TCP wire trace uses
        #: it: with a replica group, raw per-replica arrivals are not the
        #: client's logical input stream — the resolved stream is.
        self.resolved_reply_hook: Callable | None = None

        # -- Algorithm 1 state (lines 5-7) --------------------------------
        self._last_write_hash = hash_register_value(BOTTOM)  # x_bar_i
        self._version = Version.zero(num_clients)  # (V_i, M_i)
        self._zero = self._version  # immutable, reused by every check below

        # -- bookkeeping ---------------------------------------------------
        self._pending: _PendingInvocation | None = None
        self._deferred_commit: CommitMessage | None = None
        self._failed = False
        self._fail_reason: str | None = None
        self._fail_listeners: list[Callable[[str], None]] = []
        self.vh_records: dict[tuple[ClientId, int], ViewHistoryRecord] = {}
        self.completed_operations = 0

    # ---------------------------------------------------------------- #
    # Introspection
    # ---------------------------------------------------------------- #

    @property
    def client_id(self) -> ClientId:
        return self._id

    @property
    def version(self) -> Version:
        """The client's current version ``(V_i, M_i)``."""
        return self._version

    @property
    def failed(self) -> bool:
        """Has ``fail_i`` been output (client halted)?"""
        return self._failed

    @property
    def fail_reason(self) -> str | None:
        return self._fail_reason

    @property
    def busy(self) -> bool:
        return self._pending is not None

    def add_failure_listener(self, listener: Callable[[str], None]) -> None:
        """Invoke ``listener(reason)`` when this client outputs ``fail_i``.

        Unlike the ``on_fail`` constructor hook (reserved for the layer
        above, e.g. FAUST), any number of listeners may register."""
        self._fail_listeners.append(listener)

    # ---------------------------------------------------------------- #
    # Operations (lines 8-33)
    # ---------------------------------------------------------------- #

    def write(
        self, value: Value, callback: Callable[[OpOutcome], None] | None = None
    ) -> None:
        """``write_i(x)`` — write ``x`` to this client's own register X_i."""
        if not isinstance(value, bytes):
            raise ProtocolError("register values are bytes")
        self._invoke(OpKind.WRITE, self._id, value, callback)

    def read(
        self,
        register: RegisterId,
        callback: Callable[[OpOutcome], None] | None = None,
    ) -> None:
        """``read_i(j)`` — read register ``X_j`` (any register)."""
        if not 0 <= register < self._n:
            raise ProtocolError(f"register {register} out of range")
        self._invoke(OpKind.READ, register, None, callback)

    def _invoke(self, kind, register, value, callback) -> None:
        if self._failed:
            raise ProtocolError(f"{self.name} has failed and halted")
        if self._crashed:
            raise ProtocolError(f"{self.name} has crashed")
        if self._pending is not None:
            raise ProtocolError(
                f"{self.name} already has an operation in progress (well-formed "
                f"executions are sequential per client)"
            )

        t = self._version.vector[self._id] + 1  # line 12 / 25
        if kind is OpKind.WRITE:
            self._last_write_hash = hash_register_value(value)  # line 13

        # lines 14 / 26: SUBMIT- and DATA-signatures
        submit_sig = self._signer.sign("SUBMIT", kind, register, t)
        data_sig = self._signer.sign("DATA", t, self._last_write_hash)

        op_id = None
        if self._recorder is not None:
            op_id = self._recorder.begin(
                client=self._id,
                kind=kind,
                register=register,
                invoked_at=self.now,
                value=value,
                timestamp=t,
            )
        self._pending = _PendingInvocation(kind, register, t, value, op_id, callback)

        trace_id = make_trace_id(self._id, t) if self.trace_ids else None
        message = SubmitMessage(
            timestamp=t,
            invocation=InvocationTuple(
                client=self._id, opcode=kind, register=register, submit_sig=submit_sig
            ),
            value=value if kind is OpKind.WRITE else None,
            data_sig=data_sig,
            piggyback=self._take_deferred_commit(),
            trace_id=trace_id,
        )
        if self.span_log is not None:
            self.span_log.instant(
                f"submit:{kind.name.lower()}",
                ts=self.now,
                trace_id=trace_id if trace_id is not None
                else make_trace_id(self._id, t),
                proc="client",
                args={"client": self._id, "register": register},
            )
        self._pending_binding = submit_sig
        if self.quorum_coordinator is not None:
            self.quorum_coordinator.begin_round(
                kind is OpKind.READ, submit_sig
            )
        self._send_server(message)  # line 15 / 27

    def _send_server(self, message) -> None:
        """Send to the server — broadcast to the group when replicated."""
        if self.quorum_coordinator is not None:
            self.send_multi(self.quorum_coordinator.targets(), message)
        else:
            self.send(self._server, message)

    def _on_replica_convicted(self, replica: str, violation: str) -> None:
        trace = getattr(self.network, "trace", None)
        if trace is not None:
            trace.note(
                self.now, self.name, "replica-convicted", (replica, violation)
            )

    def _take_deferred_commit(self) -> CommitMessage | None:
        deferred = self._deferred_commit
        self._deferred_commit = None
        return deferred

    # ---------------------------------------------------------------- #
    # REPLY handling (lines 16-20 / 28-33)
    # ---------------------------------------------------------------- #

    def on_message(self, src: str, message) -> None:
        if self._failed:
            return  # halted (line 35ff: "output fail_i; halt")
        if not isinstance(message, ReplyMessage):
            return
        if self.quorum_coordinator is not None:
            resolved = self.quorum_coordinator.absorb(src, message)
            if resolved is None:
                return  # round unresolved, straggler, or convict noise
            if isinstance(resolved, str):
                self._fail(resolved)
                return
            # The quorum winner (attestation stripped) flows into the
            # unchanged Algorithm 1 checks below.
            message = resolved
            if self.resolved_reply_hook is not None:
                self.resolved_reply_hook(message)
        if self._pending is None:
            # A correct server sends exactly one REPLY per SUBMIT over a
            # FIFO channel; an unsolicited REPLY is ignored defensively.
            return
        if self._counter_verifier is not None:
            violation = self._counter_verifier.check(
                src, message, self._pending_binding
            )
            if violation is not None:
                self._fail(f"counter violation from {src}: {violation}")
                return
        pending = self._pending

        if not self._update_version(message):  # line 17 / 29
            return
        if pending.kind is OpKind.READ:
            if not self._check_data(message, pending.register):  # line 30
                return

        # lines 18-19 / 31-32: COMMIT- and PROOF-signatures, COMMIT message
        commit_sig = self._signer.sign(
            "COMMIT", self._version.vector, self._version.digests
        )
        proof_sig = self._signer.sign("PROOF", self._version.digests[self._id])
        commit = CommitMessage(
            version=self._version,
            commit_sig=commit_sig,
            proof_sig=proof_sig,
            # Minted locally (not copied from the REPLY's echo): the COMMIT
            # must stay a pure function of client state so replayed frames
            # match even when a Byzantine server tampered with the echo.
            trace_id=(
                make_trace_id(self._id, pending.timestamp)
                if self.trace_ids
                else None
            ),
        )
        if self._piggyback:
            self._deferred_commit = commit
        else:
            # On a replica group the broadcast doubles as the write-back
            # after a read-repair resolution: every replica (re)converges
            # on the committed version.
            self._send_server(commit)

        # Return from the operation.
        self._pending = None
        self.completed_operations += 1
        returned_value: Value | Bottom | None
        reader_version: Version | None
        if pending.kind is OpKind.READ:
            assert message.mem is not None and message.reader_version is not None
            returned_value = message.mem.value
            reader_version = message.reader_version.version
        else:
            returned_value = pending.value
            reader_version = None
        if self._recorder is not None and pending.op_id is not None:
            self._recorder.end(
                pending.op_id,
                responded_at=self.now,
                value=returned_value,
                timestamp=pending.timestamp,
            )
        outcome = OpOutcome(
            kind=pending.kind,
            register=pending.register,
            value=returned_value,
            timestamp=pending.timestamp,
            version=self._version,
            reader_version=reader_version,
        )
        if pending.callback is not None:
            pending.callback(outcome)

    # ---------------------------------------------------------------- #
    # procedure updateVersion (lines 34-47)
    # ---------------------------------------------------------------- #

    def _update_version(self, reply: ReplyMessage) -> bool:
        n = self._n
        i = self._id
        zero = self._zero

        c = reply.commit_index
        if not 0 <= c < n:
            return self._fail(f"REPLY names an unknown commit index {c}")
        vc = reply.last_version.version
        if vc.num_clients != n or len(reply.proofs) != n:
            return self._fail("REPLY carries malformed vectors")

        # line 35: the last committed version must be zero or properly signed.
        if not (
            vc == zero
            or (
                reply.last_version.commit_sig is not None
                and self._signer.verify(
                    c, reply.last_version.commit_sig, "COMMIT", vc.vector, vc.digests
                )
            )
        ):
            return self._fail("COMMIT-signature on (V^c, M^c) invalid (line 35)")

        # line 36: own version must be <= (V^c, M^c), and V^c may not count
        # operations of C_i beyond those C_i itself performed.
        if not (self._version.le(vc) and vc.vector[i] == self._version.vector[i]):
            return self._fail(
                "server presented a version inconsistent with mine (line 36)"
            )

        # line 37: adopt (V^c, M^c).
        new_vector = list(vc.vector)
        new_digests = list(vc.digests)
        # line 38: digest accumulator starts at M^c[c].
        digest = new_digests[c]

        # lines 39-45: fold in the concurrent operations listed in L.
        concurrent: list[tuple[ClientId, int]] = []
        for entry in reply.pending:
            k = entry.client
            if not 0 <= k < n:
                return self._fail(f"invocation tuple names unknown client {k}")
            # line 41: the PROOF-signature must cover C_k's previous operation.
            if not (
                new_digests[k] is None
                or (
                    reply.proofs[k] is not None
                    and self._signer.verify(k, reply.proofs[k], "PROOF", new_digests[k])
                )
            ):
                return self._fail(
                    f"PROOF-signature for {client_name(k)} missing/invalid (line 41)"
                )
            # line 42: account for the operation.
            new_vector[k] += 1
            # line 43: no concurrent operation with myself; SUBMIT-signature
            # must match the expected timestamp.
            if k == i or not self._signer.verify(
                k,
                entry.submit_sig,
                "SUBMIT",
                entry.opcode,
                entry.register,
                new_vector[k],
            ):
                return self._fail(
                    f"SUBMIT-signature for {client_name(k)} invalid (line 43)"
                )
            # lines 44-45: extend the digest chain.
            digest = extend_digest(digest, k)
            new_digests[k] = digest
            concurrent.append((k, new_vector[k]))

        # lines 46-47: append my own operation.
        new_vector[i] += 1
        new_digests[i] = extend_digest(digest, i)
        self._version = Version(tuple(new_vector), tuple(new_digests))

        assert self._pending is not None
        if new_vector[i] != self._pending.timestamp:
            # The server omitted or injected operations of C_i itself; the
            # line 36 check (V^c[i] = V_i[i]) makes this unreachable, kept
            # as a defensive invariant.
            return self._fail("timestamp drift after updateVersion")

        self.vh_records[(i, self._pending.timestamp)] = ViewHistoryRecord(
            parent=None if vc == zero else (c, vc.vector[c]),
            concurrent=tuple(concurrent),
            own=(i, self._pending.timestamp),
        )
        return True

    # ---------------------------------------------------------------- #
    # procedure checkData (lines 48-52)
    # ---------------------------------------------------------------- #

    def _check_data(self, reply: ReplyMessage, j: RegisterId) -> bool:
        n = self._n
        zero = self._zero
        if reply.reader_version is None or reply.mem is None:
            return self._fail("read REPLY lacks the register payload")
        vj = reply.reader_version.version
        if vj.num_clients != n:
            return self._fail("reader version has the wrong population size")
        tj = reply.mem.timestamp
        xj = reply.mem.value

        # line 49: the writer's version must be zero or properly signed.
        if not (
            vj == zero
            or (
                reply.reader_version.commit_sig is not None
                and self._signer.verify(
                    j,
                    reply.reader_version.commit_sig,
                    "COMMIT",
                    vj.vector,
                    vj.digests,
                )
            )
        ):
            return self._fail("COMMIT-signature on (V^j, M^j) invalid (line 49)")

        # line 50: the returned value must carry the writer's DATA-signature.
        if not (
            tj == 0
            or (
                reply.mem.data_sig is not None
                and self._signer.verify(
                    j, reply.mem.data_sig, "DATA", tj, hash_register_value(xj)
                )
            )
        ):
            return self._fail("DATA-signature on returned value invalid (line 50)")

        # line 51: writer's version is no newer than the last committed one,
        # and the data is from the writer's most recent operation in my view.
        vc = reply.last_version.version
        if not (vj.le(vc) and tj == self._version.vector[j]):
            return self._fail(
                "returned data is not from the writer's latest operation (line 51)"
            )

        # line 52: the writer's committed version matches the data's
        # timestamp up to the (possibly still in-flight) COMMIT.
        if not (vj.vector[j] == tj or vj.vector[j] == tj - 1):
            return self._fail("writer's version contradicts data timestamp (line 52)")
        return True

    # ---------------------------------------------------------------- #
    # fail_i
    # ---------------------------------------------------------------- #

    def halt_protocol(self) -> None:
        """Stop issuing/handling protocol messages without emitting fail_i.

        Used by the FAUST layer when failure was detected elsewhere (e.g. a
        FAILURE message from another client): the server must no longer be
        used, but the local protocol did not itself catch it misbehaving.
        """
        self._failed = True

    def _fail(self, reason: str) -> bool:
        """Output ``fail_i`` and halt; always returns False for callers."""
        self._failed = True
        self._fail_reason = reason
        trace = self.network.trace
        if trace is not None:
            trace.note(self.now, self.name, "ustor-fail", reason)
        if self.span_log is not None:
            # Tag the detection with the offending operation's trace id so
            # the span log links the SUBMIT to the failure notification.
            pending = self._pending
            self.span_log.instant(
                "fail",
                ts=self.now,
                trace_id=(
                    make_trace_id(self._id, pending.timestamp)
                    if pending is not None
                    else None
                ),
                proc="client",
                args={"client": self._id, "reason": reason},
            )
        if self._on_fail is not None:
            self._on_fail(reason)
        for listener in list(self._fail_listeners):
            listener(reason)
        return False
