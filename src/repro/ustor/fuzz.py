"""Randomized-adversary fuzzing for the detection machinery.

:class:`RandomDeviationServer` behaves honestly except that, with a
configured probability per REPLY, it applies one uniformly chosen
deviation from a small catalogue (value tampering, version forging,
stale-data replay, proof corruption).  Fuzz tests then assert the two
sides of failure detection over many seeds:

* **accuracy** — a client raises ``fail`` only in runs where at least one
  deviation was actually delivered to it (never in deviation-free runs,
  which the probability-0 control reproduces);
* **containment** — whatever the adversary does, recorded histories stay
  causally consistent and no client returns a fabricated value
  (unforgeability holds by construction).

The deviations reuse the honest state machine and never require signing
keys, so the fuzzer explores exactly the paper's adversary class.
"""

from __future__ import annotations

import random

from repro.common.types import BOTTOM, OpKind
from repro.ustor.messages import MemEntry, ReplyMessage, SignedVersion, SubmitMessage
from repro.ustor.server import UstorServer, apply_submit
from repro.ustor.version import Version

#: Names of the deviations the fuzzer can inject.
DEVIATIONS = ("tamper-value", "forge-version", "stale-version", "corrupt-proofs")


class RandomDeviationServer(UstorServer):
    """Honest server with probabilistic single-reply deviations."""

    def __init__(
        self,
        num_clients: int,
        deviation_probability: float,
        seed: int,
        name: str = "S",
    ) -> None:
        super().__init__(num_clients, name)
        if not 0.0 <= deviation_probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self._probability = deviation_probability
        self._rng = random.Random(seed)
        #: (deviation name, recipient) for every injected deviation.
        self.injected: list[tuple[str, str]] = []
        self._first_sver: SignedVersion | None = None

    def handle_submit(self, src: str, message: SubmitMessage) -> None:
        if message.piggyback is not None:
            self.handle_commit(src, message.piggyback)
        reply = apply_submit(self.state, message)
        self.submits_handled += 1
        if self._first_sver is None and not self.state.sver[0].version.is_zero:
            self._first_sver = self.state.sver[0]
        if self._rng.random() < self._probability:
            deviation = self._rng.choice(DEVIATIONS)
            mutated = self._apply(deviation, reply, message)
            if mutated is not None:
                self.injected.append((deviation, src))
                reply = mutated
        self.send(src, reply)

    # ------------------------------------------------------------------ #
    # Deviation catalogue
    # ------------------------------------------------------------------ #

    def _apply(
        self, deviation: str, reply: ReplyMessage, message: SubmitMessage
    ) -> ReplyMessage | None:
        """Return the mutated reply, or None when inapplicable here."""
        if deviation == "tamper-value":
            if (
                message.invocation.opcode is not OpKind.READ
                or reply.mem is None
                or reply.mem.value is BOTTOM
            ):
                return None
            return self._replace(
                reply,
                mem=MemEntry(
                    timestamp=reply.mem.timestamp,
                    value=b"FUZZ|" + bytes(reply.mem.value),
                    data_sig=reply.mem.data_sig,
                ),
            )
        if deviation == "forge-version":
            honest = reply.last_version.version
            return self._replace(
                reply,
                last_version=SignedVersion(
                    version=Version(
                        tuple(t + 1 for t in honest.vector), honest.digests
                    ),
                    commit_sig=b"\xaa" * 64,
                ),
            )
        if deviation == "stale-version":
            if self._first_sver is None or reply.last_version == self._first_sver:
                return None
            return self._replace(reply, last_version=self._first_sver)
        if deviation == "corrupt-proofs":
            if all(p is None for p in reply.proofs):
                return None
            return self._replace(
                reply,
                proofs=tuple(
                    b"\xbb" * 64 if p is not None else None for p in reply.proofs
                ),
            )
        raise AssertionError(f"unknown deviation {deviation}")

    @staticmethod
    def _replace(reply: ReplyMessage, **changes) -> ReplyMessage:
        fields = {
            "commit_index": reply.commit_index,
            "last_version": reply.last_version,
            "pending": reply.pending,
            "proofs": reply.proofs,
            "reader_version": reply.reader_version,
            "mem": reply.mem,
        }
        fields.update(changes)
        return ReplyMessage(**fields)
