"""Operation-sequence digests (Section 5).

The protocol represents a client's expectation of another client's view
history compactly as a hash chain over the *indices of the executing
clients*:

    D(omega_1 .. omega_m) = BOTTOM                         if m = 0
    D(omega_1 .. omega_m) = H(D(omega_1 .. omega_{m-1}) || i_m)  otherwise

Collision resistance of ``H`` makes the digest a unique representation of
the sequence: no two distinct sequences occurring in an execution share a
digest.  ``BOTTOM`` is represented as ``None``.
"""

from __future__ import annotations

from typing import Iterable

from repro.common.types import ClientId
from repro.crypto.hashing import hash_values

#: The digest of the empty sequence (the paper's BOTTOM).
EMPTY_DIGEST = None


def extend_digest(digest: bytes | None, client: ClientId) -> bytes:
    """``H(d || i)`` — append one operation by ``client`` to the chain."""
    return hash_values("DIGEST", digest, client)


def digest_of_sequence(clients: Iterable[ClientId]) -> bytes | None:
    """``D(omega_1 .. omega_m)`` for a whole sequence of executing clients."""
    digest: bytes | None = EMPTY_DIGEST
    for client in clients:
        digest = extend_digest(digest, client)
    return digest
