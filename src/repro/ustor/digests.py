"""Operation-sequence digests (Section 5).

The protocol represents a client's expectation of another client's view
history compactly as a hash chain over the *indices of the executing
clients*:

    D(omega_1 .. omega_m) = BOTTOM                         if m = 0
    D(omega_1 .. omega_m) = H(D(omega_1 .. omega_{m-1}) || i_m)  otherwise

Collision resistance of ``H`` makes the digest a unique representation of
the sequence: no two distinct sequences occurring in an execution share a
digest.  ``BOTTOM`` is represented as ``None``.

Fast path vs. reference
-----------------------

Digest-chain extension is the protocol's per-operation hashing hot spot:
``updateVersion`` (Algorithm 1, lines 44-47) extends the chain once per
concurrent operation, and every client folding the *same* REPLY pending
list recomputes the *same* extensions.  :func:`extend_digest` therefore
applies two optimizations, both proven byte-identical to the
specification (:func:`extend_digest_reference`) by
``tests/test_perf_equivalence.py``:

* **Incremental hashing** — the canonical encoding of
  ``("DIGEST", d, i)`` starts with a constant prefix (the sequence header
  and the ``"DIGEST"`` label), so a pre-seeded SHA-256 state is copied
  and only the variable suffix is fed in, skipping the full TLV encode +
  one-shot hash of the reference path.
* **Chain-prefix memoization** — a bounded cache keyed by
  ``(digest, client)`` returns previously computed links outright.  In a
  run with ``n`` clients each link is needed up to ``n`` times (once per
  client that observes it), so the protocol-shaped hit rate approaches
  ``(n-1)/n``.

``benchmarks/test_bench_perf.py`` measures the resulting speedup and the
regression pipeline (PERFORMANCE.md) gates on it.
"""

from __future__ import annotations

from typing import Iterable

from repro.common.encoding import encode, encoded_int
from repro.common.types import ClientId
from repro.crypto.hashing import HASH, hash_values

#: The digest of the empty sequence (the paper's BOTTOM).
EMPTY_DIGEST = None

# The canonical encoding of ("DIGEST", d, i) is
#   SEQ || len=3 || STR("DIGEST") || <encoding of d> || <encoding of i>
# and the part before <encoding of d> is constant.  _BASE_STATE is a
# SHA-256 state pre-fed with that constant prefix; extend_digest copies it
# (cheap) instead of re-hashing the prefix every time.
_CHAIN_PREFIX = encode("DIGEST", None, 0)[: -(1 + len(encoded_int(0)))]
_BASE_STATE = HASH(_CHAIN_PREFIX)
#: ``TAG_BYTES || len=32`` — the header of a 32-byte digest payload.
_BYTES32_HEADER = b"\x03" + (32).to_bytes(8, "big")

#: Bounded memo of chain links: (digest, client) -> extended digest.
_CHAIN_MEMO: dict[tuple[bytes | None, ClientId], bytes] = {}
_CHAIN_MEMO_LIMIT = 1 << 16
_stats = {"hits": 0, "misses": 0}


def chain_cache_stats() -> dict[str, int]:
    """Hit/miss counters of the chain-link memo (for profiling)."""
    return dict(_stats)


def reset_chain_cache() -> None:
    """Drop memoized chain links and zero the counters (test isolation)."""
    _CHAIN_MEMO.clear()
    _stats["hits"] = 0
    _stats["misses"] = 0


def extend_digest(digest: bytes | None, client: ClientId) -> bytes:
    """``H(d || i)`` — append one operation by ``client`` to the chain.

    Byte-identical to :func:`extend_digest_reference`; see the module
    docstring for the memoization and incremental-hashing scheme.
    """
    key = (digest, client)
    memo = _CHAIN_MEMO.get(key)
    if memo is not None:
        _stats["hits"] += 1
        return memo
    _stats["misses"] += 1
    state = _BASE_STATE.copy()
    if digest is None:
        state.update(b"\x00")
    elif len(digest) == 32:
        state.update(_BYTES32_HEADER)
        state.update(digest)
    else:
        state.update(b"\x03" + len(digest).to_bytes(8, "big") + bytes(digest))
    state.update(encoded_int(client))
    out = state.digest()
    if len(_CHAIN_MEMO) >= _CHAIN_MEMO_LIMIT:  # pragma: no cover - bound guard
        _CHAIN_MEMO.clear()
    _CHAIN_MEMO[key] = out
    return out


def extend_digest_reference(digest: bytes | None, client: ClientId) -> bytes:
    """Reference chain link: specification for :func:`extend_digest`."""
    return hash_values("DIGEST", digest, client)


def digest_of_sequence(clients: Iterable[ClientId]) -> bytes | None:
    """``D(omega_1 .. omega_m)`` for a whole sequence of executing clients."""
    digest: bytes | None = EMPTY_DIGEST
    for client in clients:
        digest = extend_digest(digest, client)
    return digest
