"""Reconstruction of USTOR view histories for offline analysis.

``VH(o)`` (Section 5) is defined recursively from the REPLY message each
operation received:

    VH(o) = omega_1 .. omega_m || o                 if V^c = 0^n
    VH(o) = VH(o_c) || omega_1 .. omega_m || o      otherwise

Clients record, per operation, the identity ``(c, V^c[c])`` of the parent
operation ``o_c`` and the ``(client, timestamp)`` pairs of the concurrent
operations in ``L`` (:class:`~repro.ustor.client.ViewHistoryRecord`).
This module replays those records into concrete operation sequences and
assembles the per-client views that the paper's correctness argument
exhibits — the inputs to
:func:`repro.consistency.validate_weak_fork_linearizability`.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.common.errors import ProtocolError
from repro.common.types import ClientId
from repro.history.events import Operation
from repro.history.history import History
from repro.history.recorder import HistoryRecorder
from repro.ustor.client import UstorClient, ViewHistoryRecord

#: An operation identity as USTOR sees it: (client, timestamp).
OpKey = tuple[ClientId, int]


def merge_vh_records(
    clients: Iterable[UstorClient],
) -> dict[OpKey, ViewHistoryRecord]:
    """Union of all clients' view-history records, keyed by (client, ts)."""
    merged: dict[OpKey, ViewHistoryRecord] = {}
    for client in clients:
        merged.update(client.vh_records)
    return merged


def reconstruct_view_history(
    records: Mapping[OpKey, ViewHistoryRecord],
    op_key: OpKey,
    _cache: dict[OpKey, tuple[OpKey, ...]] | None = None,
) -> tuple[OpKey, ...]:
    """``VH(o)`` as a sequence of (client, timestamp) identities.

    Iterative: the parent chain is first walked up to the nearest cached
    prefix (or the root), then the sequences are materialised on the way
    back down.  Long histories — one record per operation of the run —
    would blow Python's recursion limit under the naive recursive
    definition; the walk also guarantees each record's sequence is built
    exactly once per shared ``_cache``.
    """
    cache: dict[OpKey, tuple[OpKey, ...]] = {} if _cache is None else _cache
    # Phase 1: climb ancestors until a cached prefix (or the root).
    chain: list[tuple[OpKey, ViewHistoryRecord]] = []
    key: OpKey | None = op_key
    while key is not None and key not in cache:
        try:
            record = records[key]
        except KeyError:
            raise ProtocolError(
                f"no view-history record for operation {key} — only operations "
                f"that completed updateVersion have one"
            ) from None
        chain.append((key, record))
        key = record.parent
    # Phase 2: unwind, building each VH from its (now cached) parent's.
    for key, record in reversed(chain):
        prefix: tuple[OpKey, ...] = ()
        if record.parent is not None:
            prefix = cache[record.parent]
        cache[key] = prefix + record.concurrent + (record.own,)
    return cache[op_key]


def view_from_keys(
    history: History,
    recorder: HistoryRecorder,
    keys: Iterable[OpKey],
) -> list[Operation]:
    """Map VH identities onto recorded operations, building a view.

    Incomplete reads are omitted (Definition 1 lets each view complete
    them with whatever legal value, so dropping them preserves view-hood);
    incomplete writes are included as their ``+inf``-completed versions,
    matching :meth:`History.completed_for_checking`.
    """
    prepared = history.completed_for_checking()
    available = {op.op_id: op for op in prepared}
    view: list[Operation] = []
    for client, timestamp in keys:
        op_id = recorder.op_id_for(client, timestamp)
        if op_id is None:
            raise ProtocolError(
                f"view history mentions operation ({client}, {timestamp}) "
                f"that was never recorded"
            )
        op = available.get(op_id)
        if op is None:
            continue  # an incomplete read, dropped from the prepared history
        view.append(op)
    return view


def build_client_views(
    history: History,
    recorder: HistoryRecorder,
    clients: Iterable[UstorClient],
    view_clients: Iterable[ClientId] | None = None,
) -> dict[ClientId, list[Operation]]:
    """Per-client views from each client's *last completed* operation.

    ``clients`` supplies the view-history records and should include
    *every* client of the run — even crashed ones, since a survivor's view
    history may pass through an operation a crashed client committed.
    ``view_clients`` restricts whose views are built (default: all).
    Clients that completed no operations get no view (they impose no
    constraints: an empty view is trivially valid).  These views are the
    constructive witnesses for weak fork-linearizability of the run.
    """
    client_list = list(clients)
    records = merge_vh_records(client_list)
    wanted = set(view_clients) if view_clients is not None else None
    cache: dict[OpKey, tuple[OpKey, ...]] = {}
    views: dict[ClientId, list[Operation]] = {}
    for client in client_list:
        if wanted is not None and client.client_id not in wanted:
            continue
        own_keys = [key for key in client.vh_records if key[0] == client.client_id]
        if not own_keys:
            continue
        last_key = max(own_keys, key=lambda key: key[1])
        keys = reconstruct_view_history(records, last_key, cache)
        views[client.client_id] = view_from_keys(history, recorder, keys)
    return views
