"""Targeted attacks: one Byzantine server per check of Algorithm 1.

:mod:`repro.ustor.byzantine` covers the headline attack classes; this
module completes the coverage so that *every* verification line of the
client has a dedicated adversary proving it is load-bearing:

==========================  ==========================================
line 35 (COMMIT-sig on V^c)  ``ForgingServer`` (byzantine.py)
line 36 (version monotone)   ``ReplayServer`` (byzantine.py)
line 41 (PROOF-sig)          :class:`WrongProofServer`
line 43 (SUBMIT-sig in L)    :class:`FakePendingServer`
line 43 (self-concurrency)   :class:`SelfEchoServer`
line 49 (COMMIT-sig on V^j)  :class:`BadReaderVersionServer`
line 50 (DATA-sig)           ``TamperingServer`` (byzantine.py)
line 51 (t_j = V_i[j])       :class:`StaleReadServer`
line 52 (V^j[j] vs t_j)      :class:`LaggingReaderVersionServer`
==========================  ==========================================

Each server behaves honestly except for the single deviation named, so a
detection in a test attributes the catch to exactly one check.
"""

from __future__ import annotations

from repro.common.types import ClientId, OpKind, RegisterId, parse_client_name
from repro.ustor.messages import (
    InvocationTuple,
    MemEntry,
    ReplyMessage,
    SignedVersion,
    SubmitMessage,
)
from repro.ustor.server import UstorServer, apply_submit
from repro.ustor.version import Version


class WrongProofServer(UstorServer):
    """Corrupts the PROOF-signature array ``P`` in replies.

    Detected at line 41 by any client that must account for a concurrent
    operation of a client with a non-BOTTOM digest entry — i.e. under
    genuine concurrency; with no concurrency the corruption is never
    consulted, which the tests document as well.
    """

    def handle_submit(self, src: str, message: SubmitMessage) -> None:
        if message.piggyback is not None:
            self.handle_commit(src, message.piggyback)
        reply = apply_submit(self.state, message)
        self.submits_handled += 1
        corrupted = tuple(
            b"\x00" * 64 if p is not None else None for p in reply.proofs
        )
        self.send(
            src,
            ReplyMessage(
                commit_index=reply.commit_index,
                last_version=reply.last_version,
                pending=reply.pending,
                proofs=corrupted,
                reader_version=reply.reader_version,
                mem=reply.mem,
            ),
        )


class FakePendingServer(UstorServer):
    """Injects a fabricated invocation tuple into ``L``.

    The server cannot sign for clients, so the tuple carries a garbage
    SUBMIT-signature — caught at line 43 by the next operation.
    """

    def __init__(self, num_clients: int, ghost_client: ClientId, name: str = "S"):
        super().__init__(num_clients, name)
        self._ghost = ghost_client

    def handle_submit(self, src: str, message: SubmitMessage) -> None:
        if message.piggyback is not None:
            self.handle_commit(src, message.piggyback)
        reply = apply_submit(self.state, message)
        self.submits_handled += 1
        ghost = InvocationTuple(
            client=self._ghost,
            opcode=OpKind.WRITE,
            register=self._ghost,
            submit_sig=b"\xff" * 64,
        )
        self.send(
            src,
            ReplyMessage(
                commit_index=reply.commit_index,
                last_version=reply.last_version,
                pending=reply.pending + (ghost,),
                proofs=reply.proofs,
                reader_version=reply.reader_version,
                mem=reply.mem,
            ),
        )


class SelfEchoServer(UstorServer):
    """Lists the invoking client's *own previous* operation as concurrent.

    Even with the genuine signature available (the server stores it!), the
    ``k = i`` test of line 43 rejects the echo: a sequential client can
    never be concurrent with itself.
    """

    def handle_submit(self, src: str, message: SubmitMessage) -> None:
        if message.piggyback is not None:
            self.handle_commit(src, message.piggyback)
        reply = apply_submit(self.state, message)
        self.submits_handled += 1
        echo = message.invocation  # genuine tuple, genuine signature
        self.send(
            src,
            ReplyMessage(
                commit_index=reply.commit_index,
                last_version=reply.last_version,
                pending=reply.pending + (echo,),
                proofs=reply.proofs,
                reader_version=reply.reader_version,
                mem=reply.mem,
            ),
        )


class BadReaderVersionServer(UstorServer):
    """Mangles ``SVER[j]`` (the writer's signed version) in read replies.

    The version/signature pair no longer verifies: line 49.
    """

    def __init__(self, num_clients: int, target_register: RegisterId, name: str = "S"):
        super().__init__(num_clients, name)
        self._target = target_register

    def handle_submit(self, src: str, message: SubmitMessage) -> None:
        if message.piggyback is not None:
            self.handle_commit(src, message.piggyback)
        reply = apply_submit(self.state, message)
        self.submits_handled += 1
        if (
            message.invocation.opcode is OpKind.READ
            and message.invocation.register == self._target
            and reply.reader_version is not None
            and not reply.reader_version.version.is_zero
        ):
            honest = reply.reader_version.version
            mangled = SignedVersion(
                version=Version(
                    tuple(t + 1 for t in honest.vector), honest.digests
                ),
                commit_sig=reply.reader_version.commit_sig,  # stale signature
            )
            reply = ReplyMessage(
                commit_index=reply.commit_index,
                last_version=reply.last_version,
                pending=reply.pending,
                proofs=reply.proofs,
                reader_version=mangled,
                mem=reply.mem,
            )
        self.send(src, reply)


class StaleReadServer(UstorServer):
    """Serves an *old* value of the target register, with its old (genuine)
    DATA-signature and timestamp, while presenting current versions.

    The DATA-signature verifies (line 50 passes — the value is authentic,
    just stale), but the stale timestamp no longer matches the reader's
    ``V_i[j]``: line 51.
    """

    def __init__(self, num_clients: int, target_register: RegisterId, name: str = "S"):
        super().__init__(num_clients, name)
        self._target = target_register
        self._stale: MemEntry | None = None

    def handle_submit(self, src: str, message: SubmitMessage) -> None:
        if message.piggyback is not None:
            self.handle_commit(src, message.piggyback)
        # Remember the first version of the register ever written.
        if (
            message.invocation.client == self._target
            and message.invocation.opcode is OpKind.WRITE
            and self._stale is None
        ):
            self._stale = MemEntry(
                timestamp=message.timestamp,
                value=message.value,
                data_sig=message.data_sig,
            )
        reply = apply_submit(self.state, message)
        self.submits_handled += 1
        if (
            message.invocation.opcode is OpKind.READ
            and message.invocation.register == self._target
            and self._stale is not None
            and reply.mem is not None
            and reply.mem.timestamp > self._stale.timestamp
        ):
            reply = ReplyMessage(
                commit_index=reply.commit_index,
                last_version=reply.last_version,
                pending=reply.pending,
                proofs=reply.proofs,
                reader_version=reply.reader_version,
                mem=self._stale,
            )
        self.send(src, reply)


class LaggingReaderVersionServer(UstorServer):
    """Presents the writer's *first* committed version alongside current
    data for the target register.

    Both the version (line 49) and the data (lines 50-51) are genuine, but
    the lag shows: ``V^j[j]`` is more than one operation behind ``t_j``,
    violating line 52.
    """

    def __init__(self, num_clients: int, target_register: RegisterId, name: str = "S"):
        super().__init__(num_clients, name)
        self._target = target_register
        self._first_sver: SignedVersion | None = None

    def handle_commit(self, src: str, message) -> None:
        super().handle_commit(src, message)
        client = parse_client_name(src)
        if client == self._target and self._first_sver is None:
            self._first_sver = self.state.sver[self._target]

    def handle_submit(self, src: str, message: SubmitMessage) -> None:
        if message.piggyback is not None:
            self.handle_commit(src, message.piggyback)
        reply = apply_submit(self.state, message)
        self.submits_handled += 1
        if (
            message.invocation.opcode is OpKind.READ
            and message.invocation.register == self._target
            and self._first_sver is not None
            and reply.mem is not None
            and reply.mem.timestamp >= self._first_sver.version.vector[self._target] + 2
        ):
            reply = ReplyMessage(
                commit_index=reply.commit_index,
                last_version=reply.last_version,
                pending=reply.pending,
                proofs=reply.proofs,
                reader_version=self._first_sver,
                mem=reply.mem,
            )
        self.send(src, reply)
