"""Wire messages of the USTOR protocol with an explicit size model.

Three message types travel between a client and the server (Algorithms 1
and 2): SUBMIT (client -> server, opens an operation), REPLY (server ->
client, the only message on the operation's critical path), and COMMIT
(client -> server, asynchronous).  Each message computes its wire size
from the byte widths below; experiment E4 sums these to reproduce the
paper's ``O(n)`` communication-overhead claim.

Byte-width conventions (also used by the baselines for a fair comparison):
8-byte integers, 1-byte opcodes/markers, 64-byte signatures (Ed25519),
32-byte hashes/digests, values at their natural length.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.types import BOTTOM, Bottom, ClientId, OpKind, RegisterId, Value
from repro.crypto.hashing import HASH_BYTES
from repro.crypto.signatures import SIGNATURE_BYTES
from repro.ustor.version import Version

INT_BYTES = 8
MARKER_BYTES = 1


def _sig_size(signature: bytes | None) -> int:
    return SIGNATURE_BYTES if signature is not None else MARKER_BYTES


def _value_size(value: Value | Bottom | None) -> int:
    if value is None or value is BOTTOM:
        return MARKER_BYTES
    return len(value)


def version_wire_size(version: Version) -> int:
    """``V`` is n integers; ``M`` is n digests (1-byte marker when BOTTOM)."""
    digest_bytes = sum(
        HASH_BYTES if d is not None else MARKER_BYTES for d in version.digests
    )
    return INT_BYTES * version.num_clients + digest_bytes


@dataclass(frozen=True)
class InvocationTuple:
    """``(i, oc, j, sigma)`` — Algorithm 1's representation of an operation.

    ``client`` executes an operation of kind ``opcode`` on register
    ``register``; ``submit_sig`` is the SUBMIT-signature over
    ``(SUBMIT, oc, j, t)``.
    """

    client: ClientId
    opcode: OpKind
    register: RegisterId
    submit_sig: bytes

    def wire_size(self) -> int:
        return INT_BYTES + MARKER_BYTES + INT_BYTES + _sig_size(self.submit_sig)


@dataclass(frozen=True)
class SignedVersion:
    """``(V, M, phi)`` as stored in ``SVER[]`` — a version plus its
    COMMIT-signature (``None`` only for the initial zero version)."""

    version: Version
    commit_sig: bytes | None

    @classmethod
    def zero(cls, num_clients: int) -> "SignedVersion":
        return cls(version=Version.zero(num_clients), commit_sig=None)

    def wire_size(self) -> int:
        return version_wire_size(self.version) + _sig_size(self.commit_sig)


@dataclass(frozen=True)
class MemEntry:
    """``(t, x, delta)`` as stored in ``MEM[]`` — last timestamp, register
    value and DATA-signature received from a client."""

    timestamp: int
    value: Value | Bottom
    data_sig: bytes | None

    @classmethod
    def initial(cls) -> "MemEntry":
        return cls(timestamp=0, value=BOTTOM, data_sig=None)

    def wire_size(self) -> int:
        return INT_BYTES + _value_size(self.value) + _sig_size(self.data_sig)


@dataclass(frozen=True)
class CommitMessage:
    """``<COMMIT, V_i, M_i, phi, psi>`` (lines 19 and 32)."""

    version: Version
    commit_sig: bytes  # phi — over (COMMIT, V, M)
    proof_sig: bytes  # psi — over (PROOF, M[i])
    #: Optional causal trace id (not part of the paper's protocol; rides
    #: outside every signature, so correctness never depends on it).
    trace_id: int | None = None

    kind = "COMMIT"

    def wire_size(self) -> int:
        size = (
            MARKER_BYTES
            + version_wire_size(self.version)
            + _sig_size(self.commit_sig)
            + _sig_size(self.proof_sig)
        )
        if self.trace_id is not None:
            size += INT_BYTES
        return size


@dataclass(frozen=True)
class SubmitMessage:
    """``<SUBMIT, t, (i, oc, j, sigma), x, delta>`` (lines 15 and 27).

    In piggyback mode (Section 5's garbage-collection remark) the previous
    operation's COMMIT rides along in ``piggyback``.
    """

    timestamp: int
    invocation: InvocationTuple
    value: Value | None  # written value; None (BOTTOM) for reads
    data_sig: bytes
    piggyback: CommitMessage | None = None
    #: Optional causal trace id; echoed by the server into the REPLY.
    trace_id: int | None = None

    kind = "SUBMIT"

    def wire_size(self) -> int:
        size = (
            MARKER_BYTES
            + INT_BYTES
            + self.invocation.wire_size()
            + _value_size(self.value)
            + _sig_size(self.data_sig)
        )
        if self.piggyback is not None:
            size += self.piggyback.wire_size()
        if self.trace_id is not None:
            size += INT_BYTES
        return size


@dataclass(frozen=True)
class CheckpointMessage:
    """``<CHECKPOINT, q, C, Sigma>`` — an installed checkpoint, forwarded.

    Not part of the paper's protocol: the bounded-state extension (see
    DESIGN.md, "Checkpointing & bounded state").  Once every client has
    co-signed checkpoint number ``seq`` over the stable cut ``cut`` (one
    timestamp per client), the proposer forwards the certificate to the
    server, authorising it to truncate the covered ``pending`` prefix and
    compact its WAL.  One-way: the server never replies to it.

    The honest server holds no keys, so it cannot verify ``signatures``;
    it applies a *defensive* truncation bound instead (see
    :func:`~repro.ustor.server.apply_checkpoint`), which keeps safety
    independent of the certificate's honesty.
    """

    seq: int
    cut: tuple[int, ...]  # one stable timestamp per client
    signatures: tuple[bytes, ...]  # one co-signature per client, in id order

    kind = "CHECKPOINT"

    def wire_size(self) -> int:
        size = MARKER_BYTES + INT_BYTES  # kind marker + seq
        size += INT_BYTES * len(self.cut)
        size += sum(_sig_size(signature) for signature in self.signatures)
        return size


@dataclass(frozen=True)
class ReplyMessage:
    """``<REPLY, c, SVER[c], [SVER[j], MEM[j],] L, P>`` (lines 111/114).

    ``reader_version`` and ``mem`` are present for read operations only.
    """

    commit_index: ClientId  # c — who committed the last scheduled operation
    last_version: SignedVersion  # SVER[c]
    pending: tuple[InvocationTuple, ...]  # L — submitted, not yet committed
    proofs: tuple[bytes | None, ...]  # P — PROOF-signatures
    reader_version: SignedVersion | None = None  # SVER[j]
    mem: MemEntry | None = None  # MEM[j]
    #: Echo of the SUBMIT's trace id (None when the client sent none).
    trace_id: int | None = None
    #: Trusted monotonic-counter attestation
    #: (:class:`repro.replica.counter.CounterAttestation`), present only
    #: on replicas with a counter attached.  Typed loosely: the message
    #: layer carries it opaquely, only :mod:`repro.replica` interprets it.
    attestation: object | None = None

    kind = "REPLY"

    def wire_size(self) -> int:
        size = MARKER_BYTES + INT_BYTES + self.last_version.wire_size()
        size += sum(t.wire_size() for t in self.pending)
        size += sum(_sig_size(p) for p in self.proofs)
        if self.reader_version is not None:
            size += self.reader_version.wire_size()
        if self.mem is not None:
            size += self.mem.wire_size()
        if self.trace_id is not None:
            size += INT_BYTES
        if self.attestation is not None:
            size += self.attestation.wire_size()
        return size
