"""Versions ``(V_i, M_i)`` and the order on them (Definition 7).

A version pairs a timestamp vector ``V`` (entry ``k`` counts the
operations of ``C_k`` in the owner's view history) with a digest vector
``M`` (entry ``k`` is the digest of the view-history prefix ending at
``C_k``'s last operation).  The order:

    (V_i, M_i) <= (V_j, M_j)  iff  V_i <= V_j componentwise, and
                                   M_i[k] = M_j[k] wherever V_i[k] = V_j[k]

captures "my view history is a prefix of yours": equal counts for some
client force equal digests of the prefixes up to that client's last
operation.  The order is transitive on versions committed by the protocol
(proved in the full paper; exercised by property tests here), and two
*incomparable* versions are exactly FAUST's proof of server misbehaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ProtocolError
from repro.common.types import ClientId


@dataclass(frozen=True)
class Version:
    """An immutable ``(V, M)`` pair."""

    vector: tuple[int, ...]
    digests: tuple[bytes | None, ...]

    def __post_init__(self) -> None:
        if len(self.vector) != len(self.digests):
            raise ProtocolError(
                f"version vector ({len(self.vector)}) and digest vector "
                f"({len(self.digests)}) lengths differ"
            )
        if any(t < 0 for t in self.vector):
            raise ProtocolError("timestamp vector entries must be non-negative")

    @classmethod
    def zero(cls, num_clients: int) -> "Version":
        """``(0^n, BOTTOM^n)`` — the initial version."""
        return cls(vector=(0,) * num_clients, digests=(None,) * num_clients)

    @property
    def num_clients(self) -> int:
        return len(self.vector)

    @property
    def is_zero(self) -> bool:
        return all(t == 0 for t in self.vector)

    def timestamp_of(self, client: ClientId) -> int:
        return self.vector[client]

    # ------------------------------------------------------------------ #
    # Definition 7
    # ------------------------------------------------------------------ #

    def le(self, other: "Version") -> bool:
        """``self`` smaller-or-equal ``other`` per Definition 7."""
        if self.num_clients != other.num_clients:
            raise ProtocolError("cannot compare versions of different populations")
        for mine, theirs in zip(self.vector, other.vector):
            if mine > theirs:
                return False
        for k in range(self.num_clients):
            if self.vector[k] == other.vector[k] and self.digests[k] != other.digests[k]:
                return False
        return True

    def lt(self, other: "Version") -> bool:
        return self != other and self.le(other)

    def comparable(self, other: "Version") -> bool:
        """Comparability — what FAUST checks on every received version."""
        return self.le(other) or other.le(self)

    def dominates_vector(self, other: "Version") -> bool:
        """``V > V^c`` as the server tests it (Algorithm 2, line 119):
        componentwise >= and not equal."""
        if self.num_clients != other.num_clients:
            raise ProtocolError("cannot compare versions of different populations")
        ge = all(m >= t for m, t in zip(self.vector, other.vector))
        return ge and self.vector != other.vector

    def total_operations(self) -> int:
        """Number of operations in the view history this version describes."""
        return sum(self.vector)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        digests = ",".join(
            "-" if d is None else d.hex()[:6] for d in self.digests
        )
        return f"V={list(self.vector)} M=[{digests}]"


def max_version(*versions: Version) -> Version:
    """The maximum of pairwise-comparable versions.

    Raises :class:`ProtocolError` on incomparable inputs: callers (FAUST)
    must treat incomparability as failure evidence *before* maximising.
    """
    if not versions:
        raise ProtocolError("max_version needs at least one version")
    best = versions[0]
    for candidate in versions[1:]:
        if best.le(candidate):
            best = candidate
        elif candidate.le(best):
            continue
        else:
            raise ProtocolError("incomparable versions have no maximum")
    return best
