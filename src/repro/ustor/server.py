"""USTOR server — Algorithm 2 of the paper.

The correct server is a pure state machine over :class:`ServerState`; all
handler logic is expressed as functions of an explicit state object so
that Byzantine variants (:mod:`repro.ustor.byzantine`) can fork, replay,
or selectively apply the honest logic to cloned states.

The server never verifies signatures — it only stores and forwards them
(the clients do all checking), which is why the honest implementation
needs no key material at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ProtocolError
from repro.common.types import ClientId, OpKind, parse_client_name
from repro.sim.process import Node
from repro.ustor.messages import (
    CommitMessage,
    InvocationTuple,
    MemEntry,
    ReplyMessage,
    SignedVersion,
    SubmitMessage,
)


@dataclass
class ServerState:
    """Algorithm 2's variables (lines 101-106), cloneable for forking."""

    num_clients: int
    mem: list[MemEntry] = field(default_factory=list)  # MEM
    commit_index: ClientId = 0  # c (paper: initially 1; 0-based here)
    sver: list[SignedVersion] = field(default_factory=list)  # SVER
    pending: list[InvocationTuple] = field(default_factory=list)  # L
    proofs: list[bytes | None] = field(default_factory=list)  # P

    @classmethod
    def initial(cls, num_clients: int) -> "ServerState":
        return cls(
            num_clients=num_clients,
            mem=[MemEntry.initial() for _ in range(num_clients)],
            commit_index=0,
            sver=[SignedVersion.zero(num_clients) for _ in range(num_clients)],
            pending=[],
            proofs=[None] * num_clients,
        )

    def clone(self) -> "ServerState":
        """Deep-enough copy: entries are immutable, lists are fresh."""
        return ServerState(
            num_clients=self.num_clients,
            mem=list(self.mem),
            commit_index=self.commit_index,
            sver=list(self.sver),
            pending=list(self.pending),
            proofs=list(self.proofs),
        )


def apply_submit(state: ServerState, message: SubmitMessage) -> ReplyMessage:
    """Handle a SUBMIT on ``state`` (lines 107-116); returns the REPLY.

    Mutates ``state``: updates ``MEM[i]`` and appends the invocation tuple
    to ``L`` *after* computing the reply, exactly as the pseudocode does.
    """
    invocation = message.invocation
    i = invocation.client
    if not 0 <= i < state.num_clients:
        raise ProtocolError(f"SUBMIT from unknown client index {i}")

    if invocation.opcode is OpKind.READ:
        # line 109-110: keep the stored value, refresh timestamp + DATA-sig.
        old = state.mem[i]
        state.mem[i] = MemEntry(
            timestamp=message.timestamp, value=old.value, data_sig=message.data_sig
        )
        j = invocation.register
        reply = ReplyMessage(
            commit_index=state.commit_index,
            last_version=state.sver[state.commit_index],
            pending=tuple(state.pending),
            proofs=tuple(state.proofs),
            reader_version=state.sver[j],
            mem=state.mem[j],
        )
    else:
        # line 113: store the new value.
        state.mem[i] = MemEntry(
            timestamp=message.timestamp, value=message.value, data_sig=message.data_sig
        )
        reply = ReplyMessage(
            commit_index=state.commit_index,
            last_version=state.sver[state.commit_index],
            pending=tuple(state.pending),
            proofs=tuple(state.proofs),
        )

    # line 116: append after building the reply — the submitting operation
    # is never listed as concurrent with itself.
    state.pending.append(invocation)
    return reply


def apply_commit(state: ServerState, client: ClientId, message: CommitMessage) -> None:
    """Handle a COMMIT on ``state`` (lines 117-123)."""
    if not 0 <= client < state.num_clients:
        raise ProtocolError(f"COMMIT from unknown client index {client}")
    last = state.sver[state.commit_index].version
    # line 119: V_i > V^c — this operation is now the schedule's last commit.
    if message.version.dominates_vector(last):
        state.commit_index = client
        # line 121: drop the client's tuple and everything scheduled before.
        cut = None
        for index in range(len(state.pending) - 1, -1, -1):
            if state.pending[index].client == client:
                cut = index
                break
        if cut is not None:
            del state.pending[: cut + 1]
    # lines 122-123: store version, COMMIT- and PROOF-signatures.
    state.sver[client] = SignedVersion(
        version=message.version, commit_sig=message.commit_sig
    )
    state.proofs[client] = message.proof_sig


class UstorServer(Node):
    """The correct server process."""

    def __init__(self, num_clients: int, name: str = "S") -> None:
        super().__init__(name=name)
        self._n = num_clients
        self.state = ServerState.initial(num_clients)
        # E10 instrumentation: pending-list pressure over the run.
        self.max_pending_len = 0
        self.submits_handled = 0
        self.commits_handled = 0

    @property
    def num_clients(self) -> int:
        return self._n

    def on_message(self, src: str, message) -> None:
        if isinstance(message, SubmitMessage):
            self.handle_submit(src, message)
        elif isinstance(message, CommitMessage):
            self.handle_commit(src, message)

    # Subclass hook points ------------------------------------------------

    def handle_submit(self, src: str, message: SubmitMessage) -> None:
        if message.piggyback is not None:
            self.handle_commit(src, message.piggyback)
        reply = apply_submit(self.state, message)
        self.submits_handled += 1
        self.max_pending_len = max(self.max_pending_len, len(self.state.pending))
        self.send(src, reply)

    def handle_commit(self, src: str, message: CommitMessage) -> None:
        client = parse_client_name(src)
        if client is None:
            raise ProtocolError(f"COMMIT from non-client node {src!r}")
        apply_commit(self.state, client, message)
        self.commits_handled += 1
