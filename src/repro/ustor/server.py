"""USTOR server — Algorithm 2 of the paper.

The correct server is a pure state machine over :class:`ServerState`; all
handler logic is expressed as functions of an explicit state object so
that Byzantine variants (:mod:`repro.ustor.byzantine`) can fork, replay,
or selectively apply the honest logic to cloned states.

The server never verifies signatures — it only stores and forwards them
(the clients do all checking), which is why the honest implementation
needs no key material at all.

Durability is delegated: every state transition flows through a
:class:`~repro.store.engine.StorageEngine` (write-ahead discipline — the
transition is logged before its REPLY leaves the server), and a restart
recovers whatever the engine can reconstruct.  With the volatile default
engine this is exactly the paper's server; with the log-structured engine
a crash/restart cycle is invisible to clients.  The import is lazy to
keep ``repro.store`` (which replays through :func:`apply_submit` /
:func:`apply_commit`) free of cycles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from dataclasses import dataclass, field, replace

from repro.common.errors import ProtocolError
from repro.common.types import ClientId, OpKind, parse_client_name
from repro.obs.registry import COUNT_BUCKETS, get_registry
from repro.sim.process import Node
from repro.ustor.messages import (
    CheckpointMessage,
    CommitMessage,
    InvocationTuple,
    MemEntry,
    ReplyMessage,
    SignedVersion,
    SubmitMessage,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.store.engine import StorageEngine


@dataclass
class ServerState:
    """Algorithm 2's variables (lines 101-106), cloneable for forking.

    Every REPLY ships ``L`` and ``P`` as tuples; rebuilding them from the
    lists on each SUBMIT is O(n + |L|) of pure allocation, so the state
    memoizes both tuples and :func:`apply_submit` / :func:`apply_commit`
    (the only mutators of ``pending`` / ``proofs``) invalidate them.  The
    memo fields are excluded from equality so crash-recovery comparisons
    still see only Algorithm 2's variables.
    """

    num_clients: int
    mem: list[MemEntry] = field(default_factory=list)  # MEM
    commit_index: ClientId = 0  # c (paper: initially 1; 0-based here)
    sver: list[SignedVersion] = field(default_factory=list)  # SVER
    pending: list[InvocationTuple] = field(default_factory=list)  # L
    proofs: list[bytes | None] = field(default_factory=list)  # P
    #: SUBMITs this state has absorbed, ever — not an Algorithm 2 variable
    #: but a pure function of the applied history, so snapshots carry it
    #: and WAL replay reconstructs it.  It is the state's position in the
    #: submit stream: a rolled-back state under-reports it *permanently*
    #: (client COMMITs heal ``sver``/``pending`` but never this), which is
    #: what the monotonic-counter attestation (:mod:`repro.replica`) pins
    #: it against.
    submits_applied: int = 0
    #: Per-entry submit timestamps, parallel to ``pending`` — bookkeeping
    #: for authenticated checkpoints (:func:`apply_checkpoint` only ever
    #: truncates entries whose timestamp the certified cut covers), not an
    #: Algorithm 2 variable, hence excluded from state equality.  ``None``
    #: entries (legacy snapshots) are never truncated.
    pending_ts: list[int | None] = field(
        default_factory=list, repr=False, compare=False
    )
    _pending_tuple: tuple | None = field(default=None, repr=False, compare=False)
    _proofs_tuple: tuple | None = field(default=None, repr=False, compare=False)

    def pending_as_tuple(self) -> tuple:
        """``L`` as an immutable tuple, memoized between mutations."""
        cached = self._pending_tuple
        if cached is None:
            cached = self._pending_tuple = tuple(self.pending)
        return cached

    def proofs_as_tuple(self) -> tuple:
        """``P`` as an immutable tuple, memoized between mutations."""
        cached = self._proofs_tuple
        if cached is None:
            cached = self._proofs_tuple = tuple(self.proofs)
        return cached

    @classmethod
    def initial(cls, num_clients: int) -> "ServerState":
        return cls(
            num_clients=num_clients,
            mem=[MemEntry.initial() for _ in range(num_clients)],
            commit_index=0,
            sver=[SignedVersion.zero(num_clients) for _ in range(num_clients)],
            pending=[],
            proofs=[None] * num_clients,
        )

    def clone(self) -> "ServerState":
        """Deep-enough copy: entries are immutable, lists are fresh."""
        return ServerState(
            num_clients=self.num_clients,
            mem=list(self.mem),
            commit_index=self.commit_index,
            sver=list(self.sver),
            pending=list(self.pending),
            proofs=list(self.proofs),
            submits_applied=self.submits_applied,
            pending_ts=list(self.pending_ts),
        )


def apply_submit(state: ServerState, message: SubmitMessage) -> ReplyMessage:
    """Handle a SUBMIT on ``state`` (lines 107-116); returns the REPLY.

    Mutates ``state``: updates ``MEM[i]`` and appends the invocation tuple
    to ``L`` *after* computing the reply, exactly as the pseudocode does.
    """
    invocation = message.invocation
    i = invocation.client
    if not 0 <= i < state.num_clients:
        raise ProtocolError(f"SUBMIT from unknown client index {i}")

    if invocation.opcode is OpKind.READ:
        # line 109-110: keep the stored value, refresh timestamp + DATA-sig.
        old = state.mem[i]
        state.mem[i] = MemEntry(
            timestamp=message.timestamp, value=old.value, data_sig=message.data_sig
        )
        j = invocation.register
        reply = ReplyMessage(
            commit_index=state.commit_index,
            last_version=state.sver[state.commit_index],
            pending=state.pending_as_tuple(),
            proofs=state.proofs_as_tuple(),
            reader_version=state.sver[j],
            mem=state.mem[j],
            trace_id=message.trace_id,
        )
    else:
        # line 113: store the new value.
        state.mem[i] = MemEntry(
            timestamp=message.timestamp, value=message.value, data_sig=message.data_sig
        )
        reply = ReplyMessage(
            commit_index=state.commit_index,
            last_version=state.sver[state.commit_index],
            pending=state.pending_as_tuple(),
            proofs=state.proofs_as_tuple(),
            trace_id=message.trace_id,
        )

    # line 116: append after building the reply — the submitting operation
    # is never listed as concurrent with itself.
    state.pending.append(invocation)
    state.pending_ts.append(message.timestamp)
    state._pending_tuple = None
    state.submits_applied += 1
    return reply


def apply_commit(state: ServerState, client: ClientId, message: CommitMessage) -> None:
    """Handle a COMMIT on ``state`` (lines 117-123)."""
    if not 0 <= client < state.num_clients:
        raise ProtocolError(f"COMMIT from unknown client index {client}")
    last = state.sver[state.commit_index].version
    # line 119: V_i > V^c — this operation is now the schedule's last commit.
    if message.version.dominates_vector(last):
        state.commit_index = client
        # line 121: drop the client's tuple and everything scheduled before.
        cut = None
        for index in range(len(state.pending) - 1, -1, -1):
            if state.pending[index].client == client:
                cut = index
                break
        if cut is not None:
            del state.pending[: cut + 1]
            del state.pending_ts[: cut + 1]
            state._pending_tuple = None
    # lines 122-123: store version, COMMIT- and PROOF-signatures.
    state.sver[client] = SignedVersion(
        version=message.version, commit_sig=message.commit_sig
    )
    state.proofs[client] = message.proof_sig
    state._proofs_tuple = None


def apply_checkpoint(state: ServerState, cut: tuple[int, ...]) -> int:
    """Truncate the ``pending`` prefix a checkpoint ``cut`` covers.

    ``cut`` holds one stable timestamp per client (the co-signed stable
    cut).  The server cannot verify the certificate (it holds no keys),
    so the truncation is *defensive*: an entry is dropped only while BOTH

    * its submit timestamp is covered by the cut for its client, AND
    * it is covered by the current committed version ``V^c`` — i.e. some
      client already folded it into a committed vector, so by Algorithm
      1's unconditional pending fold (client line 39 ff.) every honest
      client that adopts ``V^c`` or later has counted it already.

    The second bound makes safety independent of the cut's honesty: a
    forged, too-large cut can never remove an entry an honest client
    still needs to fold, so no honest client ever sees a truncated REPLY
    whose SUBMIT-signatures fail to verify.  Returns the number of
    entries truncated.
    """
    if len(cut) != state.num_clients:
        raise ProtocolError(
            f"checkpoint cut has {len(cut)} entries for {state.num_clients} clients"
        )
    committed = state.sver[state.commit_index].version.vector
    drop = 0
    for invocation, timestamp in zip(state.pending, state.pending_ts):
        if timestamp is None:  # legacy snapshot entry: age unknown, keep
            break
        if timestamp > cut[invocation.client]:
            break
        if timestamp > committed[invocation.client]:
            break
        drop += 1
    if drop:
        del state.pending[:drop]
        del state.pending_ts[:drop]
        state._pending_tuple = None
    return drop


class UstorServer(Node):
    """The correct server process.

    ``engine`` selects the durability model (default: the paper's volatile
    server).  The reliable channels of the model outlive a server restart,
    so deliveries during downtime are held and replayed on recovery.

    ``group_commit`` turns on batched wakeups: deliveries are parked in an
    inbox and a single drain event (scheduled at the same virtual time,
    firing after every same-instant delivery) processes them all —
    handlers run in arrival order, their WAL records are appended as ONE
    batched engine write with a single commit point, and every REPLY is
    held until that write returns, so the write-ahead discipline covers
    the whole batch.  Virtual-time behaviour is unchanged (the drain fires
    at the delivery instant); what shrinks is the per-message machinery:
    one wakeup, one durable append, one checkpoint decision per burst.
    """

    holds_mail_while_down = True

    def __init__(
        self,
        num_clients: int,
        name: str = "S",
        engine: "StorageEngine | None" = None,
        group_commit: bool = False,
    ) -> None:
        super().__init__(name=name)
        self._n = num_clients
        if engine is None:
            from repro.store.engine import MemoryEngine

            engine = MemoryEngine(num_clients)
        self._engine = engine
        self.state = engine.recover()
        self._group_commit = bool(group_commit)
        self._inbox: list[tuple[str, object]] = []
        self._drain_scheduled = False
        #: While a drain is running these collect the batch's WAL records
        #: and outgoing replies; ``None`` means "not draining" (log and
        #: send immediately, the unbatched path).
        self._batch_records: list[tuple] | None = None
        self._outbox: list[tuple[str, object]] | None = None
        self._batch_gc_advanced = False
        self._batch_force_checkpoint = False
        # E10 instrumentation: pending-list pressure over the run.
        self.max_pending_len = 0
        self.submits_handled = 0
        self.commits_handled = 0
        # Group-commit instrumentation.
        self.group_commits = 0
        self.largest_group_commit = 0
        # Checkpoint/GC instrumentation.
        self.checkpoints_handled = 0
        self.pending_truncated = 0
        self.last_checkpoint_seq: int | None = None
        self.last_checkpoint_cut: tuple[int, ...] | None = None
        registry = get_registry()
        self._obs_submits = registry.counter("ustor.server.submits")
        self._obs_commits = registry.counter("ustor.server.commits")
        self._obs_group_commits = registry.counter("ustor.server.group_commits")
        self._obs_group_size = registry.histogram(
            "ustor.server.group_commit_records", COUNT_BUCKETS
        )
        self._obs_checkpoints = registry.counter("ustor.server.checkpoints")
        # Crash-recovery instrumentation (scenarios compare the two).
        self.restarts = 0
        self.last_pre_crash_state: ServerState | None = None
        self.last_recovery_state: ServerState | None = None
        #: Trusted monotonic counter (:mod:`repro.replica.counter`);
        #: ``None`` = no trust anchor, the paper's plain untrusted server.
        self.counter = None

    @property
    def num_clients(self) -> int:
        return self._n

    @property
    def engine(self) -> "StorageEngine":
        return self._engine

    @property
    def group_commit(self) -> bool:
        """Are wakeups batched into group commits?"""
        return self._group_commit

    def on_message(self, src: str, message) -> None:
        if not isinstance(
            message, (SubmitMessage, CommitMessage, CheckpointMessage)
        ):
            return
        if self._group_commit:
            self._inbox.append((src, message))
            if not self._drain_scheduled:
                self._drain_scheduled = True
                self.scheduler.schedule(0.0, self._drain_inbox)
        elif isinstance(message, SubmitMessage):
            self.handle_submit(src, message)
        elif isinstance(message, CommitMessage):
            self.handle_commit(src, message)
        else:
            self.handle_checkpoint(src, message)

    def _drain_inbox(self) -> None:
        """Process every parked delivery under one group commit."""
        self._drain_scheduled = False
        if self._crashed or not self._inbox:
            return
        inbox, self._inbox = self._inbox, []
        self._batch_records = []
        self._outbox = []
        self._batch_gc_advanced = False
        self._batch_force_checkpoint = False
        position = 0
        try:
            for src, message in inbox:
                if isinstance(message, SubmitMessage):
                    self.handle_submit(src, message)
                elif isinstance(message, CommitMessage):
                    self.handle_commit(src, message)
                else:
                    self.handle_checkpoint(src, message)
                position += 1
        finally:
            # Even if a handler raised mid-drain, the transitions already
            # applied MUST reach the log before anything else happens —
            # otherwise batched recovery would diverge from unbatched,
            # which logs each record as it is applied.  One durable write
            # for the whole batch; write-ahead preserved: no reply below
            # leaves before the append returns.
            records, self._batch_records = self._batch_records, None
            outbox, self._outbox = self._outbox, None
            self._engine.log_records(records)
            if self._batch_force_checkpoint:
                # A checkpoint certificate landed in this batch: compact
                # the WAL now that its "K" record is durable (subsumes
                # the heuristic maybe_checkpoint decision).
                self._engine.checkpoint(self.state)
            else:
                self._engine.maybe_checkpoint(
                    self.state, gc_advanced=self._batch_gc_advanced
                )
            if position == len(inbox):
                self.group_commits += 1
                self.largest_group_commit = max(
                    self.largest_group_commit, len(records)
                )
                self._obs_group_commits.inc()
                self._obs_group_size.observe(len(records))
            else:
                # A poison message aborted the drain.  Unbatched mode
                # consumes the poison delivery (its handler raised) but
                # still delivers the rest as separate events; mirror that:
                # re-queue the unprocessed tail and drain again.
                self._inbox[:0] = inbox[position + 1 :]
                if self._inbox and not self._drain_scheduled:
                    self._drain_scheduled = True
                    self.scheduler.schedule(0.0, self._drain_inbox)
            for dst, reply in outbox:
                self.send(dst, reply)

    def send(self, dst: str, message) -> None:
        """Send, or park in the outbox while a group commit is draining."""
        if self._outbox is not None:
            self._outbox.append((dst, message))
        else:
            super().send(dst, message)

    # Crash-recovery ------------------------------------------------------

    def crash(self) -> None:
        self.last_pre_crash_state = self.state.clone()
        if self.counter is not None:
            self.counter.on_crash()  # volatile counters reset with the process
        if self._inbox:
            # Accepted but not yet drained: the transitions were never
            # applied or logged and no REPLY left, so hand the messages to
            # the held-mail replay exactly as if they arrived mid-crash.
            self._held_mail[:0] = self._inbox
            self._inbox = []
        super().crash()

    def on_restart(self) -> None:
        """Recover state from the engine; runs before held mail replays."""
        self.state = self._engine.recover()
        self.last_recovery_state = self.state.clone()
        self.restarts += 1

    # Durability plumbing (defer-aware: batched while draining) -----------

    def _log_submit(self, message: SubmitMessage) -> None:
        if self._batch_records is not None:
            self._batch_records.append(("S", message))
        else:
            self._engine.log_submit(message)

    def _log_commit(self, client: ClientId, message: CommitMessage) -> None:
        if self._batch_records is not None:
            self._batch_records.append(("C", client, message))
        else:
            self._engine.log_commit(client, message)

    def _log_checkpoint(self, cut: tuple[int, ...]) -> None:
        if self._batch_records is not None:
            self._batch_records.append(("K", cut))
        else:
            self._engine.log_checkpoint(cut)

    def _maybe_checkpoint(self, gc_advanced: bool = False) -> None:
        if self._batch_records is not None:
            # Deferred to the single decision after the batch append.
            self._batch_gc_advanced = self._batch_gc_advanced or gc_advanced
        else:
            self._engine.maybe_checkpoint(self.state, gc_advanced=gc_advanced)

    # Subclass hook points ------------------------------------------------

    def attach_counter(self, counter) -> None:
        """Bind a trusted :class:`~repro.replica.counter.MonotonicCounter`.

        From here on every REPLY carries an attestation minted *after*
        the SUBMIT is applied, so its value counts the SUBMIT it answers.
        The counter object lives outside the recovered state on purpose:
        it models a separate trusted component, so a Byzantine subclass
        that rewinds ``self.state`` cannot rewind the counter with it.
        """
        self.counter = counter

    def handle_submit(self, src: str, message: SubmitMessage) -> None:
        if message.piggyback is not None:
            self.handle_commit(src, message.piggyback)
        reply = apply_submit(self.state, message)
        if self.counter is not None:
            reply = replace(
                reply,
                attestation=self.counter.attest(
                    message.invocation.submit_sig, self.state.submits_applied
                ),
            )
        # Write-ahead: the transition is durable before the REPLY leaves.
        self._log_submit(message)
        self._maybe_checkpoint()
        self.submits_handled += 1
        self._obs_submits.inc()
        self.max_pending_len = max(self.max_pending_len, len(self.state.pending))
        self.send(src, reply)

    def handle_commit(self, src: str, message: CommitMessage) -> None:
        client = parse_client_name(src)
        if client is None:
            raise ProtocolError(f"COMMIT from non-client node {src!r}")
        pending_before = len(self.state.pending)
        apply_commit(self.state, client, message)
        self._log_commit(client, message)
        # The COMMIT/GC signal: a pruned pending list means the state is at
        # its smallest — the cheapest moment to checkpoint.
        self._maybe_checkpoint(
            gc_advanced=len(self.state.pending) < pending_before
        )
        self.commits_handled += 1
        self._obs_commits.inc()

    def handle_checkpoint(self, src: str, message: CheckpointMessage) -> None:
        """Apply an installed checkpoint certificate (one-way, no REPLY).

        Truncates the covered ``pending`` prefix under the defensive
        bound of :func:`apply_checkpoint`, logs a durable "K" record, and
        forces a snapshot so the WAL behind the checkpoint is compacted
        immediately (the whole point of the certificate: the folded
        prefix never needs replaying again).
        """
        truncated = apply_checkpoint(self.state, tuple(message.cut))
        self._log_checkpoint(tuple(message.cut))
        if self._batch_records is not None:
            self._batch_force_checkpoint = True
        else:
            self._engine.checkpoint(self.state)
        self.checkpoints_handled += 1
        self.pending_truncated += truncated
        self.last_checkpoint_seq = message.seq
        self.last_checkpoint_cut = tuple(message.cut)
        self._obs_checkpoints.inc()
