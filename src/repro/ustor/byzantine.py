"""Byzantine server behaviours used in the adversarial experiments.

Each class subclasses :class:`~repro.ustor.server.UstorServer` and reuses
the honest state-machine functions (:func:`apply_submit`,
:func:`apply_commit`) on forked or frozen copies of the state, so every
attack is expressed as a *deviation* from Algorithm 2 rather than a
reimplementation.  None of these servers hold signing keys — whatever they
send, they cannot forge client signatures (see
:mod:`repro.crypto.keystore`), which is exactly the power the paper grants
the adversary.

Summary of attacks and the layer that (provably) catches them:

=====================  =============================================
:class:`TamperingServer`    corrupts read values — caught by the reader's
                            DATA-signature check (Algorithm 1, line 50)
:class:`ForgingServer`      fabricates a newer version — caught by the
                            COMMIT-signature check (line 35)
:class:`ReplayServer`       freezes and replays old state — caught by the
                            version monotonicity check (line 36) or the
                            self-concurrency check (line 43)
:class:`CrashingServer`     stops responding — *not* USTOR-detectable
                            (indistinguishable from slowness); FAUST keeps
                            propagating stability via offline messages
:class:`UnresponsiveServer` ignores selected clients only
:class:`SplitBrainServer`   forks clients into isolated groups — invisible
                            to USTOR (each branch is self-consistent);
                            detected by FAUST version comparison
:class:`Fig3Server`         the paper's Figure 3 attack: hides one write
                            from one reader, then rejoins — produces a
                            weakly-fork-linearizable, non-fork-linearizable,
                            non-linearizable history without triggering any
                            USTOR check
:class:`RollbackServer`     crashes and "recovers" from a deliberately
                            stale snapshot, discarding the WAL suffix — a
                            fork into the past, caught by the version
                            checks (lines 36/43) on the victims' next
                            operations and propagated system-wide by FAUST
=====================  =============================================
"""

from __future__ import annotations

from repro.common.errors import ProtocolError
from repro.common.types import BOTTOM, ClientId, OpKind, client_name, parse_client_name
from repro.ustor.messages import (
    InvocationTuple,
    MemEntry,
    ReplyMessage,
    SignedVersion,
    SubmitMessage,
    CommitMessage,
)
from repro.ustor.server import ServerState, UstorServer, apply_commit, apply_submit
from repro.ustor.version import Version


class TamperingServer(UstorServer):
    """Returns a corrupted value for reads of ``target_register``.

    The stored DATA-signature no longer matches the mangled value, so the
    reader's line-50 check fires immediately: this attack demonstrates
    failure-detection *accuracy* with the fastest possible detection.
    """

    def __init__(self, num_clients: int, target_register: ClientId, name: str = "S"):
        super().__init__(num_clients, name)
        self._target = target_register

    def handle_submit(self, src: str, message: SubmitMessage) -> None:
        if message.piggyback is not None:
            self.handle_commit(src, message.piggyback)
        reply = apply_submit(self.state, message)
        self.submits_handled += 1
        if (
            message.invocation.opcode is OpKind.READ
            and message.invocation.register == self._target
            and reply.mem is not None
            and reply.mem.timestamp > 0
            and reply.mem.value is not BOTTOM  # nothing written to corrupt yet
        ):
            corrupted = MemEntry(
                timestamp=reply.mem.timestamp,
                value=b"CORRUPTED|" + bytes(reply.mem.value),
                data_sig=reply.mem.data_sig,
            )
            reply = ReplyMessage(
                commit_index=reply.commit_index,
                last_version=reply.last_version,
                pending=reply.pending,
                proofs=reply.proofs,
                reader_version=reply.reader_version,
                mem=corrupted,
            )
        self.send(src, reply)


class ForgingServer(UstorServer):
    """Advertises a version it cannot have: inflates ``V^c`` and attaches a
    garbage COMMIT-signature.  Caught by line 35 on the next operation."""

    def handle_submit(self, src: str, message: SubmitMessage) -> None:
        if message.piggyback is not None:
            self.handle_commit(src, message.piggyback)
        reply = apply_submit(self.state, message)
        self.submits_handled += 1
        honest = reply.last_version.version
        inflated_vector = tuple(t + 1 for t in honest.vector)
        forged = SignedVersion(
            version=Version(inflated_vector, honest.digests),
            commit_sig=b"\x00" * 64,  # the server holds no signing keys
        )
        self.send(
            src,
            ReplyMessage(
                commit_index=reply.commit_index,
                last_version=forged,
                pending=reply.pending,
                proofs=reply.proofs,
                reader_version=reply.reader_version,
                mem=reply.mem,
            ),
        )


class ReplayServer(UstorServer):
    """Honest until ``freeze_after_submits``, then replays the frozen state.

    Once frozen, all SUBMITs are processed against a snapshot: any client
    that commits an operation after the freeze and then operates again is
    shown a version that no longer dominates its own — line 36 — or finds
    its own previous operation listed as concurrent — line 43.
    """

    def __init__(self, num_clients: int, freeze_after_submits: int, name: str = "S"):
        super().__init__(num_clients, name)
        self._freeze_after = freeze_after_submits
        self._frozen: ServerState | None = None

    def handle_submit(self, src: str, message: SubmitMessage) -> None:
        if self._frozen is None and self.submits_handled >= self._freeze_after:
            self._frozen = self.state.clone()
        if self._frozen is None:
            super().handle_submit(src, message)
            return
        self.submits_handled += 1
        reply = apply_submit(self._frozen, message)
        self.send(src, reply)

    def handle_commit(self, src: str, message: CommitMessage) -> None:
        if self._frozen is not None:
            return  # pretend the commit was lost
        super().handle_commit(src, message)


class RollbackServer(UstorServer):
    """The crash-recovery rollback attack on a persistent server.

    Runs the honest log-structured engine, checkpoints after
    ``snapshot_after_submits`` SUBMITs, keeps serving honestly (the WAL
    records every later transition), then after ``rollback_after_submits``
    SUBMITs crashes and — after an ``outage``-long downtime — "recovers"
    from the stale snapshot, discarding the WAL suffix.  Requests held
    during the downtime are *served*, from the rolled-back state (see
    :meth:`on_restart`): withholding them would only ever look like
    slowness.  To a client that never operated after the checkpoint the
    restarted server is indistinguishable from an honest recovery; any
    client whose committed version includes a post-checkpoint operation is
    shown a version that no longer dominates its own (Algorithm 1, line
    36), finds its own tuple still pending (line 43), or reads data older
    than its adopted version admits (line 51) on its next operation, and
    FAUST turns that local detection into system-wide failure
    notifications.

    Contrast with :class:`ReplayServer`: a replayer needs to actively fork
    state; a rollback adversary merely *restores yesterday's backup* — the
    realism is the point.
    """

    def __init__(
        self,
        num_clients: int,
        snapshot_after_submits: int = 2,
        rollback_after_submits: int = 6,
        outage: float = 5.0,
        name: str = "S",
        engine=None,
    ):
        if engine is None:
            from repro.store.engine import LogStructuredEngine

            # Manual checkpointing only: the stale point stays deterministic.
            engine = LogStructuredEngine(num_clients, snapshot_interval=10**9)
        super().__init__(num_clients, name=name, engine=engine)
        if not 0 < snapshot_after_submits < rollback_after_submits:
            raise ProtocolError(
                "need 0 < snapshot_after_submits < rollback_after_submits"
            )
        self._snapshot_after = snapshot_after_submits
        self._rollback_after = rollback_after_submits
        self._outage = outage
        self._rolled_back = False
        self.rollback_crash_time: float | None = None
        self.rollback_restart_time: float | None = None

    def handle_submit(self, src: str, message: SubmitMessage) -> None:
        super().handle_submit(src, message)
        if self.submits_handled == self._snapshot_after:
            self.engine.checkpoint(self.state)
        if self.submits_handled >= self._rollback_after and not self._rolled_back:
            self._rolled_back = True
            self.rollback_crash_time = self.now
            self.crash()
            self.scheduler.schedule(self._outage, self.restart)

    def on_restart(self) -> None:
        if not self._rolled_back:
            super().on_restart()
            return
        # The dishonest recovery: latest snapshot, WAL suffix discarded.
        # Requests held during the outage are then served from the stale
        # state — withholding them would merely look like slowness (a DoS,
        # not provable misbehaviour); *answering* them from the past is
        # what hands the clients their line-36/43/51 evidence.
        self.state = self.engine.recover(replay_wal=False)
        self.last_recovery_state = self.state.clone()
        self.restarts += 1
        self.rollback_restart_time = self.now


class CrashingServer(UstorServer):
    """Crash-stops after a number of SUBMITs (a benign but fatal fault).

    Not detectable as Byzantine — an asynchronous network permits arbitrary
    delay — so USTOR operations simply never complete.  The FAUST layer's
    offline VERSION exchange still drives stability among the operations
    that did complete (experiment E8/E9 territory)."""

    def __init__(self, num_clients: int, crash_after_submits: int, name: str = "S"):
        super().__init__(num_clients, name)
        self._crash_after = crash_after_submits

    def handle_submit(self, src: str, message: SubmitMessage) -> None:
        if self.submits_handled >= self._crash_after:
            self.crash()
            return
        super().handle_submit(src, message)

    def handle_commit(self, src: str, message: CommitMessage) -> None:
        if self.crashed:
            return
        super().handle_commit(src, message)


class UnresponsiveServer(UstorServer):
    """Ignores all messages from a set of victim clients (targeted denial).

    The victims' operations hang (allowed: wait-freedom is only promised
    under a correct server); everyone else is served honestly, and the
    victims' *earlier* versions still propagate offline via FAUST."""

    def __init__(self, num_clients: int, victims: set[ClientId], name: str = "S"):
        super().__init__(num_clients, name)
        self._victims = set(victims)

    def on_message(self, src: str, message) -> None:
        client = parse_client_name(src)
        if client is not None and client in self._victims:
            return
        super().on_message(src, message)


class SplitBrainServer(UstorServer):
    """The classic forking attack: from ``fork_time`` on, clients are split
    into groups, each served from an independent copy of the state.

    Within a group the server is indistinguishable from a correct one, so
    USTOR never halts; across groups, versions eventually become
    incomparable (both vectors strictly grow in different entries), which
    is precisely what FAUST's comparability check detects once the offline
    channel delivers a cross-group VERSION or a client probes a silent
    peer."""

    def __init__(
        self,
        num_clients: int,
        groups: list[set[ClientId]],
        fork_time: float,
        name: str = "S",
    ):
        super().__init__(num_clients, name)
        cover = set().union(*groups) if groups else set()
        if cover != set(range(num_clients)):
            raise ProtocolError("groups must partition the client set")
        for a in range(len(groups)):
            for b in range(a + 1, len(groups)):
                if groups[a] & groups[b]:
                    raise ProtocolError("groups must be disjoint")
        self._groups = [set(g) for g in groups]
        self._fork_time = fork_time
        self._branches: list[ServerState] | None = None

    def _branch_of(self, client: ClientId) -> ServerState:
        if self._branches is None:
            self._branches = [self.state.clone() for _ in self._groups]
        for group, branch in zip(self._groups, self._branches):
            if client in group:
                return branch
        raise ProtocolError(f"client {client} not in any group")

    def handle_submit(self, src: str, message: SubmitMessage) -> None:
        client = message.invocation.client
        if self.now < self._fork_time:
            super().handle_submit(src, message)
            return
        if message.piggyback is not None:
            self.handle_commit(src, message.piggyback)
        state = self._branch_of(client)
        reply = apply_submit(state, message)
        self.submits_handled += 1
        self.send(src, reply)

    def handle_commit(self, src: str, message: CommitMessage) -> None:
        client = parse_client_name(src)
        if client is None:
            raise ProtocolError(f"COMMIT from non-client node {src!r}")
        if self.now < self._fork_time and self._branches is None:
            super().handle_commit(src, message)
            return
        apply_commit(self._branch_of(client), client, message)
        self.commits_handled += 1


class Fig3Server(UstorServer):
    """The scripted attack behind Figure 3 of the paper.

    With ``writer = C1`` and ``victim = C2``: C1 executes
    ``write(X1, u)``; C2 then reads X1 twice.  The server

    1. answers C2's *first* read from a state snapshot taken before the
       write was submitted (so the read returns BOTTOM and C2's version
       does not include the write), and
    2. answers C2's *second* read with a hand-crafted REPLY that presents
       C2's own previous version as the last committed one, lists the
       write as a *concurrent* operation (its invocation tuple in ``L``),
       claims C1's COMMIT has not arrived (``SVER[j] = zero``), and serves
       the genuine, correctly-signed value ``u``.

    Every signature the reply carries is authentic, and every check of
    Algorithm 1 passes, so the read returns ``u``: the resulting history
    is exactly Figure 3 — weakly fork-linearizable but not
    fork-linearizable (and not linearizable).  The forged join *is*
    recorded in the digests: C2's ``M[writer]`` chains the hidden read
    before the write, so C1's and C2's versions are incomparable, and
    FAUST detects the attack as soon as the two clients exchange versions.
    """

    def __init__(self, num_clients: int, writer: ClientId, victim: ClientId, name: str = "S"):
        super().__init__(num_clients, name)
        if writer == victim:
            raise ProtocolError("writer and victim must differ")
        self._writer = writer
        self._victim = victim
        self._branch: ServerState | None = None  # pre-write snapshot
        self._write_invocation: InvocationTuple | None = None
        self._write_mem: MemEntry | None = None
        self._victim_reads = 0

    def handle_submit(self, src: str, message: SubmitMessage) -> None:
        if message.piggyback is not None:
            self.handle_commit(src, message.piggyback)
        client = message.invocation.client
        self.submits_handled += 1

        if client == self._writer and message.invocation.opcode is OpKind.WRITE:
            if self._branch is None:
                # Snapshot the state the victim will be served from.
                self._branch = self.state.clone()
                self._write_invocation = message.invocation
            reply = apply_submit(self.state, message)
            self._write_mem = self.state.mem[self._writer]
            self.send(src, reply)
            return

        if client == self._victim and self._branch is not None:
            self._victim_reads += 1
            if self._victim_reads == 1:
                # Serve the first read from the pre-write snapshot.
                reply = apply_submit(self._branch, message)
                self.send(src, reply)
                return
            if self._victim_reads == 2:
                self._send_join_reply(src, message)
                return
            # Afterwards keep serving the victim from its branch.
            reply = apply_submit(self._branch, message)
            self.send(src, reply)
            return

        # Everyone else (including the writer's later operations) is served
        # honestly from the main state.
        reply = apply_submit(self.state, message)
        self.send(src, reply)

    def _send_join_reply(self, src: str, message: SubmitMessage) -> None:
        assert self._branch is not None
        assert self._write_invocation is not None and self._write_mem is not None
        branch = self._branch
        # Bookkeeping so later victim operations stay consistent: record the
        # submit on the branch but discard the honest reply.
        apply_submit(branch, message)
        victim_sver = branch.sver[self._victim]
        proofs = list(branch.proofs)
        proofs[self._writer] = None  # "the writer's COMMIT has not arrived"
        crafted = ReplyMessage(
            commit_index=self._victim,
            last_version=victim_sver,
            pending=(self._write_invocation,),
            proofs=tuple(proofs),
            reader_version=SignedVersion.zero(self.num_clients),
            mem=self._write_mem,
        )
        self.send(src, crafted)

    def handle_commit(self, src: str, message: CommitMessage) -> None:
        client = parse_client_name(src)
        if client is None:
            raise ProtocolError(f"COMMIT from non-client node {src!r}")
        if client == self._victim and self._branch is not None:
            apply_commit(self._branch, client, message)
            self.commits_handled += 1
            return
        super().handle_commit(src, message)

    def describe_attack(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"hide write by {client_name(self._writer)} from "
            f"{client_name(self._victim)}'s first read, rejoin on the second"
        )
