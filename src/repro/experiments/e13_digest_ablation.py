"""E13 — ablation: why versions carry digest vectors (Definition 7).

FAUST's failure detector compares versions with Definition 7's order,
whose second condition matches digests at equal vector entries.  This
experiment removes that condition (vector-only comparison,
:mod:`repro.faust.ablation`) and replays the attack suite:

* the **split-brain** fork produces vector-incomparable versions, so even
  the ablated detector catches it;
* the **Figure 3 hiding** attack produces vector-*ordered* versions whose
  digests diverge — the full detector catches it, the ablated one is
  blind, permanently violating detection completeness.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.experiments.base import ExperimentResult
from repro.faust.ablation import ablate_system
from repro.workloads.scenarios import split_brain_scenario


def _figure3_detection_fresh(ablated: bool) -> bool:
    from repro.common.types import OpKind
    from repro.experiments.base import build_system
    from repro.sim.network import FixedLatency
    from repro.ustor.byzantine import Fig3Server
    from repro.workloads.scenarios import _sync_op

    system = build_system(
        "faust",
        num_clients=2,
        seed=3,
        latency=FixedLatency(0.5),
        offline_latency=FixedLatency(2.0),
        server_factory=lambda n, name: Fig3Server(n, writer=0, victim=1, name=name),
        enable_dummy_reads=False,
        enable_probes=True,
        delta=20.0,
        probe_check_period=5.0,
    )
    if ablated:
        ablate_system(system)
    writer, victim = system.sessions()
    _sync_op(system, writer, OpKind.WRITE, b"u")
    _sync_op(system, victim, OpKind.READ, 0)
    _sync_op(system, victim, OpKind.READ, 0)
    system.run(until=system.now + 600)
    return any(c.faust_failed for c in system.clients)


def _split_brain_detection(ablated: bool) -> bool:
    result = split_brain_scenario(num_clients=4, seed=11, run_for=0.0)
    system = result.system
    if ablated:
        ablate_system(system)
    system.run(until=800.0)
    return all(c.faust_failed for c in system.clients if not c.crashed)


def run(quick: bool = False) -> ExperimentResult:
    rows = []
    outcomes = {}
    for attack, runner in [
        ("split-brain fork", _split_brain_detection),
        ("figure-3 hiding/join", _figure3_detection_fresh),
    ]:
        full = runner(False)
        ablated = runner(True)
        outcomes[attack] = (full, ablated)
        rows.append([attack, full, ablated])
    table = format_table(
        ["attack", "detected (full Definition 7)", "detected (vector-only ablation)"],
        rows,
        title="Failure detection with and without the digest condition",
    )
    findings = {
        "split-brain detected by both": outcomes["split-brain fork"] == (True, True),
        "figure-3 join detected only with digests": outcomes["figure-3 hiding/join"]
        == (True, False),
        "digest condition is necessary for detection completeness": outcomes[
            "figure-3 hiding/join"
        ][1] is False,
    }
    return ExperimentResult(
        experiment_id="E13",
        title="Ablation: the digest vector in Definition 7",
        paper_claim=(
            "Versions pair timestamp vectors with digests; the order checks "
            "digest equality at equal entries (Definition 7).  Without it, "
            "join-style forking attacks would evade FAUST's comparability "
            "check — the ablation quantifies this design choice."
        ),
        table=table,
        findings=findings,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
