"""E17 — end-to-end throughput: batching across clients, batch sizes, backends.

The paper's protocol is one round per operation, so simulated *latency*
was settled by E3; what limits a production deployment of the simulator
is **machinery per operation** — scheduler events per message hop, a
server wakeup per SUBMIT, a WAL append per record, and (for audited
workloads) a full-history consistency re-check per audit.  The
throughput pipeline (``SystemConfig(batching=...)`` + streaming
incremental audits) amortizes all four; this experiment measures what
that buys end to end.

Sweep: clients × batch size × backend (``ustor``, ``faust``,
``cluster``).  Each cell runs the same seeded session-pipelined workload
and reports wall-clock operations/second, scheduler events per
operation, messages coalesced onto transport bursts, and server group
commits.  A second table audits the workload periodically — offline
full-history re-checks for the unbatched pipeline vs streaming
incremental checkers for the batched one — the configuration the
benchmark suite gates at ≥2x.

Wall-clock ratios vary with the host; the *event* and *append* counts
are deterministic, and those are what the findings assert.
"""

from __future__ import annotations

import random
import time

from repro.analysis.tables import format_table
from repro.api import BatchingPolicy, SystemConfig, open_system
from repro.consistency import check_causal_consistency, check_linearizability
from repro.experiments.base import ExperimentResult
from repro.sim.network import FixedLatency
from repro.workloads.generator import unique_value


def _run_cell(
    backend: str,
    num_clients: int,
    batch: int | None,
    ops_per_client: int,
    seed: int,
    audit_every: float | None = None,
    offline_audit_rounds: int | None = None,
) -> dict:
    """One sweep cell: a pipelined session workload, batched or not.

    ``audit_every`` attaches the streaming incremental auditor on a
    virtual-time cadence; ``offline_audit_rounds`` instead re-checks the
    full history offline every that many submission rounds (the
    pre-pipeline way).  The two are mutually exclusive.
    """
    config = SystemConfig(
        num_clients=num_clients,
        seed=seed,
        latency=FixedLatency(1.0),
        batching=None if batch is None else BatchingPolicy(max_batch=batch),
        shards=2 if backend == "cluster" else 1,
        faust=_quiet_faust(),
    )
    system = open_system(config, backend=backend)
    auditor = system.attach_audit(every=audit_every) if audit_every else None
    rng = random.Random(seed)
    started = time.perf_counter()
    sessions = system.sessions()
    offline_audits = 0
    for round_index in range(ops_per_client):
        for client, session in enumerate(sessions):
            if round_index % 2 == 0:
                session.write(unique_value(client, round_index, 24))
            else:
                session.read(rng.randrange(num_clients))
        if offline_audit_rounds and round_index % offline_audit_rounds == (
            offline_audit_rounds - 1
        ):
            # The pre-pipeline way: settle, then re-check everything.
            for session in sessions:
                session.barrier(timeout=50_000)
            for history in _histories(system):
                check_linearizability(history)
                check_causal_consistency(history)
            offline_audits += 1
    for session in sessions:
        session.barrier(timeout=50_000)
    if auditor is not None:
        auditor.final()
    elapsed = time.perf_counter() - started

    total_ops = num_clients * ops_per_client
    raws = system.shards if backend == "cluster" else [system.raw]
    verdicts_ok = all(
        check_linearizability(history).ok for history in _histories(system)
    )
    return {
        "ops": total_ops,
        "seconds": elapsed,
        "ops_per_sec": total_ops / elapsed if elapsed > 0 else float("inf"),
        "events": system.scheduler.events_processed,
        "events_per_op": system.scheduler.events_processed / total_ops,
        "coalesced": sum(raw.network.messages_coalesced for raw in raws),
        "group_commits": sum(
            getattr(raw.server, "group_commits", 0) for raw in raws
        ),
        "audits": offline_audits if offline_audit_rounds else (
            len(auditor.audits) if auditor else 0
        ),
        "consistent": verdicts_ok,
    }


def _histories(system):
    shards = getattr(system, "shards", None)
    if shards is not None:
        return list(system.shard_histories().values())
    return [system.history()]


def _quiet_faust():
    from repro.api import FaustParams

    # Background traffic off: every event in the count is workload-driven,
    # so events/op compares cleanly across backends and batch sizes.
    return FaustParams(enable_dummy_reads=False, enable_probes=False)


def run(quick: bool = False) -> ExperimentResult:
    backends = ("ustor", "cluster") if quick else ("ustor", "faust", "cluster")
    client_counts = (4,) if quick else (4, 8)
    batches = (None, 8) if quick else (None, 4, 16)
    ops_per_client = 24 if quick else 48

    rows = []
    events_saved = {}
    throughput_ratio = {}
    coalesced_per_cell = []
    all_consistent = True
    for backend in backends:
        for clients in client_counts:
            baseline_events = None
            baseline_seconds = None
            for batch in batches:
                cell = _run_cell(
                    backend, clients, batch, ops_per_client, seed=17 + clients
                )
                all_consistent = all_consistent and cell["consistent"]
                if batch is None:
                    baseline_events = cell["events"]
                    baseline_seconds = cell["seconds"]
                else:
                    coalesced_per_cell.append(cell["coalesced"] > 0)
                    key = (backend, clients, batch)
                    events_saved[key] = 1 - cell["events"] / baseline_events
                    throughput_ratio[key] = baseline_seconds / cell["seconds"]
                rows.append(
                    [
                        backend,
                        clients,
                        "-" if batch is None else batch,
                        f"{cell['ops_per_sec']:,.0f}",
                        f"{cell['events_per_op']:.1f}",
                        cell["coalesced"],
                        cell["group_commits"],
                    ]
                )

    # -- the audited pipeline: offline re-checks vs incremental ---------- #
    audit_rows = []
    audited_ratio = {}
    for backend in ("ustor",) if quick else ("ustor", "faust"):
        clients = client_counts[-1]
        audit_ops = ops_per_client * 2
        reference = _run_cell(
            backend, clients, None, audit_ops, seed=29,
            offline_audit_rounds=4,
        )
        pipeline = _run_cell(
            backend, clients, 8, audit_ops, seed=29, audit_every=25.0
        )
        audited_ratio[backend] = reference["seconds"] / pipeline["seconds"]
        for label, cell in (("offline re-check", reference),
                            ("incremental", pipeline)):
            audit_rows.append(
                [
                    backend,
                    label,
                    cell["audits"],
                    f"{cell['ops_per_sec']:,.0f}",
                    f"{cell['events_per_op']:.1f}",
                ]
            )

    table = format_table(
        ["backend", "clients", "batch", "ops/sec (wall)", "events/op",
         "msgs coalesced", "group commits"],
        rows,
        title="End-to-end throughput vs clients x batch size x backend",
    ) + "\n\n" + format_table(
        ["backend", "audit mode", "audits", "ops/sec (wall)", "events/op"],
        audit_rows,
        title="Audited workloads: full-history re-checks vs streaming audits",
    )

    findings = {
        "batched runs fire fewer scheduler events in every cell": all(
            saving > 0 for saving in events_saved.values()
        ),
        "largest event reduction across the sweep": max(events_saved.values()),
        "transport coalescing engaged in every batched cell": (
            bool(coalesced_per_cell) and all(coalesced_per_cell)
        ),
        "every cell's history stayed linearizable (honest servers)": (
            all_consistent
        ),
        "batched/unbatched wall-clock ratio (pipelined, informational)": max(
            throughput_ratio.values()
        ),
        "audited-pipeline speedup (informational)": max(audited_ratio.values()),
    }
    return ExperimentResult(
        experiment_id="E17",
        title="End-to-end throughput: batching, group commit, streaming audits",
        paper_claim=(
            "Beyond the paper: the protocol's per-operation round is cheap, "
            "but a production store lives or dies by how much machinery each "
            "operation drags through the stack.  Batching same-destination "
            "transport bursts, group-committing server wakeups and auditing "
            "incrementally removes the per-operation constants without "
            "changing a single protocol byte — histories, digests and "
            "checker verdicts are identical to the unbatched run."
        ),
        table=table,
        findings=findings,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
