"""E5 — wait-freedom vs. the fork-linearizability impossibility.

The same workload with the same injected client crash runs against USTOR
and against the lock-step fork-linearizable baseline.  USTOR completes
100% of the surviving clients' operations; the lock-step design wedges
the moment a client crashes between REPLY and COMMIT — the concrete face
of "no fork-linearizable storage protocol can be wait-free" (Section 1,
citing [5]).
"""

from __future__ import annotations

import random

from repro.analysis.tables import format_table
from repro.experiments.base import ExperimentResult, build_system
from repro.sim.network import FixedLatency
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts


def _run_with_crash(system, num_clients: int, ops_per_client: int, seed: int):
    scripts = generate_scripts(
        num_clients,
        WorkloadConfig(ops_per_client=ops_per_client, read_fraction=0.4, mean_think_time=1.0),
        random.Random(seed),
    )
    # Deterministic mid-operation crash: C1 submits at t=0 (its script's
    # first think time is zeroed) and crashes at t=1.5, after its SUBMIT
    # is on the wire but before any REPLY (one-way latency is 1.0) — so it
    # can never acknowledge/commit its first operation.
    first = scripts[0][0]
    scripts[0][0] = type(first)(
        kind=first.kind, register=first.register, value=first.value, think_time=0.0
    )
    driver = Driver(system)
    driver.attach_all(scripts)
    system.crash_client_at(0, time=1.5)
    system.run(until=3_000)
    survivors = range(1, num_clients)
    completed = sum(driver.stats.completed[c] for c in survivors)
    planned = sum(driver.stats.planned[c] for c in survivors)
    return completed, planned


def run(quick: bool = False) -> ExperimentResult:
    seeds = (1, 2) if quick else (1, 2, 3, 4, 5)
    num_clients, ops_per_client = 4, 8
    rows = []
    ustor_fracs, lockstep_fracs = [], []
    for seed in seeds:
        ustor = build_system(
            "ustor", num_clients=num_clients, seed=seed, latency=FixedLatency(1.0)
        )
        done_u, planned_u = _run_with_crash(ustor, num_clients, ops_per_client, seed)
        lockstep = build_system(
            "lockstep", num_clients=num_clients, seed=seed, latency=FixedLatency(1.0)
        )
        done_l, planned_l = _run_with_crash(lockstep, num_clients, ops_per_client, seed)
        ustor_fracs.append(done_u / planned_u)
        lockstep_fracs.append(done_l / planned_l)
        rows.append(
            [
                seed,
                f"{done_u}/{planned_u}",
                f"{done_l}/{planned_l}",
                getattr(lockstep.server, "blocked", False),
            ]
        )
    table = format_table(
        ["seed", "USTOR survivor ops", "lock-step survivor ops", "lock-step wedged"],
        rows,
        title="Survivor completion after C1 crashes mid-operation at t=3.5",
    )
    findings = {
        "USTOR survivor completion rate": sum(ustor_fracs) / len(ustor_fracs),
        "lock-step survivor completion rate": sum(lockstep_fracs) / len(lockstep_fracs),
        "USTOR wait-free in every run": all(f == 1.0 for f in ustor_fracs),
        "lock-step blocked in every run": all(f < 1.0 for f in lockstep_fracs),
    }
    return ExperimentResult(
        experiment_id="E5",
        title="Wait-freedom under client crashes",
        paper_claim=(
            "USTOR is wait-free whenever the server is correct — crashes of "
            "other clients never block progress (Definition 5, condition 2); "
            "fork-linearizable protocols cannot be wait-free [5]."
        ),
        table=table,
        findings=findings,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
