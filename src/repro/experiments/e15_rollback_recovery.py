"""E15 — crash-recovery vs. rollback: the persistence axis of fail-awareness.

The paper's server is volatile state; persisting it (the
:mod:`repro.store` engines) opens the one attack the wire protocol cannot
prevent and fail-aware clients must detect: a server that restarts from a
*stale snapshot* forks every client into the past.  This experiment pins
down the three regimes:

* **honest recovery (log engine)** — WAL replay restores the byte-exact
  pre-crash state; the outage only delays operations, every script
  completes, and no client ever raises fail (accuracy: recovery is not
  misbehaviour);
* **honest restart (memory engine)** — the paper's volatile server after
  a crash *is* a rollback to the initial state, and clients detect the
  amnesia exactly like an attack (there is no honest way to forget);
* **rollback adversary** — recovers from a deliberately stale snapshot,
  discarding a WAL suffix of varying depth; detection latency from the
  dishonest restart is measured as the suffix grows.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.experiments.base import ExperimentResult
from repro.workloads.scenarios import (
    rollback_attack_scenario,
    server_outage_scenario,
)


def run(quick: bool = False) -> ExperimentResult:
    rows = []

    # -- honest crash-recovery on the two engines ----------------------- #
    honest = server_outage_scenario(
        num_clients=3,
        seed=21,
        ops_per_client=6 if quick else 10,
        storage="log",
    )
    rows.append(
        [
            "honest outage",
            "log",
            f"{honest.driver.stats.total_completed()}"
            f"/{honest.driver.stats.total_planned()}",
            len(honest.failure_events),
            "exact" if honest.recovery_byte_identical else "DIVERGED",
            "-",
        ]
    )

    amnesia = server_outage_scenario(
        num_clients=3,
        seed=21,
        ops_per_client=6 if quick else 10,
        storage="memory",
        run_for=600.0,
    )
    rows.append(
        [
            "honest outage",
            "memory",
            f"{amnesia.driver.stats.total_completed()}"
            f"/{amnesia.driver.stats.total_planned()}",
            len(amnesia.failure_events),
            "amnesia",
            "-",
        ]
    )

    # -- the rollback adversary at growing staleness -------------------- #
    depths = (3, 9) if quick else (3, 6, 9, 15)
    latencies = {}
    for depth in depths:
        attack = rollback_attack_scenario(
            num_clients=3,
            seed=31,
            ops_per_client=8 if quick else 12,
            snapshot_after_submits=3,
            rollback_after_submits=3 + depth,
        )
        detected = len(attack.detection_times)
        latencies[depth] = attack.detection_latency
        rows.append(
            [
                f"rollback (suffix={depth})",
                "log",
                f"{attack.driver.stats.total_completed()}"
                f"/{attack.driver.stats.total_planned()}",
                detected,
                "stale snapshot",
                round(attack.detection_latency, 1),
            ]
        )

    table = format_table(
        [
            "scenario",
            "storage",
            "ops completed",
            "failure notifications",
            "recovered state",
            "detection latency after restart",
        ],
        rows,
        title="Server crash-recovery: honest WAL replay vs. rollback attack",
    )

    findings = {
        "honest log-engine recovery is byte-identical": honest.recovery_byte_identical,
        "honest log-engine recovery completes every operation": honest.completed_all,
        "honest log-engine recovery raises no failure notification": (
            len(honest.failure_events) == 0
        ),
        "memory-engine restart is detected like a rollback": (
            len(amnesia.failure_events) > 0
        ),
        "every rollback depth is detected by all clients": all(
            row[3] == 3 for row in rows[2:]
        ),
        "worst rollback detection latency": max(latencies.values()),
    }
    return ExperimentResult(
        experiment_id="E15",
        title="Crash-recovery vs. rollback attack (storage engines)",
        paper_claim=(
            "Completeness extended to the persistence axis: an honest server "
            "that recovers its exact state is indistinguishable from a slow "
            "one (no fail_i), while any recovery that loses committed "
            "operations — a stale snapshot, or volatile state — is provable "
            "misbehaviour: the versions it presents no longer dominate the "
            "clients' own, and fail_i reaches every correct client."
        ),
        table=table,
        findings=findings,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
