"""E3 — "a single round of message exchange ... for every operation".

Measures (a) message rounds on the operation critical path and (b) the
client-perceived latency under write contention, for USTOR and for the
lock-step fork-linearizable baseline.  With a one-way link latency of 1
time unit, USTOR completes every operation in one round trip (latency 2)
regardless of contention; the lock-step baseline serialises globally, so
latency grows linearly with the number of contending clients.
"""

from __future__ import annotations

from repro.analysis.stats import critical_path_rounds
from repro.analysis.tables import format_table
from repro.experiments.base import ExperimentResult, build_system
from repro.sim.metrics import summarize
from repro.sim.network import FixedLatency


def _contended_run(system, num_ops_each: int):
    """Every client writes num_ops_each values back-to-back; returns
    per-operation latencies in virtual time."""
    latencies = []

    def issue(client, remaining):
        start = system.now

        def finished(_outcome):
            latencies.append(system.now - start)
            if remaining > 1:
                issue(client, remaining - 1)

        client.write(b"v|%d|%d" % (client.client_id, remaining), finished)

    for client in system.clients:
        issue(client, num_ops_each)
    system.run_until(
        lambda: len(latencies) >= num_ops_each * len(system.clients),
        timeout=1_000_000,
    )
    return latencies


def run(quick: bool = False) -> ExperimentResult:
    populations = (2, 4, 8) if quick else (2, 4, 8, 16)
    ops_each = 3 if quick else 5
    rows = []
    summary: dict = {}
    for n in populations:
        ustor = build_system("ustor", num_clients=n, seed=3, latency=FixedLatency(1.0))
        ustor_lat = summarize(_contended_run(ustor, ops_each))
        ustor_rounds = critical_path_rounds(ustor.trace, n * ops_each)

        lockstep = build_system(
            "lockstep", num_clients=n, seed=3, latency=FixedLatency(1.0)
        )
        ls_lat = summarize(_contended_run(lockstep, ops_each))

        rows.append(
            [n, f"{ustor_rounds:.2f}", ustor_lat.mean, ustor_lat.maximum, ls_lat.mean, ls_lat.maximum]
        )
        summary[n] = (ustor_lat.mean, ls_lat.mean)

    table = format_table(
        [
            "clients",
            "USTOR rounds/op",
            "USTOR mean lat",
            "USTOR max lat",
            "lock-step mean lat",
            "lock-step max lat",
        ],
        rows,
        title="Write contention: every client issues back-to-back writes "
        "(one-way link latency = 1)",
    )

    smallest, largest = populations[0], populations[-1]
    findings = {
        "USTOR critical path is one round per op": all(
            float(row[1]) == 1.0 for row in rows
        ),
        "USTOR latency flat under contention": summary[largest][0]
        < 1.2 * summary[smallest][0],
        "lock-step latency grows with contention": summary[largest][1]
        > 2.0 * summary[smallest][1],
        "USTOR faster at max contention by": summary[largest][1] / summary[largest][0],
    }
    return ExperimentResult(
        experiment_id="E3",
        title="One message round per operation; no blocking under contention",
        paper_claim=(
            "USTOR requires a single round of message exchange between a "
            "client and the server for every operation (Sections 1, 5); "
            "prior fork-linearizable protocols block concurrent operations."
        ),
        table=table,
        findings=findings,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
