"""E12 — Section 4's claim: weak fork-linearizability is *neither stronger
nor weaker* than fork-*-linearizability.

Both separations are exhibited with concrete histories and decided by the
exhaustive checkers; the full classification of each witness across all
six notions is tabulated.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.common.types import BOTTOM, OpKind
from repro.consistency.causal import check_causal_consistency
from repro.consistency.fork import check_fork_linearizability_exhaustive
from repro.consistency.fork_sequential import check_fork_sequential_exhaustive
from repro.consistency.fork_star import check_fork_star_linearizability_exhaustive
from repro.consistency.linearizability import check_linearizability
from repro.consistency.weak_fork import check_weak_fork_linearizability_exhaustive
from repro.experiments.base import ExperimentResult
from repro.history.events import Operation
from repro.history.history import History


def _figure3() -> History:
    return History(
        [
            Operation(1, 0, OpKind.WRITE, 0, b"u", 0, 1),
            Operation(2, 1, OpKind.READ, 0, BOTTOM, 2, 3),
            Operation(3, 1, OpKind.READ, 0, b"u", 4, 5),
        ]
    )


def _causality_violation() -> History:
    """C3 observes b (which causally depends on a) yet reads X1 as BOTTOM."""
    return History(
        [
            Operation(1, 0, OpKind.WRITE, 0, b"a", 0.5, 100.0),
            Operation(2, 1, OpKind.READ, 0, b"a", 2, 3),
            Operation(3, 1, OpKind.WRITE, 1, b"b", 4, 5),
            Operation(4, 2, OpKind.READ, 1, b"b", 6, 7),
            Operation(5, 2, OpKind.READ, 0, BOTTOM, 8, 9),
        ]
    )


_NOTIONS = [
    ("linearizability", check_linearizability),
    ("causal consistency", check_causal_consistency),
    ("fork-linearizability", check_fork_linearizability_exhaustive),
    ("fork-*-linearizability", check_fork_star_linearizability_exhaustive),
    ("weak fork-linearizability", check_weak_fork_linearizability_exhaustive),
    ("fork-sequential consistency", check_fork_sequential_exhaustive),
]


def run(quick: bool = False) -> ExperimentResult:
    fig3 = _figure3()
    causal_violation = _causality_violation()
    rows = []
    verdicts: dict[tuple[str, str], bool] = {}
    for notion, check in _NOTIONS:
        a = check(fig3).ok
        b = check(causal_violation).ok
        verdicts[("fig3", notion)] = a
        verdicts[("causal", notion)] = b
        rows.append([notion, a, b])
    table = format_table(
        ["notion", "Figure 3 history", "causality-violating history"],
        rows,
        title="Classification of the two witness histories",
    )
    findings = {
        "Figure 3: weak-fork holds, fork-* does not": (
            verdicts[("fig3", "weak fork-linearizability")]
            and not verdicts[("fig3", "fork-*-linearizability")]
        ),
        "causality violation: fork-* holds, weak-fork does not": (
            verdicts[("causal", "fork-*-linearizability")]
            and not verdicts[("causal", "weak fork-linearizability")]
        ),
        "therefore the notions are incomparable (Section 4 claim)": (
            verdicts[("fig3", "weak fork-linearizability")]
            and not verdicts[("fig3", "fork-*-linearizability")]
            and verdicts[("causal", "fork-*-linearizability")]
            and not verdicts[("causal", "weak fork-linearizability")]
        ),
        "weak-fork implies causal on both witnesses": all(
            verdicts[(name, "causal consistency")]
            for name in ("fig3",)
        ),
    }
    return ExperimentResult(
        experiment_id="E12",
        title="Weak fork-linearizability vs. fork-*-linearizability",
        paper_claim=(
            "Weak fork-linearizability is neither stronger nor weaker than "
            "fork-*-linearizability (Section 4); fork-* additionally permits "
            "a faulty server to violate causal consistency."
        ),
        table=table,
        findings=findings,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
