"""E4 — "communication overhead of O(n) bits per request".

Sweeps the client population and measures wire bytes per operation on the
USTOR critical path (SUBMIT + REPLY) and in total (including COMMIT).
The fitted growth must be linear in n: timestamp vectors and digest
vectors have n entries each, and the pending-operation list is bounded by
the concurrency level, not by n.
"""

from __future__ import annotations

import random

from repro.analysis.stats import bytes_per_operation, linear_fit
from repro.analysis.tables import format_table
from repro.experiments.base import ExperimentResult, build_system
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts


def run(quick: bool = False) -> ExperimentResult:
    populations = (2, 4, 8, 16) if quick else (2, 4, 8, 16, 32, 64)
    ops_per_client = 4 if quick else 6
    rows = []
    xs, ys = [], []
    for n in populations:
        system = build_system("ustor", num_clients=n, seed=4)
        scripts = generate_scripts(
            n,
            WorkloadConfig(ops_per_client=ops_per_client, read_fraction=0.5, value_size=64),
            random.Random(4),
        )
        driver = Driver(system)
        driver.attach_all(scripts)
        assert driver.run_to_completion(timeout=1_000_000)
        operations = driver.stats.total_completed()
        critical = bytes_per_operation(system.trace, operations, ["SUBMIT", "REPLY"])
        total = bytes_per_operation(
            system.trace, operations, ["SUBMIT", "REPLY", "COMMIT"]
        )
        rows.append([n, round(critical, 1), round(total, 1), round(total / n, 1)])
        xs.append(float(n))
        ys.append(total)

    fit = linear_fit(xs, ys)
    table = format_table(
        ["clients n", "bytes/op (SUBMIT+REPLY)", "bytes/op (total)", "total / n"],
        rows,
        title="Per-operation communication vs. population size "
        f"(linear fit: {fit.slope:.1f}*n + {fit.intercept:.1f}, R^2={fit.r_squared:.4f})",
    )
    findings = {
        "growth is linear (R^2 of linear fit)": fit.r_squared,
        "bytes per client per op (slope)": fit.slope,
        "doubling n roughly doubles the n-dependent part": ys[-1]
        < 2.6 * ys[-2],
    }
    return ExperimentResult(
        experiment_id="E4",
        title="O(n) communication overhead per request",
        paper_claim=(
            "USTOR has a communication overhead of O(n) bits per request, "
            "where n is the number of clients (Sections 1, 5)."
        ),
        table=table,
        findings=findings,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
