"""E8 — failure detection: accuracy and completeness (Definition 5, 5+7).

Accuracy: across correct-server runs with FAUST fully armed, fail is
never raised.  Completeness: under a split-brain fork, every correct
client eventually raises fail; the latency from fork to system-wide
detection is measured as a function of the probe staleness threshold
DELTA — the knob the paper introduces in Section 6.
"""

from __future__ import annotations

import random

from repro.analysis.tables import format_table
from repro.experiments.base import ExperimentResult, build_system
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts
from repro.workloads.scenarios import split_brain_scenario


def _false_positive_rate(seeds, quick: bool) -> tuple[int, int]:
    alarms = 0
    for seed in seeds:
        system = build_system(
            "faust",
            num_clients=3,
            seed=seed,
            dummy_read_period=3.0,
            probe_check_period=4.0,
            delta=12.0,
        )
        scripts = generate_scripts(
            3, WorkloadConfig(ops_per_client=6), random.Random(seed)
        )
        driver = Driver(system)
        driver.attach_all(scripts)
        driver.run_to_completion(timeout=1_000_000)
        system.run(until=system.now + (100 if quick else 300))
        alarms += sum(1 for c in system.clients if c.faust_failed)
    return alarms, len(list(seeds))


def run(quick: bool = False) -> ExperimentResult:
    fork_time = 30.0
    deltas = (10.0, 40.0) if quick else (10.0, 20.0, 40.0, 80.0)
    rows = []
    latencies = {}
    for delta in deltas:
        result = split_brain_scenario(
            num_clients=4,
            seed=11,
            fork_time=fork_time,
            delta=delta,
            run_for=4_000.0,
        )
        times = [
            c.faust_fail_time
            for c in result.system.clients
            if c.faust_fail_time is not None
        ]
        detected = len(times)
        first = min(times) - fork_time if times else float("nan")
        last = max(times) - fork_time if times else float("nan")
        latencies[delta] = last
        rows.append([delta, f"{detected}/4", round(first, 1), round(last, 1)])
    table = format_table(
        ["DELTA", "clients detecting", "first detection after fork", "all detected after fork"],
        rows,
        title="Split-brain fork at t=30: detection latency vs. probe threshold",
    )

    alarms, runs = _false_positive_rate(range(4 if quick else 8), quick)
    findings = {
        "false alarms across correct-server runs": f"{alarms}/{runs * 3} clients",
        "all correct clients detect the fork (every DELTA)": all(
            row[1] == "4/4" for row in rows
        ),
        "detection latency grows with DELTA": latencies[deltas[-1]] > latencies[deltas[0]],
    }
    return ExperimentResult(
        experiment_id="E8",
        title="Failure-detection accuracy and completeness",
        paper_claim=(
            "fail_i occurs only if the server is faulty (accuracy); for every "
            "correct client pair, eventually fail occurs at all correct "
            "clients or the operations become stable (completeness) — driven "
            "by offline PROBE/VERSION exchange with staleness threshold DELTA."
        ),
        table=table,
        findings=findings,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
