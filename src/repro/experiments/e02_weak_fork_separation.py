"""E2 — Figure 3: the history separating weak fork-linearizability.

Runs the scripted hiding-server attack against real USTOR clients,
records the history, and classifies it with all four consistency
checkers.  The paper's claims: the history is weakly fork-linearizable
(so USTOR must not halt) but not fork-linearizable and not linearizable;
causality holds; and the fork is FAUST-detectable once clients exchange
versions offline.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.consistency.causal import check_causal_consistency
from repro.consistency.fork import check_fork_linearizability_exhaustive
from repro.consistency.linearizability import check_linearizability
from repro.consistency.weak_fork import (
    check_weak_fork_linearizability_exhaustive,
    validate_weak_fork_linearizability,
)
from repro.experiments.base import ExperimentResult
from repro.ustor.viewhistory import build_client_views
from repro.workloads.scenarios import figure3_scenario


def run(quick: bool = False) -> ExperimentResult:
    result = figure3_scenario()
    history = result.history

    linearizable = check_linearizability(history).ok
    causal = check_causal_consistency(history).ok
    fork = check_fork_linearizability_exhaustive(history).ok
    weak_fork = check_weak_fork_linearizability_exhaustive(history).ok
    views = build_client_views(history, result.system.recorder, result.system.clients)
    protocol_views_valid = validate_weak_fork_linearizability(history, views).ok

    rows = [
        ["linearizability", linearizable, "no (paper)"],
        ["causal consistency", causal, "yes (paper)"],
        ["fork-linearizability", fork, "no (paper)"],
        ["weak fork-linearizability", weak_fork, "yes (paper)"],
        ["USTOR raised fail during the attack", result.ustor_detected, "no (paper)"],
    ]
    table_a = format_table(["property", "measured", "expected"], rows,
                           title="Classification of the Figure 3 history")
    history_lines = "\n".join(op.describe() for op in history)

    faust = figure3_scenario(faust=True)
    faust.system.run(until=faust.system.now + 400)
    detected_at_all = all(c.faust_failed for c in faust.system.clients)

    findings = {
        "history matches Figure 3": [op.describe() for op in history]
        == ["write_C1(X1, 'u')", "read_C2(X1) -> BOTTOM", "read_C2(X1) -> 'u'"],
        "protocol-derived views certify weak fork-linearizability": protocol_views_valid,
        "clients' versions incomparable after the join": not result.system.clients[0]
        .version.comparable(result.system.clients[1].version),
        "FAUST detects the fork at all clients via offline exchange": detected_at_all,
        "separation matches the paper": (
            not linearizable and causal and not fork and weak_fork
            and not result.ustor_detected
        ),
    }
    return ExperimentResult(
        experiment_id="E2",
        title="Figure 3: weakly fork-linearizable but not fork-linearizable",
        paper_claim=(
            "The history write1(X1,u); read2(X1)->BOTTOM; read2(X1)->u is "
            "weakly fork-linearizable but not fork-linearizable (Section 4); "
            "a server can produce it without triggering any USTOR check."
        ),
        table=history_lines + "\n\n" + table_a,
        findings=findings,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
