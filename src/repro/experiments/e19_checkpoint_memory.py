"""E19 — bounded state: resident memory vs. checkpoint interval.

Section 6's integrity guarantee is bought with unbounded growth: the
server keeps every not-yet-stable SUBMIT in its pending list, the WAL
only ever appends, and every client accumulates version history, audit
state and stability notifications for the whole run.  The authenticated
checkpoint extension (``repro.faust.checkpoint``) folds the all-clients
stable prefix into a co-signed cut so each of those structures can be
truncated — rollback across the cut stays detectable because the cut
itself is signed by every client.

This experiment drives the same seeded open-loop workload (Poisson
arrivals, Zipf reads — ``repro.workloads.scale``) with checkpointing off
and at a sweep of intervals, sampling resident state throughout:

* without checkpointing the resident aggregate grows linearly with the
  run (post-warmup growth ratio well above 1);
* with checkpointing it plateaus at O(active window) — the growth ratio
  sits at ~1 regardless of run length, and the plateau tracks the
  interval;
* operation latency percentiles are *identical* in every column: the
  checkpoint protocol rides the offline channel and local pruning, never
  the data path.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.experiments.base import ExperimentResult
from repro.faust.checkpoint import CheckpointPolicy
from repro.workloads.generator import OpenLoopConfig
from repro.workloads.scale import ScaleConfig, ScaleReport, run_scale

SEED = 20260730


def _run(duration: float, interval: int | None) -> ScaleReport:
    checkpoint = (
        None if interval is None
        else CheckpointPolicy(interval=interval, keep_tail=2)
    )
    return run_scale(
        ScaleConfig(
            num_clients=4,
            seed=SEED,
            open_loop=OpenLoopConfig(rate=0.15, duration=duration),
            checkpoint=checkpoint,
            sample_every=20.0,
        )
    )


def run(quick: bool = False) -> ExperimentResult:
    """Run the sweep; ``quick`` shortens the horizon for the benchmarks."""
    duration = 300.0 if quick else 800.0
    intervals: list[int | None] = [None, 32, 16] if quick else [None, 64, 32, 16]
    reports = {interval: _run(duration, interval) for interval in intervals}
    off = reports[None]

    def row(interval: int | None, r: ScaleReport) -> list:
        return [
            "off" if interval is None else interval,
            f"{r.completed}/{r.planned}",
            r.checkpoints_installed,
            r.recorder_compacted,
            f"{r.growth_ratio:.2f}",
            r.samples[-1].bounded_total,
            r.samples[-1].wal_bytes,
            f"{r.latency_p50:.1f}/{r.latency_p95:.1f}/{r.latency_p99:.1f}",
        ]

    table = format_table(
        [
            "checkpoint interval",
            "ops completed",
            "checkpoints installed",
            "ops compacted",
            "post-warmup growth",
            "final resident state",
            "final WAL bytes",
            "latency p50/p95/p99",
        ],
        [row(interval, reports[interval]) for interval in intervals],
        title="Resident state vs. checkpoint interval (same seeded workload)",
    )

    checkpointed = [r for i, r in reports.items() if i is not None]
    latencies = {
        (r.latency_p50, r.latency_p95, r.latency_p99) for r in reports.values()
    }
    findings = {
        "uncheckpointed resident state keeps growing": off.growth_ratio > 1.3,
        "checkpointing flattens the growth curve (ratio ~1)": all(
            r.growth_ratio < 1.25 for r in checkpointed
        ),
        "every checkpointed run truncated server + client state": all(
            r.checkpoints_installed > 0 and r.recorder_compacted > 0
            for r in checkpointed
        ),
        "final resident state is a fraction of the uncheckpointed run's": all(
            2 * r.samples[-1].bounded_total < off.samples[-1].bounded_total
            for r in checkpointed
        ),
        "latency percentiles are identical in every column": len(latencies) == 1,
        "no client failed and every audit stayed clean": all(
            r.failed_clients == 0 and all(r.checker_ok.values())
            for r in reports.values()
        ),
    }
    return ExperimentResult(
        experiment_id="E19",
        title="Bounded state via authenticated checkpoints",
        paper_claim=(
            "Section 6 keeps the server's pending list and the clients' "
            "version/audit history for the whole execution — the price of "
            "detecting integrity and consistency violations after the fact. "
            "Folding the all-clients stable cut into a client-co-signed "
            "checkpoint lets every layer truncate behind the cut without "
            "giving the server a forgery or rollback window, so resident "
            "state is O(active window) instead of O(history) at unchanged "
            "operation latency."
        ),
        table=table,
        findings=findings,
    )
