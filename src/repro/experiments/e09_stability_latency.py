"""E9 — stability detection (Definition 5, conditions 6-7).

Measures the time from an operation's completion until it is stable
w.r.t. all clients, as a function of the dummy-read period (the paper's
version-propagation mechanism), and verifies that stable prefixes are
linearizable.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.consistency.linearizability import check_linearizability
from repro.experiments.base import ExperimentResult, build_system
from repro.history.history import History


def _time_to_full_stability(period: float, seed: int) -> tuple[float, bool]:
    system = build_system(
        "faust",
        num_clients=3,
        seed=seed,
        dummy_read_period=period,
        probe_check_period=period * 2,
        delta=period * 6,
    )
    handle = system.session(0).write(b"the-op")
    t = handle.result(timeout=1_000).timestamp
    completed_at = system.now
    reached = system.run_until(
        lambda: system.clients[0].tracker.stable_timestamp_for_all() >= t,
        timeout=50_000,
    )
    elapsed = system.now - completed_at
    # Stability-detection accuracy: the stable prefix is linearizable.
    stable_t = system.clients[0].tracker.stable_timestamp_for_all()
    prefix_ops = [
        op
        for op in system.history()
        if op.complete and not (op.client == 0 and (op.timestamp or 0) > stable_t)
    ]
    prefix_lin = check_linearizability(History(prefix_ops)).ok
    return (elapsed if reached else float("inf")), prefix_lin


def run(quick: bool = False) -> ExperimentResult:
    periods = (2.0, 8.0) if quick else (1.0, 2.0, 4.0, 8.0, 16.0)
    seeds = (5,) if quick else (5, 6, 7)
    rows = []
    by_period = {}
    prefixes_ok = True
    for period in periods:
        elapsed_all = []
        for seed in seeds:
            elapsed, prefix_lin = _time_to_full_stability(period, seed)
            prefixes_ok &= prefix_lin
            elapsed_all.append(elapsed)
        mean = sum(elapsed_all) / len(elapsed_all)
        by_period[period] = mean
        rows.append([period, round(mean, 1), round(min(elapsed_all), 1), round(max(elapsed_all), 1)])
    table = format_table(
        ["dummy-read period", "mean time to full stability", "min", "max"],
        rows,
        title="Write completion -> stable w.r.t. all 3 clients (correct server)",
    )
    findings = {
        "every operation eventually became stable": all(
            row[1] != float("inf") for row in rows
        ),
        "stability latency grows with the dummy-read period": by_period[periods[-1]]
        > by_period[periods[0]],
        "stable prefixes are linearizable": prefixes_ok,
    }
    return ExperimentResult(
        experiment_id="E9",
        title="Stability-detection latency vs. dummy-read period",
        paper_claim=(
            "Every operation of a correct client eventually becomes stable "
            "w.r.t. every correct client (completeness), and stable prefixes "
            "are linearizable (stability-detection accuracy) — propagation is "
            "driven by periodic dummy reads and offline version exchange."
        ),
        table=table,
        findings=findings,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
