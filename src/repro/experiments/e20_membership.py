"""E20 — membership leases: evicting a dead signer resumes the chain.

The checkpoint protocol (E19) buys bounded state with an all-members
quorum: every co-signed cut needs a share from *every* signer, so one
crashed client wedges the chain and resident state silently reverts to
the unbounded regime — the paper's fault model (any number of clients
may crash, Section 2) applied to the extension kills the extension.

The membership layer (``repro.faust.membership``) leases each signer
slot against checkpoint progress: a member that blocks the pending cut
for ``lease_checkpoints`` consecutive checks lapses, ``evict_after``
further checks later the survivors co-sign a hash-chained epoch record
``H("EPOCH", epoch, members, parent)`` evicting it, and the checkpoint
chain resumes over the shrunken member set.  A returnee is re-admitted
through a fresh epoch — never a false ``fail_i``, because a stale-but-
honest client's shares are lag, not forking evidence.

This experiment injects the membership test matrix into the same seeded
open-loop workload (``repro scale --client-faults``):

* ``crash-forever`` with membership **off** — the wedge: installs stop
  at the crash, the stall clock runs to the horizon, state grows;
* ``crash-forever`` with membership **on** — one eviction, the chain
  resumes, growth flattens back to ~1;
* ``lease-expiry`` + return — evicted while away, re-admitted on
  return, zero failures either way.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.experiments.base import ExperimentResult
from repro.faust.checkpoint import CheckpointPolicy
from repro.faust.membership import MembershipPolicy
from repro.workloads.generator import OpenLoopConfig
from repro.workloads.scale import ScaleConfig, ScaleReport, run_scale

SEED = 20260807


def _run(
    duration: float, membership: bool, faults: tuple[str, ...]
) -> ScaleReport:
    return run_scale(
        ScaleConfig(
            num_clients=4,
            seed=SEED,
            open_loop=OpenLoopConfig(rate=0.5, duration=duration),
            checkpoint=CheckpointPolicy(interval=8, keep_tail=2),
            membership=MembershipPolicy() if membership else None,
            client_faults=faults,
            sample_every=20.0,
        )
    )


def run(quick: bool = False) -> ExperimentResult:
    """Run the fault matrix; ``quick`` shortens the horizon."""
    duration = 400.0 if quick else 700.0
    crash = (f"crash-forever:2@{120}",)
    away = (f"lease-expiry:1@{100}+{200}",)
    reports = {
        "fault-free, membership on": _run(duration, True, ()),
        "crash-forever, membership off": _run(duration, False, crash),
        "crash-forever, membership on": _run(duration, True, crash),
        "lease-expiry + return, membership on": _run(duration, True, away),
    }

    def row(name: str, r: ScaleReport) -> list:
        return [
            name,
            f"{r.completed}/{r.planned}",
            r.checkpoints_installed,
            r.epoch,
            ",".join(map(str, r.evicted_clients)) or "-",
            r.rejoins,
            f"{r.growth_ratio:.2f}",
            f"{r.checkpoint_stall_seconds:.0f}s",
            r.failed_clients,
        ]

    table = format_table(
        [
            "scenario",
            "ops completed",
            "checkpoints installed",
            "final epoch",
            "evicted",
            "rejoins",
            "post-warmup growth",
            "final stall",
            "false fails",
        ],
        [row(name, report) for name, report in reports.items()],
        title="Client faults vs. the checkpoint chain (same seeded workload)",
    )

    clean = reports["fault-free, membership on"]
    wedged = reports["crash-forever, membership off"]
    evicted = reports["crash-forever, membership on"]
    returned = reports["lease-expiry + return, membership on"]
    findings = {
        "fault-free, the lease layer is invisible (epoch stays 0)": (
            clean.epoch == 0 and clean.evicted_clients == ()
        ),
        "membership off, one dead signer wedges the chain": (
            wedged.checkpoints_installed <= 8
            and wedged.checkpoint_stall_seconds > duration / 3
        ),
        "membership off, resident state reverts to unbounded growth": (
            wedged.growth_ratio > 1.1
        ),
        "membership on, the quorum evicts the dead signer once": (
            evicted.epoch == 1 and evicted.evicted_clients == (2,)
        ),
        "membership on, the chain resumes and growth flattens to ~1": (
            evicted.checkpoints_installed > 2 * wedged.checkpoints_installed
            and evicted.growth_ratio <= 1.1
        ),
        "a lease-expired returnee rejoins through a fresh epoch": (
            returned.epoch == 2
            and returned.rejoins >= 1
            and returned.evicted_clients == ()
        ),
        "eviction is membership, not failure: zero false fail_i": all(
            r.failed_clients == 0 for r in reports.values()
        ),
        "every verdict stayed clean under every fault": all(
            all(r.checker_ok.values()) for r in reports.values()
        ),
    }
    return ExperimentResult(
        experiment_id="E20",
        title="Membership leases under the checkpoint protocol",
        paper_claim=(
            "Section 2 allows any number of clients to crash, but the "
            "checkpoint extension's all-members quorum makes one dead "
            "signer wedge the co-signed chain forever — bounded state "
            "quietly degrades to unbounded. Lease-based membership epochs "
            "let the surviving quorum evict a lapsed signer through a "
            "hash-chained, co-signed epoch record and resume the chain "
            "over the new member set, while an honest returnee is "
            "re-admitted through a fresh epoch and never mistaken for a "
            "forking server."
        ),
        table=table,
        findings=findings,
    )
