"""E16 — sharded detection: latency and notification fan-out per shard.

The cluster layer (:mod:`repro.cluster`) partitions the register space
over N independent servers, so the adversary gains a new degree of
freedom the single-server paper does not model: *be honest on one shard
and fork another*.  The per-shard guarantee the cluster must preserve is
scoped detection — a forking shard is reported to exactly the clients
whose operations touched it, honest shards keep serving everyone, and
the notification fan-out grows with the fraction of compromised shards,
not with cluster size.

Two sweeps over :func:`~repro.workloads.scenarios.
split_brain_shard_scenario`:

* **shard count** at one forking shard — detection latency and fan-out
  as the same register space is spread over more servers;
* **malicious fraction** at a fixed shard count — fan-out as 1, 2, 3 of
  4 shards fork.

Every row asserts the exactness invariant (notified == touched-forked)
and that avoiders completed their whole honest-shard workload.
"""

from __future__ import annotations

import math

from repro.analysis.tables import format_table
from repro.experiments.base import ExperimentResult
from repro.workloads.scenarios import split_brain_shard_scenario


def _row(label: str, result) -> list:
    notified = sorted(result.notified_clients)
    expected = sorted(result.expected_detectors)
    latency = (
        "-"
        if math.isnan(result.detection_latency)
        else round(result.detection_latency, 1)
    )
    return [
        label,
        len(result.forked_shards),
        f"{len(notified)}/{result.system.num_clients}",
        "exact" if result.exact_detection else f"MISMATCH {notified}!={expected}",
        "yes" if result.avoiders_completed() else "NO",
        latency,
    ]


def run(quick: bool = False) -> ExperimentResult:
    num_clients = 6
    rows = []
    results = []

    # -- sweep 1: shard count, one forking shard ------------------------ #
    shard_counts = (2, 4) if quick else (2, 3, 4, 6)
    latencies = {}
    for shards in shard_counts:
        result = split_brain_shard_scenario(
            num_clients=num_clients,
            shards=shards,
            forked_shards=(shards - 1,),
            seed=41 + shards,
            ops_per_client=8 if quick else 12,
            run_for=400.0 if quick else 600.0,
        )
        results.append(result)
        latencies[shards] = result.detection_latency
        rows.append(_row(f"{shards} shards", result))

    # -- sweep 2: fraction of malicious shards at 4 shards --------------- #
    fractions = ((1,), (1, 2)) if quick else ((1,), (1, 2), (1, 2, 3))
    fanout = {}
    for forked in fractions:
        result = split_brain_shard_scenario(
            num_clients=num_clients,
            shards=4,
            forked_shards=forked,
            seed=61 + len(forked),
            ops_per_client=8 if quick else 12,
            run_for=400.0 if quick else 600.0,
        )
        results.append(result)
        fanout[len(forked)] = len(result.notified_clients)
        rows.append(_row(f"4 shards, {len(forked)}/4 forking", result))

    table = format_table(
        [
            "cluster",
            "forking shards",
            "clients notified",
            "detection scope",
            "avoiders completed",
            "detection latency after fork",
        ],
        rows,
        title="Sharded split-brain: per-shard detection scope and latency",
    )

    detected = [r.detection_latency for r in results]
    ordered_fanout = [fanout[k] for k in sorted(fanout)]
    findings = {
        "every run notified exactly the clients that touched a forked shard": all(
            r.exact_detection for r in results
        ),
        "no avoider was ever notified": all(
            not (r.notified_clients & r.avoiders) for r in results
        ),
        "avoiders completed their full honest-shard workload in every run": all(
            r.avoiders_completed() for r in results
        ),
        "every forked cluster was detected": all(
            not math.isnan(lat) for lat in detected
        ),
        "notification fan-out grows with the malicious fraction": (
            ordered_fanout == sorted(ordered_fanout)
        ),
        "worst detection latency after the fork": max(
            lat for lat in detected if not math.isnan(lat)
        ),
    }
    return ExperimentResult(
        experiment_id="E16",
        title="Cluster split-brain: detection scope, latency and fan-out",
        paper_claim=(
            "Extension of the paper's completeness/accuracy to a sharded "
            "deployment: each shard is an independent fail-aware domain, so "
            "a server that forks one shard while serving others honestly is "
            "detected by — and reported to — exactly the clients whose "
            "operations depended on the forked shard, while honest shards "
            "continue to complete operations for everyone (per-shard "
            "wait-freedom)."
        ),
        table=table,
        findings=findings,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
