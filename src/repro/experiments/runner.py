"""Run every experiment and regenerate the EXPERIMENTS.md body.

Usage::

    python -m repro.experiments            # full runs, print to stdout
    python -m repro.experiments --quick    # shrunk sweeps
    python -m repro.experiments --write    # rewrite EXPERIMENTS.md in-place
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import ALL_EXPERIMENTS

HEADER = """# EXPERIMENTS — paper vs. measured

Reproduction record for *Fail-Aware Untrusted Storage* (Cachin, Keidar,
Shraer; DSN 2009).  The paper's evaluation is analytical — four figures
and a set of complexity/liveness claims, no numeric tables — so each
experiment below regenerates a figure scenario or renders a claim as a
measured table.  Regenerate this file with:

    python -m repro.experiments --write

Benchmarks asserting the same shapes run under pytest:

    pytest benchmarks/ --benchmark-only

Figures 1 and 4 (architecture diagrams) map to the package layout rather
than to an experiment: Figure 1's clients/server/offline-channel topology
is `repro.sim` + `repro.workloads.runner`, Figure 4's FAUST-over-USTOR
stack is `repro.faust.client` wrapping `repro.ustor.client`.

"""


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="shrink sweeps")
    parser.add_argument(
        "--write", action="store_true", help="rewrite EXPERIMENTS.md at the repo root"
    )
    parser.add_argument(
        "--only", default=None, help="run a single experiment id (e.g. E4)"
    )
    args = parser.parse_args(argv)

    sections = [HEADER]
    for module in ALL_EXPERIMENTS:
        result_id = module.__name__.split(".")[-1].split("_")[0].upper().replace("E0", "E")
        if args.only and args.only.upper() != result_id:
            continue
        started = time.perf_counter()
        result = module.run(quick=args.quick)
        elapsed = time.perf_counter() - started
        print(f"[{result.experiment_id}] {result.title} ({elapsed:.1f}s)", file=sys.stderr)
        sections.append(result.render())

    body = "\n".join(sections)
    if args.write:
        path = Path(__file__).resolve().parents[3] / "EXPERIMENTS.md"
        path.write_text(body)
        print(f"wrote {path}", file=sys.stderr)
    else:
        print(body)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
