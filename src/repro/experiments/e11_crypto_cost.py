"""E11 — cryptographic cost per operation (Section 5 complexity).

Counts the signature operations Algorithm 1 performs per operation
(2 sign on SUBMIT, 2 sign on COMMIT, plus verifications proportional to
the concurrency level) and measures wall-clock sign/verify cost for the
three schemes, showing what the protocol costs with real Ed25519 versus
the HMAC stand-in the test-suite uses.
"""

from __future__ import annotations

import time

from repro.analysis.tables import format_table
from repro.crypto.signatures import make_scheme
from repro.experiments.base import ExperimentResult


def _bench(scheme_name: str, iterations: int) -> tuple[float, float]:
    scheme = make_scheme(scheme_name, 2)
    payload = b"x" * 128
    start = time.perf_counter()
    signatures = [scheme.sign(0, payload) for _ in range(iterations)]
    sign_us = (time.perf_counter() - start) / iterations * 1e6
    start = time.perf_counter()
    for signature in signatures:
        assert scheme.verify(0, signature, payload)
    verify_us = (time.perf_counter() - start) / iterations * 1e6
    return sign_us, verify_us


def run(quick: bool = False) -> ExperimentResult:
    iterations = 50 if quick else 300
    rows = []
    measured = {}
    for scheme_name in ("ed25519", "hmac", "insecure"):
        sign_us, verify_us = _bench(scheme_name, iterations)
        measured[scheme_name] = (sign_us, verify_us)
        # Algorithm 1 per-operation budget: 4 signatures (SUBMIT, DATA,
        # COMMIT, PROOF); verifications: 1 (line 35) + |L| * 2 (lines 41,
        # 43) + 2 for reads (lines 49, 50).  With low concurrency |L| ~ 0.
        per_op = 4 * sign_us + 3 * verify_us
        rows.append(
            [scheme_name, round(sign_us, 1), round(verify_us, 1), round(per_op, 1)]
        )
    table = format_table(
        ["scheme", "sign (us)", "verify (us)", "per-op crypto (us, |L|=0 read)"],
        rows,
        title=f"Signature cost ({iterations} iterations each)",
    )
    findings = {
        "constant number of signatures per op": "4 sign + (3 + 2|L|) verify",
        "hmac stand-in speedup over ed25519 (sign)": measured["ed25519"][0]
        / max(measured["hmac"][0], 1e-9),
    }
    return ExperimentResult(
        experiment_id="E11",
        title="Cryptographic cost per operation",
        paper_claim=(
            "USTOR needs a constant number of signature generations per "
            "operation and verifications linear in the number of concurrent "
            "operations (Section 5)."
        ),
        table=table,
        findings=findings,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
