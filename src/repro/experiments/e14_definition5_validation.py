"""E14 — Definition 5, validated whole: the fail-aware service contract.

The capstone: run complete FAUST deployments — honest, crash-prone, and
Byzantine — and put each finished run through the executable Definition 5
validator (:mod:`repro.faust.validator`), which checks all seven
conditions mechanically.  A reproduction of the paper's *main theorem*
(FAUST implements a fail-aware untrusted storage service) as a table.
"""

from __future__ import annotations

import random

from repro.analysis.tables import format_table
from repro.experiments.base import ExperimentResult, build_system
from repro.faust.validator import validate_fail_aware_run
from repro.ustor.byzantine import SplitBrainServer, TamperingServer
from repro.ustor.server import UstorServer
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts


def _run_deployment(kind: str, seed: int, settle: float):
    factories = {
        "correct": lambda n, name: UstorServer(n, name=name),
        "correct+crash": lambda n, name: UstorServer(n, name=name),
        "split-brain": lambda n, name: SplitBrainServer(
            n, groups=[{0, 1}, {2}], fork_time=10.0, name=name
        ),
        "tampering": lambda n, name: TamperingServer(n, target_register=0, name=name),
    }
    n = 3
    system = build_system(
        "faust",
        num_clients=n,
        seed=seed,
        server_factory=factories[kind],
        dummy_read_period=3.0,
        probe_check_period=4.0,
        delta=15.0,
    )
    scripts = generate_scripts(
        n, WorkloadConfig(ops_per_client=6, mean_think_time=1.0), random.Random(seed)
    )
    driver = Driver(system)
    driver.attach_all(scripts)
    if kind == "correct+crash":
        system.crash_client_at(2, time=8.0)
    system.run(until=80.0)
    cutoff = system.now
    system.run(until=system.now + settle)
    server_correct = kind.startswith("correct")
    report = validate_fail_aware_run(
        system, server_correct=server_correct, completeness_cutoff=cutoff
    )
    return report


def run(quick: bool = False) -> ExperimentResult:
    seeds = (1, 2) if quick else (1, 2, 3, 4)
    settle = 400.0 if quick else 800.0
    kinds = ["correct", "correct+crash", "split-brain", "tampering"]
    rows = []
    all_ok = True
    for kind in kinds:
        for seed in seeds:
            report = _run_deployment(kind, seed, settle)
            ok_count = sum(1 for result in report.conditions.values() if result.ok)
            all_ok &= report.ok
            failures = "; ".join(
                result.condition for result in report.failures()
            ) or "—"
            rows.append([kind, seed, f"{ok_count}/7", report.ok, failures])
    table = format_table(
        ["deployment", "seed", "conditions OK", "Definition 5 holds", "failed conditions"],
        rows,
        title="Definition 5 validation across deployments",
    )
    findings = {
        "runs validated": len(rows),
        "Definition 5 holds in every run": all_ok,
    }
    return ExperimentResult(
        experiment_id="E14",
        title="The fail-aware service contract, validated whole",
        paper_claim=(
            "FAUST implements a fail-aware untrusted storage service "
            "(Definition 5): linearizability and wait-freedom under a "
            "correct server, causality and integrity always, accurate and "
            "complete failure and stability detection."
        ),
        table=table,
        findings=findings,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
