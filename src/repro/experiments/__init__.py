"""The experiment harness: one module per reproduced figure/claim.

The recorded paper-vs-measured outcomes are generated into EXPERIMENTS.md
by ``python -m repro experiments --write``; each experiment's headline
claims are asserted by ``benchmarks/test_bench_experiments.py``.
"""

from repro.experiments import (
    e01_stability_cut,
    e02_weak_fork_separation,
    e03_rounds_latency,
    e04_msg_complexity,
    e05_wait_freedom,
    e06_linearizability,
    e07_causality_attacks,
    e08_detection_latency,
    e09_stability_latency,
    e10_server_gc,
    e11_crypto_cost,
    e12_notion_separation,
    e13_digest_ablation,
    e14_definition5_validation,
    e15_rollback_recovery,
    e16_cluster_detection,
    e17_throughput,
    e18_replica_rollback,
    e19_checkpoint_memory,
    e20_membership,
)
from repro.experiments.base import ExperimentResult

ALL_EXPERIMENTS = [
    e01_stability_cut,
    e02_weak_fork_separation,
    e03_rounds_latency,
    e04_msg_complexity,
    e05_wait_freedom,
    e06_linearizability,
    e07_causality_attacks,
    e08_detection_latency,
    e09_stability_latency,
    e10_server_gc,
    e11_crypto_cost,
    e12_notion_separation,
    e13_digest_ablation,
    e14_definition5_validation,
    e15_rollback_recovery,
    e16_cluster_detection,
    e17_throughput,
    e18_replica_rollback,
    e19_checkpoint_memory,
    e20_membership,
]

__all__ = ["ALL_EXPERIMENTS", "ExperimentResult"]
