"""E7 — causality under every Byzantine attack (Definition 5, condition 3).

Runs the full attack matrix and checks the recorded histories for causal
consistency and (via protocol-derived views) weak fork-linearizability.
A few attacks halt the clients immediately (detection) — the history up
to the halt must still be causal.
"""

from __future__ import annotations

import random

from repro.analysis.tables import format_table
from repro.consistency.causal import check_causal_consistency
from repro.consistency.linearizability import check_linearizability
from repro.experiments.base import ExperimentResult, build_system
from repro.ustor.byzantine import (
    CrashingServer,
    Fig3Server,
    ForgingServer,
    ReplayServer,
    SplitBrainServer,
    TamperingServer,
    UnresponsiveServer,
)
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts

ATTACKS = {
    "correct (control)": lambda n, name: __import__(
        "repro.ustor.server", fromlist=["UstorServer"]
    ).UstorServer(n, name=name),
    "tampering": lambda n, name: TamperingServer(n, target_register=0, name=name),
    "forged version": lambda n, name: ForgingServer(n, name=name),
    "replay": lambda n, name: ReplayServer(n, freeze_after_submits=4, name=name),
    "crash": lambda n, name: CrashingServer(n, crash_after_submits=6, name=name),
    "unresponsive to C1": lambda n, name: UnresponsiveServer(n, victims={0}, name=name),
    "split brain": lambda n, name: SplitBrainServer(
        n, groups=[{0, 1}, {2, 3}], fork_time=5.0, name=name
    ),
    "figure-3 hiding": lambda n, name: Fig3Server(n, writer=0, victim=1, name=name),
}


def run(quick: bool = False) -> ExperimentResult:
    seeds = (1,) if quick else (1, 2, 3)
    n = 4
    rows = []
    causal_everywhere = True
    for attack_name, factory in ATTACKS.items():
        for seed in seeds:
            system = build_system(
                "ustor", num_clients=n, seed=seed, server_factory=factory
            )
            scripts = generate_scripts(
                n,
                WorkloadConfig(ops_per_client=8, read_fraction=0.5, mean_think_time=1.0),
                random.Random(seed),
            )
            driver = Driver(system)
            driver.attach_all(scripts)
            system.run(until=2_000)
            history = system.history()
            causal = check_causal_consistency(history).ok
            lin = check_linearizability(history).ok
            detected = sum(1 for c in system.clients if c.failed)
            causal_everywhere &= causal
            rows.append(
                [
                    attack_name,
                    seed,
                    driver.stats.total_completed(),
                    lin,
                    causal,
                    detected,
                ]
            )
    table = format_table(
        ["server", "seed", "ops done", "linearizable", "causal", "USTOR fail_i count"],
        rows,
        title="Attack matrix: consistency of the recorded history",
    )
    findings = {
        "causality holds under every attack": causal_everywhere,
        "attacks run": len(ATTACKS),
    }
    return ExperimentResult(
        experiment_id="E7",
        title="Causality is preserved under all Byzantine attacks",
        paper_claim=(
            "The restriction of every execution to the register functionality "
            "is causally consistent, server faults notwithstanding "
            "(Definition 5, condition 3)."
        ),
        table=table,
        findings=findings,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
