"""E6 — linearizability with a correct server (Definition 5, condition 1).

Randomized executions across seeds, populations, latency models and
read/write mixes; every recorded history must pass the (independently
validated) linearizability checker, plus causality and integrity.
"""

from __future__ import annotations

import random

from repro.analysis.tables import format_table
from repro.consistency.causal import check_causal_consistency
from repro.consistency.linearizability import check_linearizability
from repro.experiments.base import ExperimentResult, build_system
from repro.sim.network import ExponentialLatency, FixedLatency, UniformLatency
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts


def run(quick: bool = False) -> ExperimentResult:
    seeds = range(6) if quick else range(20)
    rows = []
    all_lin = all_causal = all_done = 0
    total = 0
    for seed in seeds:
        rng = random.Random(seed)
        n = rng.choice([2, 3, 4, 6])
        latency = rng.choice(
            [FixedLatency(1.0), UniformLatency(0.2, 3.0), ExponentialLatency(1.0, cap=10.0)]
        )
        read_fraction = rng.choice([0.2, 0.5, 0.8])
        system = build_system("ustor", num_clients=n, seed=seed, latency=latency)
        scripts = generate_scripts(
            n,
            WorkloadConfig(ops_per_client=12, read_fraction=read_fraction),
            rng,
        )
        driver = Driver(system)
        driver.attach_all(scripts)
        done = driver.run_to_completion(timeout=1_000_000)
        history = system.history()
        lin = check_linearizability(history).ok
        causal = check_causal_consistency(history).ok
        total += 1
        all_lin += lin
        all_causal += causal
        all_done += done
        rows.append([seed, n, type(latency).__name__, read_fraction, done, lin, causal])
    table = format_table(
        ["seed", "n", "latency", "read frac", "wait-free", "linearizable", "causal"],
        rows,
        title="Randomized correct-server executions",
    )
    findings = {
        "runs": total,
        "linearizable": f"{all_lin}/{total}",
        "causally consistent": f"{all_causal}/{total}",
        "wait-free (all ops completed)": f"{all_done}/{total}",
        "claim holds": all_lin == all_causal == all_done == total,
    }
    return ExperimentResult(
        experiment_id="E6",
        title="Linearizability and wait-freedom with a correct server",
        paper_claim=(
            "If S is correct, the history is linearizable w.r.t. the register "
            "functionality and wait-free (Definition 5, conditions 1-2)."
        ),
        table=table,
        findings=findings,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
