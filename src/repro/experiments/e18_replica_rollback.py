"""E18 — replicated shards vs. the rollback adversary (repro.replica).

The wire protocol *detects* a rollback only when the rolled state
contradicts some client's committed version — and detection is fail-stop:
the workload halts.  This experiment measures what each added trust
mechanism buys against the same attack (one replica of a group recovers
from a deliberately stale snapshot):

* **baseline (n=1)** — the paper's single untrusted server: the attack is
  eventually detected, but every client halts and the workload dies;
* **honest majority (n=3, q=2)** — the quorum outvotes the deviant
  replies; nothing fails, every operation completes, the attack is
  *masked* rather than detected;
* **unanimity (n=3, q=3)** — no masking margin: the first deviant reply
  makes the quorum unattainable and turns masking back into detection;
* **durable monotonic counter** — the trusted component convicts the
  rolled-back replica on its first post-restart reply (O(1) operations,
  independent of workload length) while the honest majority keeps the
  service running;
* **volatile counter** — the cautionary corner: an honest replica that
  crash-recovers from durable storage is *falsely accused*, because its
  state remembers operations its reset counter no longer vouches for.

The second table prices the mechanism: total wire traffic against the
replica count (every SUBMIT/COMMIT is broadcast n-fold and every replica
REPLYs, so traffic — like storage — scales with n; the attestation adds a
constant per REPLY).
"""

from __future__ import annotations

import math

from repro.analysis.tables import format_table
from repro.experiments.base import ExperimentResult
from repro.workloads.scenarios import replica_rollback_scenario


def _fmt_latency(value: float) -> str:
    return "-" if math.isnan(value) else f"{value:.1f}"


def run(quick: bool = False) -> ExperimentResult:
    ops = 6 if quick else 10
    clients = 4

    # -- the same attack against each trust configuration --------------- #
    baseline = replica_rollback_scenario(
        num_clients=clients, ops_per_client=ops, replicas=1, rollback_replica=0
    )
    masked = replica_rollback_scenario(
        num_clients=clients, ops_per_client=ops, replicas=3
    )
    unanimity = replica_rollback_scenario(
        num_clients=clients, ops_per_client=ops, replicas=3, quorum=3
    )
    counter = replica_rollback_scenario(
        num_clients=clients, ops_per_client=ops, replicas=3, counter="durable"
    )
    volatile = replica_rollback_scenario(
        num_clients=clients,
        ops_per_client=ops,
        replicas=3,
        counter="volatile",
        rollback_replica=None,
        honest_outage=(1, 30.0, 5.0),
    )

    def row(label: str, r) -> list:
        return [
            label,
            f"{r.replicas}/{r.quorum}",
            r.counter or "-",
            f"{r.completed}/{r.planned}",
            r.masked_deviations,
            len(r.fail_times),
            len(r.convicted),
            _fmt_latency(r.detection_latency),
            r.ops_until_detection if r.detected else "-",
        ]

    regimes = format_table(
        [
            "regime",
            "replicas/quorum",
            "counter",
            "ops completed",
            "deviant replies masked",
            "clients failed",
            "replicas convicted",
            "signal latency after restart",
            "ops until signal",
        ],
        [
            row("rollback, single server", baseline),
            row("rollback, honest majority", masked),
            row("rollback, unanimity quorum", unanimity),
            row("rollback, durable counter", counter),
            row("honest recovery, volatile counter", volatile),
        ],
        title="One rolled-back replica: detection vs. masking vs. conviction",
    )

    # -- what the mechanism costs: wire traffic vs. replica count -------- #
    overhead_rows = []
    bytes_by_n = {}
    for n in (1, 3) if quick else (1, 3, 5):
        honest = replica_rollback_scenario(
            num_clients=clients,
            ops_per_client=ops,
            replicas=n,
            rollback_replica=None,
            counter="durable" if n > 1 else None,
        )
        trace = honest.system.shards[0].trace
        total = trace.total_bytes()
        bytes_by_n[n] = total
        overhead_rows.append(
            [
                n,
                f"{honest.completed}/{honest.planned}",
                trace.message_count("SUBMIT"),
                trace.message_count("REPLY"),
                total,
                f"{total / bytes_by_n[1]:.2f}x",
            ]
        )
    overhead = format_table(
        [
            "replicas",
            "ops completed",
            "SUBMITs on the wire",
            "REPLYs on the wire",
            "total wire bytes",
            "vs. single server",
        ],
        overhead_rows,
        title="The price of the quorum: wire traffic vs. replica count",
    )

    findings = {
        "single-server rollback is detected but halts the workload": (
            baseline.detected and not baseline.all_completed
        ),
        "an honest majority masks every deviant reply": (
            masked.masked_deviations > 0
            and not masked.fail_times
            and not masked.convicted
            and masked.all_completed
        ),
        "unanimity has no masking margin (first deviation detected)": (
            unanimity.detected
        ),
        "a durable counter convicts the rolled-back replica": (
            len(counter.convicted) == 1 and counter.all_completed
        ),
        "the counter catch is O(1) operations": (
            counter.detected and counter.ops_until_detection <= 2 * clients
        ),
        "a volatile counter falsely accuses honest recovery": (
            len(volatile.convicted) == 1
            and not volatile.masked_deviations
            and volatile.all_completed
        ),
        "wire traffic scales with the replica count": (
            2.0 <= bytes_by_n[3] / bytes_by_n[1] <= 4.5
        ),
    }
    return ExperimentResult(
        experiment_id="E18",
        title="Replicated rollback-resistant shards (quorums + counters)",
        paper_claim=(
            "The protocol's guarantee against a rollback is detection after "
            "the fact; Section 7's outlook — combining the untrusted-server "
            "protocol with replication and a minimal trusted component — "
            "upgrades it: an honest quorum masks the rolled replica so the "
            "service never stops, and a durable monotonic counter bound to "
            "each REPLY convicts it within O(1) operations, at the price of "
            "n-fold storage and wire traffic.  The trusted component must "
            "be as durable as the state it vouches for, or honest recovery "
            "becomes indistinguishable from the attack."
        ),
        table=regimes + "\n\n" + overhead,
        findings=findings,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
