"""E1 — Figure 2: the stability cut ``stable_Alice([10, 8, 3])``.

Reproduces the paper's running example: Alice and Bob collaborate through
a correct server while Carlos is asleep; Alice's stability notification
shows her consistent with herself up to t=10, with Bob up to t=8, and with
Carlos up to t=3.  When Carlos returns, every operation becomes stable at
every client.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.experiments.base import ExperimentResult
from repro.workloads.scenarios import figure2_scenario

TARGET_CUT = (10, 8, 3)


def run(quick: bool = False) -> ExperimentResult:
    result = figure2_scenario(include_carlos_return=not quick)
    alice = result.system.clients[0]

    rows = []
    cuts = result.alice_cuts
    target_index = cuts.index(TARGET_CUT) if TARGET_CUT in cuts else None
    shown = cuts if target_index is None else cuts[: target_index + 1]
    for index, cut in enumerate(shown):
        rows.append(
            [
                index + 1,
                f"stable_Alice({list(cut)})",
                "<- Figure 2's cut" if cut == TARGET_CUT else "",
            ]
        )
    table = format_table(
        ["#", "notification", "note"],
        rows,
        title="Alice's stability notifications (day phase)",
    )

    findings: dict = {
        "figure-2 cut (10, 8, 3) emitted": TARGET_CUT in cuts,
        "notifications until the cut": target_index + 1 if target_index is not None else None,
        "false failure alarms": any(c.faust_failed for c in result.system.clients),
    }
    if not quick:
        # Night phase: Carlos returned; everything becomes mutually stable.
        system = result.system
        reached = system.run_until(
            lambda: alice.tracker.stable_timestamp_for_all() >= 10, timeout=3_000
        )
        findings["all of Alice's ops stable after Carlos returns"] = reached

    return ExperimentResult(
        experiment_id="E1",
        title="Stability cut of Figure 2",
        paper_claim=(
            "stable_Alice([10,8,3]): Alice is consistent with herself up to "
            "t=10, with Bob up to t=8, with Carlos up to t=3; once Carlos "
            "returns, all operations eventually become stable at all clients."
        ),
        table=table,
        findings=findings,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
