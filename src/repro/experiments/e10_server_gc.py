"""E10 — COMMIT messages as garbage collection (Section 5's remark).

The paper notes the COMMIT message "is simply an optimization to expedite
garbage collection at S; this message can be eliminated by piggybacking
its contents on the SUBMIT message of the next operation".  This
experiment quantifies the trade-off: client->server messages drop by
half, while the server's pending-operation list L retains one entry per
client (the never-committed last operation) instead of staying near the
instantaneous concurrency level.
"""

from __future__ import annotations

import random

from repro.analysis.tables import format_table
from repro.experiments.base import ExperimentResult, build_system
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts


def _run(n: int, ops: int, seed: int, piggyback: bool):
    system = build_system(
        "ustor", num_clients=n, seed=seed, commit_piggyback=piggyback
    )
    scripts = generate_scripts(
        n,
        WorkloadConfig(ops_per_client=ops, read_fraction=0.5, mean_think_time=0.5),
        random.Random(seed),
    )
    driver = Driver(system)
    driver.attach_all(scripts)
    assert driver.run_to_completion(timeout=1_000_000)
    system.run(until=system.now + 20)
    return system


def run(quick: bool = False) -> ExperimentResult:
    n = 4
    ops = 10 if quick else 25
    rows = []
    stats = {}
    for piggyback in (False, True):
        system = _run(n, ops, seed=10, piggyback=piggyback)
        label = "piggybacked" if piggyback else "eager COMMIT"
        client_msgs = system.trace.message_count("SUBMIT") + system.trace.message_count(
            "COMMIT"
        )
        stats[piggyback] = (
            system.server.max_pending_len,
            len(system.server.state.pending),
            client_msgs,
        )
        rows.append(
            [
                label,
                system.server.max_pending_len,
                len(system.server.state.pending),
                system.trace.message_count("SUBMIT"),
                system.trace.message_count("COMMIT"),
            ]
        )
    table = format_table(
        ["mode", "max |L|", "final |L|", "SUBMITs", "COMMITs"],
        rows,
        title=f"Server pending-list pressure, {n} clients x {ops} ops",
    )
    findings = {
        "eager mode drains L completely at quiescence": stats[False][1] == 0,
        "eager mode bounds max |L| by the concurrency level": stats[False][0] <= n + 2,
        # Each client's final COMMIT is deferred forever; a *later* client's
        # piggybacked commit may still prune earlier clients' trailing
        # tuples, so the residue is between 1 and n entries.
        "piggyback mode leaves residual entries in L": 1 <= stats[True][1] <= n,
        "client->server messages saved by piggybacking": stats[False][2]
        - stats[True][2],
    }
    return ExperimentResult(
        experiment_id="E10",
        title="Garbage collection: eager COMMIT vs. piggybacking",
        paper_claim=(
            "COMMIT expedites garbage collection at the server and can be "
            "piggybacked on the next SUBMIT (Section 5) — trading one message "
            "per operation for residual pending-list entries."
        ),
        table=table,
        findings=findings,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
