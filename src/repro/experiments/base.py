"""Common scaffolding for the experiment harness.

Every experiment module exposes ``run(quick: bool = False) ->
ExperimentResult``; the result carries the regenerated table (the
rows/series the paper reports, or the executable form of an analytical
claim) plus machine-checkable findings that the benchmark suite asserts.

``quick`` shrinks sweeps for use under pytest-benchmark; the full-size run
is what EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.api import FaustParams, System, SystemConfig, get_backend
from repro.sim.network import LatencyModel


def build_system(
    backend: str = "faust",
    *,
    num_clients: int,
    seed: int = 0,
    scheme: str = "hmac",
    latency: LatencyModel | None = None,
    offline_latency: LatencyModel | None = None,
    server_factory: Callable | None = None,
    commit_piggyback: bool = False,
    default_timeout: float = 1_000.0,
    **faust_overrides,
) -> System:
    """Open a deployment on a named backend (``faust`` / ``ustor`` /
    ``lockstep`` / ``unchecked``) through :mod:`repro.api`.

    Experiments are parameterized over *guarantees* rather than wired to a
    protocol: remaining keyword arguments (``delta``, ``dummy_read_period``,
    ...) tune the fail-aware layer and are only meaningful with the
    ``faust`` backend.
    """
    config = SystemConfig(
        num_clients=num_clients,
        seed=seed,
        scheme=scheme,
        latency=latency,
        offline_latency=offline_latency,
        server_factory=server_factory,
        commit_piggyback=commit_piggyback,
        default_timeout=default_timeout,
        faust=FaustParams(**faust_overrides),
    )
    return get_backend(backend).open_system(config)


@dataclass
class ExperimentResult:
    """Outcome of one experiment."""

    experiment_id: str
    title: str
    paper_claim: str
    table: str
    findings: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"## {self.experiment_id} — {self.title}",
            "",
            f"**Paper claim.** {self.paper_claim}",
            "",
            "```",
            self.table,
            "```",
            "",
        ]
        if self.findings:
            lines.append("**Measured findings.**")
            lines.append("")
            for key, value in self.findings.items():
                lines.append(f"- {key}: {_fmt(value)}")
            lines.append("")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)
