"""Common scaffolding for the experiment harness.

Every experiment module exposes ``run(quick: bool = False) ->
ExperimentResult``; the result carries the regenerated table (the
rows/series the paper reports, or the executable form of an analytical
claim) plus machine-checkable findings that the benchmark suite asserts.

``quick`` shrinks sweeps for use under pytest-benchmark; the full-size run
is what EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ExperimentResult:
    """Outcome of one experiment."""

    experiment_id: str
    title: str
    paper_claim: str
    table: str
    findings: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"## {self.experiment_id} — {self.title}",
            "",
            f"**Paper claim.** {self.paper_claim}",
            "",
            "```",
            self.table,
            "```",
            "",
        ]
        if self.findings:
            lines.append("**Measured findings.**")
            lines.append("")
            for key, value in self.findings.items():
                lines.append(f"- {key}: {_fmt(value)}")
            lines.append("")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)
