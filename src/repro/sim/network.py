"""Reliable FIFO channels between clients and the server.

The model (Section 2, Figure 1) assumes *asynchronous reliable FIFO*
channels between each client and the server.  FIFO matters for correctness:
USTOR's check ``V^c[i] = V_i[i]`` (Algorithm 1, line 36) is sound only
because the server processes a client's COMMIT before that client's next
SUBMIT, which FIFO order guarantees.

This module enforces FIFO per directed link regardless of the latency
model: a message's delivery time is clamped to be no earlier than the
previously scheduled delivery on the same link.  Latencies are sampled from
pluggable distributions using the scheduler's seeded RNG, so adversarial
and randomized schedules are reproducible.

**Transport batching** (``Network(batching=True)``) coalesces a *burst* —
all messages sent on one directed link during one scheduler turn — into a
single delivery event: one latency sample, one heap push/pop, one wakeup
at the receiver, with the members handed over in send order (FIFO is
preserved by construction).  This models real transports that pack
same-destination frames into one packet, and is the macro lever behind
the end-to-end throughput work: a client's COMMIT + next SUBMIT, or a
flushed batch of session operations, crosses the simulated wire as one
event instead of k.  Per-message trace records are still emitted (E3/E4
count messages, not packets); burst formation is visible through the
``bursts_formed`` / ``messages_coalesced`` counters.

:class:`Network` is the simulator's implementation of the transport seam
(:class:`repro.net.transport.Transport`): it satisfies that protocol
structurally — ``register``/``send``/``trace`` — without importing it,
and :mod:`repro.net` provides the real-socket implementation of the same
surface.  Protocol nodes only ever see the seam.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.common.errors import ChannelError, SimulationError
from repro.obs.registry import Counter, get_registry
from repro.sim.process import Node
from repro.sim.scheduler import Scheduler
from repro.sim.trace import SimTrace

#: Minimal spacing between deliveries on one link, keeping delivery times
#: strictly increasing so event ordering is unambiguous.
_FIFO_EPSILON = 1e-9


class LatencyModel(ABC):
    """Distribution of one-way message delays on a link."""

    @abstractmethod
    def sample(self, rng) -> float:
        """Draw a non-negative delay."""


class FixedLatency(LatencyModel):
    """Constant delay — the workhorse for deterministic unit tests."""

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ChannelError(f"latency must be non-negative, got {delay}")
        self.delay = delay

    def sample(self, rng) -> float:
        return self.delay

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FixedLatency({self.delay})"


class UniformLatency(LatencyModel):
    """Uniform delay in ``[low, high]`` — models jittery WAN links."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 <= low <= high:
            raise ChannelError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng) -> float:
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformLatency({self.low}, {self.high})"


class ExponentialLatency(LatencyModel):
    """Exponential delay with a mean and an optional cap.

    Heavy-tailed enough to produce interesting interleavings (concurrent
    operations, late COMMITs) while the cap keeps runs finite-horizon.
    """

    def __init__(self, mean: float, cap: float | None = None) -> None:
        if mean <= 0:
            raise ChannelError(f"mean latency must be positive, got {mean}")
        if cap is not None and cap < mean:
            raise ChannelError("latency cap must be at least the mean")
        self.mean = mean
        self.cap = cap

    def sample(self, rng) -> float:
        delay = rng.expovariate(1.0 / self.mean)
        if self.cap is not None:
            delay = min(delay, self.cap)
        return delay

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExponentialLatency(mean={self.mean}, cap={self.cap})"


def message_kind(message: Any) -> str:
    """Best-effort short name of a message for traces and metrics."""
    kind = getattr(message, "kind", None)
    if isinstance(kind, str):
        return kind
    return type(message).__name__


def message_size(message: Any) -> int:
    """Wire size in bytes, if the message models it (else 0)."""
    fn = getattr(message, "wire_size", None)
    if callable(fn):
        return int(fn())
    return 0


class _Link:
    """One directed link with its latency model and FIFO clamp state."""

    __slots__ = ("latency", "last_delivery", "extra_delay")

    def __init__(self, latency: LatencyModel) -> None:
        self.latency = latency
        self.last_delivery = -1.0
        self.extra_delay = 0.0


class _Burst:
    """Messages coalesced onto one link delivery (batching mode only).

    ``marker`` identifies the scheduler turn the burst was opened in; a
    burst accepts members only while the marker matches, so a member can
    never be scheduled into a delivery that predates its send.
    """

    __slots__ = ("marker", "delivery", "messages")

    def __init__(self, marker: tuple, delivery: float, message: Any) -> None:
        self.marker = marker
        self.delivery = delivery
        self.messages: list[Any] = [message]


class Network:
    """The star topology of Figure 1: every client linked to the server.

    Links are created lazily with a default latency model and can be
    reconfigured per direction (``set_latency``) or slowed down
    (``add_delay``) to build adversarial timings.  Channels are *reliable*:
    nothing is ever dropped — messages to a crashed node are recorded as
    undeliverable but that models the receiver's crash, not channel loss.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        default_latency: LatencyModel | None = None,
        trace: SimTrace | None = None,
        batching: bool = False,
        rng=None,
    ) -> None:
        self._scheduler = scheduler
        self._default_latency = default_latency or FixedLatency(1.0)
        # Latency sampling RNG.  Defaults to the scheduler's seeded RNG
        # (one stream per simulated world); a dedicated ``rng`` gives this
        # network its own stream — the cluster backend derives one per
        # shard so shards don't consume correlated "randomness".
        self._rng = rng if rng is not None else scheduler.rng
        self._trace = trace
        self._nodes: dict[str, Node] = {}
        self._links: dict[tuple[str, str], _Link] = {}
        self._batching = bool(batching)
        self._open_bursts: dict[tuple[str, str], _Burst] = {}
        # Batching instrumentation lives on repro.obs counters: the
        # per-instance pair backs the read-through aliases below (always
        # counting, so per-network stats work with metrics off), while the
        # registry pair aggregates across every network when metrics are on.
        self._bursts_counter = Counter()
        self._coalesced_counter = Counter()
        registry = get_registry()
        self._obs_bursts = registry.counter("sim.network.bursts_formed")
        self._obs_coalesced = registry.counter("sim.network.messages_coalesced")

    @property
    def bursts_formed(self) -> int:
        """Delivery events created for message bursts (batching mode)."""
        return self._bursts_counter.value

    @property
    def messages_coalesced(self) -> int:
        """Messages that rode an already-open burst (saved scheduler events)."""
        return self._coalesced_counter.value

    @property
    def trace(self) -> SimTrace | None:
        return self._trace

    @property
    def batching(self) -> bool:
        """Is same-turn burst coalescing enabled on this network?"""
        return self._batching

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #

    def register(self, node: Node) -> None:
        if node.name in self._nodes:
            raise ChannelError(f"node name {node.name!r} already registered")
        self._nodes[node.name] = node
        node.bind(self._scheduler, self)

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise ChannelError(f"unknown node {name!r}") from None

    def _link(self, src: str, dst: str) -> _Link:
        key = (src, dst)
        link = self._links.get(key)
        if link is None:
            link = _Link(self._default_latency)
            self._links[key] = link
        return link

    def set_latency(self, src: str, dst: str, latency: LatencyModel) -> None:
        """Override the latency model of one directed link."""
        self._link(src, dst).latency = latency

    def add_delay(self, src: str, dst: str, extra: float) -> None:
        """Add a constant extra delay on a link (adversarial slow-down)."""
        if extra < 0:
            raise ChannelError("extra delay must be non-negative")
        self._link(src, dst).extra_delay = extra

    # ------------------------------------------------------------------ #
    # Transmission
    # ------------------------------------------------------------------ #

    def _check_registered(self, name: str, role: str) -> None:
        if name not in self._nodes:
            raise ChannelError(f"{role} {name!r} is not registered")

    def send(self, src: str, dst: str, message: Any) -> None:
        self._check_registered(src, "sender")
        self._check_registered(dst, "recipient")
        now = self._scheduler.now
        if self._batching and self._ride_burst(src, dst, message, now):
            return
        link = self._link(src, dst)
        delay = link.latency.sample(self._rng) + link.extra_delay
        self._dispatch(src, dst, message, delay, now)

    def send_multi(self, src: str, dsts: tuple, message: Any) -> None:
        """One logical send fanned out to several destinations.

        The replica broadcast: **one** latency sample is drawn and shared
        by every destination (each link still adds its own adversarial
        ``extra_delay`` and keeps its own FIFO clamp).  Sharing the sample
        keeps honest replicas deterministic copies of each other — they
        see the same client stream in the same order at the same instants
        — and consumes exactly one RNG draw whatever the group size, so
        a replicated run's RNG stream does not depend on n.  Destinations
        whose link has an open same-turn burst ride it instead (batching
        mode), exactly as :meth:`send` would.
        """
        self._check_registered(src, "sender")
        for dst in dsts:
            self._check_registered(dst, "recipient")
        now = self._scheduler.now
        shared_sample: float | None = None
        for dst in dsts:
            if self._batching and self._ride_burst(src, dst, message, now):
                continue
            link = self._link(src, dst)
            if shared_sample is None:
                shared_sample = link.latency.sample(self._rng)
            self._dispatch(src, dst, message, shared_sample + link.extra_delay, now)

    def _ride_burst(self, src: str, dst: str, message: Any, now: float) -> bool:
        """Append to an open same-turn burst on this link, if any."""
        marker = (self._scheduler.events_processed, now)
        burst = self._open_bursts.get((src, dst))
        if burst is None or burst.marker != marker:
            return False
        # Same link, same turn: ride the already-scheduled delivery.
        burst.messages.append(message)
        self._coalesced_counter.inc()
        self._obs_coalesced.inc()
        self._record(now, burst.delivery, src, dst, message)
        return True

    def _dispatch(
        self, src: str, dst: str, message: Any, delay: float, now: float
    ) -> None:
        """Schedule one delivery ``delay`` after ``now`` (FIFO-clamped)."""
        link = self._link(src, dst)
        candidate = now + delay
        if candidate < now:
            raise SimulationError("latency model produced a negative delay")
        # FIFO clamp: never deliver before (or at) the previous delivery.
        delivery = max(candidate, link.last_delivery + _FIFO_EPSILON)
        link.last_delivery = delivery
        self._record(now, delivery, src, dst, message)
        if self._batching:
            marker = (self._scheduler.events_processed, now)
            burst = _Burst(marker, delivery, message)
            self._open_bursts[(src, dst)] = burst
            self._bursts_counter.inc()
            self._obs_bursts.inc()
            self._scheduler.schedule_at(delivery, self._deliver_burst, src, dst, burst)
        else:
            self._scheduler.schedule_at(delivery, self._deliver, src, dst, message)

    def _record(
        self, sent_at: float, delivered_at: float, src: str, dst: str, message: Any
    ) -> None:
        if self._trace is not None:
            self._trace.record_message(
                sent_at=sent_at,
                delivered_at=delivered_at,
                src=src,
                dst=dst,
                kind=message_kind(message),
                size=message_size(message),
            )

    def _deliver(self, src: str, dst: str, message: Any) -> None:
        node = self._nodes.get(dst)
        if node is None:  # pragma: no cover - nodes are never unregistered
            return
        node.deliver(src, message)

    def _deliver_burst(self, src: str, dst: str, burst: _Burst) -> None:
        if self._open_bursts.get((src, dst)) is burst:
            del self._open_bursts[(src, dst)]
        node = self._nodes.get(dst)
        if node is None:  # pragma: no cover - nodes are never unregistered
            return
        for message in burst.messages:
            node.deliver(src, message)
