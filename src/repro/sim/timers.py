"""Periodic timers for protocol housekeeping.

FAUST (Section 6) runs two periodic activities per client: dummy reads in
round-robin over all registers when the client is idle, and a staleness
check that probes clients whose versions have not been refreshed for more
than ``DELTA`` time units.  Both are driven by :class:`PeriodicTimer`.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import SimulationError
from repro.sim.scheduler import EventHandle, Scheduler


class PeriodicTimer:
    """Fires a callback every ``period`` units of virtual time.

    The timer re-arms itself *after* the callback returns, so a slow chain
    of events cannot make ticks pile up.  ``jitter`` (a fraction of the
    period, drawn uniformly) desynchronises the fleets of per-client timers
    that would otherwise all fire at the same instant.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        period: float,
        callback: Callable[[], None],
        jitter: float = 0.0,
        initial_delay: float | None = None,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"timer period must be positive, got {period}")
        if not 0.0 <= jitter < 1.0:
            raise SimulationError("jitter must be a fraction in [0, 1)")
        self._scheduler = scheduler
        self._period = period
        self._callback = callback
        self._jitter = jitter
        self._initial_delay = period if initial_delay is None else initial_delay
        self._handle: EventHandle | None = None
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._arm(self._initial_delay)

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _arm(self, delay: float) -> None:
        jittered = delay
        if self._jitter:
            spread = delay * self._jitter
            jittered = delay + self._scheduler.rng.uniform(-spread, spread)
            jittered = max(jittered, 0.0)
        self._handle = self._scheduler.schedule(jittered, self._tick)

    def _tick(self) -> None:
        if not self._running:
            return
        self._callback()
        if self._running:  # the callback may have stopped the timer
            self._arm(self._period)
