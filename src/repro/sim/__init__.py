"""Deterministic discrete-event simulation substrate (Figure 1's world).

Provides the asynchronous system model of Section 2: a seeded event loop,
reliable FIFO client-server channels, the offline client-to-client channel,
crash-stop and crash-recovery processes (with scheduled server faults),
periodic timers, and run tracing/metrics.
"""

from repro.sim.faults import ServerFaultInjector
from repro.sim.metrics import Counter, MetricsRegistry, Sample, Summary, summarize
from repro.sim.network import (
    ExponentialLatency,
    FixedLatency,
    LatencyModel,
    Network,
    UniformLatency,
    message_kind,
    message_size,
)
from repro.sim.offline import OfflineChannel
from repro.sim.process import Node
from repro.sim.scheduler import EventHandle, Scheduler
from repro.sim.timers import PeriodicTimer
from repro.sim.trace import MessageRecord, NoteRecord, SimTrace

__all__ = [
    "Counter",
    "EventHandle",
    "ExponentialLatency",
    "FixedLatency",
    "LatencyModel",
    "MessageRecord",
    "MetricsRegistry",
    "Network",
    "Node",
    "NoteRecord",
    "OfflineChannel",
    "PeriodicTimer",
    "Sample",
    "Scheduler",
    "ServerFaultInjector",
    "SimTrace",
    "Summary",
    "UniformLatency",
    "message_kind",
    "message_size",
    "summarize",
]
