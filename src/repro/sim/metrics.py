"""Lightweight metric aggregation for experiments.

The benchmark harness needs summary statistics (mean / percentiles / max)
over latencies and sizes collected from traces.  ``numpy`` is available but
deliberately not required here: sample counts are small and keeping the
kernel dependency-free makes the simulator embeddable anywhere.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable


@dataclass
class Summary:
    """Summary statistics of a sample."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    stddev: float

    def format(self, unit: str = "") -> str:
        suffix = f" {unit}" if unit else ""
        return (
            f"n={self.count} mean={self.mean:.3f}{suffix} "
            f"p50={self.p50:.3f}{suffix} p95={self.p95:.3f}{suffix} "
            f"max={self.maximum:.3f}{suffix}"
        )


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile on an already-sorted sample."""
    if not sorted_values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rank = max(1, math.ceil(fraction * len(sorted_values)))
    return sorted_values[rank - 1]


def summarize(values: Iterable[float]) -> Summary:
    """Compute a :class:`Summary`; raises ``ValueError`` on empty input."""
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("cannot summarize an empty sample")
    count = len(data)
    mean = sum(data) / count
    variance = sum((v - mean) ** 2 for v in data) / count
    return Summary(
        count=count,
        mean=mean,
        minimum=data[0],
        maximum=data[-1],
        p50=percentile(data, 0.50),
        p95=percentile(data, 0.95),
        stddev=math.sqrt(variance),
    )


@dataclass
class Counter:
    """A named monotonic counter."""

    name: str
    value: int = 0

    def increment(self, by: int = 1) -> None:
        if by < 0:
            raise ValueError("counters only go up")
        self.value += by


@dataclass
class Sample:
    """A named collection of observations."""

    name: str
    values: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    def summary(self) -> Summary:
        return summarize(self.values)


class MetricsRegistry:
    """Bag of counters and samples keyed by name."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._samples: dict[str, Sample] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def sample(self, name: str) -> Sample:
        if name not in self._samples:
            self._samples[name] = Sample(name)
        return self._samples[name]

    def counters(self) -> dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def summaries(self) -> dict[str, Summary]:
        return {
            name: s.summary()
            for name, s in sorted(self._samples.items())
            if s.values
        }
