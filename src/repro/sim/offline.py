"""The paper's offline client-to-client communication method.

Section 2: *"there is a reliable offline communication method between
clients, which eventually delivers messages, even if the clients are not
simultaneously connected"*.  FAUST (Section 6) sends PROBE, VERSION and
FAILURE messages over it.

We model a store-and-forward mailbox service (think: encrypted e-mail).
Each client is *online* or *offline*:

* a send is accepted at any time and assigned a transport delay;
* if the recipient is online when the message "arrives", it is delivered;
* otherwise it waits in the recipient's mailbox and is flushed the moment
  the recipient comes back online.

Delivery per (sender, recipient) pair preserves send order, and every
message is eventually delivered to a recipient that is online infinitely
often — exactly the eventual-delivery guarantee the paper needs for
detection completeness (Definition 5, condition 7).
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.common.errors import ChannelError
from repro.sim.network import FixedLatency, LatencyModel, message_kind, message_size
from repro.sim.process import Node
from repro.sim.scheduler import Scheduler
from repro.sim.trace import SimTrace

_FIFO_EPSILON = 1e-9


class OfflineChannel:
    """Mailbox-based eventual delivery between clients."""

    def __init__(
        self,
        scheduler: Scheduler,
        latency: LatencyModel | None = None,
        trace: SimTrace | None = None,
    ) -> None:
        self._scheduler = scheduler
        self._latency = latency or FixedLatency(5.0)
        self._trace = trace
        self._nodes: dict[str, Node] = {}
        self._online: dict[str, bool] = {}
        self._mailbox: dict[str, deque[tuple[str, Any]]] = {}
        self._last_arrival: dict[tuple[str, str], float] = {}

    # ------------------------------------------------------------------ #
    # Membership and connectivity
    # ------------------------------------------------------------------ #

    def register(self, node: Node, online: bool = True) -> None:
        if node.name in self._nodes:
            raise ChannelError(f"node {node.name!r} already on the offline channel")
        self._nodes[node.name] = node
        self._online[node.name] = online
        self._mailbox[node.name] = deque()

    def is_online(self, name: str) -> bool:
        self._require(name)
        return self._online[name]

    def set_online(self, name: str, online: bool) -> None:
        """Connect or disconnect a client; reconnection flushes its mailbox."""
        self._require(name)
        was_online = self._online[name]
        self._online[name] = online
        if online and not was_online:
            self._flush(name)

    def _require(self, name: str) -> None:
        if name not in self._nodes:
            raise ChannelError(f"unknown offline-channel member {name!r}")

    # ------------------------------------------------------------------ #
    # Transmission
    # ------------------------------------------------------------------ #

    def send(self, src: str, dst: str, message: Any) -> None:
        """Accept a message for eventual delivery (sender may be anyone

        registered, online or not: posting to the mailbox service models
        e.g. queuing e-mail locally while disconnected).
        """
        self._require(src)
        self._require(dst)
        now = self._scheduler.now
        key = (src, dst)
        arrival = now + self._latency.sample(self._scheduler.rng)
        arrival = max(arrival, self._last_arrival.get(key, -1.0) + _FIFO_EPSILON)
        self._last_arrival[key] = arrival
        if self._trace is not None:
            self._trace.record_message(
                sent_at=now,
                delivered_at=None,  # actual delivery recorded at hand-off
                src=src,
                dst=dst,
                kind="offline:" + message_kind(message),
                size=message_size(message),
            )
        self._scheduler.schedule_at(arrival, self._arrive, src, dst, message)

    def _arrive(self, src: str, dst: str, message: Any) -> None:
        """The message reached the mailbox service near ``dst``."""
        self._mailbox[dst].append((src, message))
        if self._online[dst]:
            self._flush(dst)

    def _flush(self, dst: str) -> None:
        box = self._mailbox[dst]
        node = self._nodes[dst]
        while box:
            src, message = box.popleft()
            if self._trace is not None:
                self._trace.record_message(
                    sent_at=self._scheduler.now,
                    delivered_at=self._scheduler.now,
                    src="mailbox",
                    dst=dst,
                    kind="offline-delivery:" + message_kind(message),
                    size=0,
                )
            node.deliver(src, message)

    # ------------------------------------------------------------------ #
    # Introspection (used by tests)
    # ------------------------------------------------------------------ #

    def mailbox_depth(self, name: str) -> int:
        self._require(name)
        return len(self._mailbox[name])
