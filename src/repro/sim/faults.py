"""Scheduled server faults: crash-stop, crash-recovery, outage windows.

The paper's fault model gives the server two modes only — correct or
Byzantine — and clients crash-stop.  The storage-engine work adds the
missing production mode: a server that *crashes and recovers from disk*.
This module schedules those faults as first-class simulation events, so a
scenario can declare "the server is down over [t, t+d)" and the rest of
the deployment observes exactly what real clients would: requests held by
their reliable channels, then served after recovery.

Recovery semantics live elsewhere by design: *what* the server comes back
with is its :class:`~repro.store.engine.StorageEngine`'s recovery (see
``UstorServer.on_restart``), and *deliberately wrong* recovery is the
rollback adversary (:class:`~repro.ustor.byzantine.RollbackServer`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.process import Node
    from repro.sim.scheduler import Scheduler
    from repro.sim.trace import SimTrace


class ServerFaultInjector:
    """Schedules crash/restart events against one server process."""

    def __init__(
        self,
        scheduler: "Scheduler",
        server: "Node",
        trace: "SimTrace | None" = None,
    ) -> None:
        self._scheduler = scheduler
        self._server = server
        self._trace = trace

    def crash_at(self, time: float) -> None:
        """Crash the server at absolute virtual ``time``."""
        self._scheduler.schedule_at(time, self._crash)

    def restart_at(self, time: float) -> None:
        """Restart (recover) the server at absolute virtual ``time``."""
        self._scheduler.schedule_at(time, self._restart)

    def outage(self, start: float, duration: float) -> None:
        """One crash-recovery window: down over ``[start, start+duration)``."""
        if duration <= 0:
            raise SimulationError("outage windows need positive duration")
        self.crash_at(start)
        self.restart_at(start + duration)

    # ---------------------------------------------------------------- #

    def _crash(self) -> None:
        self._server.crash()
        if self._trace is not None:
            self._trace.note(self._scheduler.now, self._server.name, "server-crash")

    def _restart(self) -> None:
        self._server.restart()
        if self._trace is not None:
            self._trace.note(
                self._scheduler.now, self._server.name, "server-restart"
            )
