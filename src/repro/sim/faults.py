"""Scheduled server faults: crash-stop, crash-recovery, outage windows.

The paper's fault model gives the server two modes only — correct or
Byzantine — and clients crash-stop.  The storage-engine work adds the
missing production mode: a server that *crashes and recovers from disk*.
This module schedules those faults as first-class simulation events, so a
scenario can declare "the server is down over [t, t+d)" and the rest of
the deployment observes exactly what real clients would: requests held by
their reliable channels, then served after recovery.

Recovery semantics live elsewhere by design: *what* the server comes back
with is its :class:`~repro.store.engine.StorageEngine`'s recovery (see
``UstorServer.on_restart``), and *deliberately wrong* recovery is the
rollback adversary (:class:`~repro.ustor.byzantine.RollbackServer`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.process import Node
    from repro.sim.scheduler import Scheduler
    from repro.sim.trace import SimTrace


class ServerFaultInjector:
    """Schedules crash/restart events against one server process."""

    def __init__(
        self,
        scheduler: "Scheduler",
        server: "Node",
        trace: "SimTrace | None" = None,
    ) -> None:
        self._scheduler = scheduler
        self._server = server
        self._trace = trace

    def crash_at(self, time: float) -> None:
        """Crash the server at absolute virtual ``time``."""
        self._scheduler.schedule_at(time, self._crash)

    def restart_at(self, time: float) -> None:
        """Restart (recover) the server at absolute virtual ``time``."""
        self._scheduler.schedule_at(time, self._restart)

    def outage(self, start: float, duration: float) -> None:
        """One crash-recovery window: down over ``[start, start+duration)``."""
        if duration <= 0:
            raise SimulationError("outage windows need positive duration")
        self.crash_at(start)
        self.restart_at(start + duration)

    # ---------------------------------------------------------------- #

    def _crash(self) -> None:
        self._server.crash()
        if self._trace is not None:
            self._trace.note(self._scheduler.now, self._server.name, "server-crash")

    def _restart(self) -> None:
        self._server.restart()
        if self._trace is not None:
            self._trace.note(
                self._scheduler.now, self._server.name, "server-restart"
            )


class MultiServerFaultInjector:
    """Targets faults at individual servers of a multi-server topology.

    The cluster layer multiplies the fault axis by a shard dimension: an
    outage (or any crash/restart) can hit one shard's server while the
    rest of the deployment keeps serving.  This is a thin index over one
    :class:`ServerFaultInjector` per server, sharing one scheduler so all
    faults land in the same virtual time.
    """

    def __init__(
        self,
        scheduler: "Scheduler",
        servers: list["Node"],
        traces: "list[SimTrace | None] | None" = None,
    ) -> None:
        if traces is None:
            traces = [None] * len(servers)
        if len(traces) != len(servers):
            raise SimulationError("need one trace (or None) per server")
        self._injectors = [
            ServerFaultInjector(scheduler, server, trace)
            for server, trace in zip(servers, traces)
        ]

    def __len__(self) -> int:
        return len(self._injectors)

    def injector(self, index: int) -> ServerFaultInjector:
        if not 0 <= index < len(self._injectors):
            raise SimulationError(
                f"server index {index} out of range for "
                f"{len(self._injectors)} servers"
            )
        return self._injectors[index]

    def crash_at(self, index: int, time: float) -> None:
        self.injector(index).crash_at(time)

    def restart_at(self, index: int, time: float) -> None:
        self.injector(index).restart_at(time)

    def outage(self, index: int, start: float, duration: float) -> None:
        self.injector(index).outage(start, duration)

    def outage_all(self, start: float, duration: float) -> None:
        """The correlated failure: every server down over the window."""
        for injector in self._injectors:
            injector.outage(start, duration)
