"""Scheduled server faults: crash-stop, crash-recovery, outage windows.

The paper's fault model gives the server two modes only — correct or
Byzantine — and clients crash-stop.  The storage-engine work adds the
missing production mode: a server that *crashes and recovers from disk*.
This module schedules those faults as first-class simulation events, so a
scenario can declare "the server is down over [t, t+d)" and the rest of
the deployment observes exactly what real clients would: requests held by
their reliable channels, then served after recovery.

Recovery semantics live elsewhere by design: *what* the server comes back
with is its :class:`~repro.store.engine.StorageEngine`'s recovery (see
``UstorServer.on_restart``), and *deliberately wrong* recovery is the
rollback adversary (:class:`~repro.ustor.byzantine.RollbackServer`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.process import Node
    from repro.sim.scheduler import Scheduler
    from repro.sim.trace import SimTrace


class ServerFaultInjector:
    """Schedules crash/restart events against one server process."""

    def __init__(
        self,
        scheduler: "Scheduler",
        server: "Node",
        trace: "SimTrace | None" = None,
    ) -> None:
        self._scheduler = scheduler
        self._server = server
        self._trace = trace

    def crash_at(self, time: float) -> None:
        """Crash the server at absolute virtual ``time``."""
        self._scheduler.schedule_at(time, self._crash)

    def restart_at(self, time: float) -> None:
        """Restart (recover) the server at absolute virtual ``time``."""
        self._scheduler.schedule_at(time, self._restart)

    def outage(self, start: float, duration: float) -> None:
        """One crash-recovery window: down over ``[start, start+duration)``."""
        if duration <= 0:
            raise SimulationError("outage windows need positive duration")
        self.crash_at(start)
        self.restart_at(start + duration)

    # ---------------------------------------------------------------- #

    def _crash(self) -> None:
        self._server.crash()
        if self._trace is not None:
            self._trace.note(self._scheduler.now, self._server.name, "server-crash")

    def _restart(self) -> None:
        self._server.restart()
        if self._trace is not None:
            self._trace.note(
                self._scheduler.now, self._server.name, "server-restart"
            )


#: Client fault kinds understood by :meth:`ClientFaultInjector.parse_spec`.
CLIENT_FAULT_KINDS = ("crash-forever", "crash-restart", "lease-expiry")


@dataclass(frozen=True)
class ClientFault:
    """One scheduled client fault (see :class:`ClientFaultInjector`)."""

    kind: str
    client: int
    start: float
    duration: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in CLIENT_FAULT_KINDS:
            raise SimulationError(
                f"unknown client fault kind {self.kind!r}; expected one of "
                f"{', '.join(CLIENT_FAULT_KINDS)}"
            )
        if self.start < 0:
            raise SimulationError("client faults need a non-negative start")
        if self.kind == "crash-forever":
            if self.duration is not None:
                raise SimulationError(
                    "crash-forever has no duration (the client never returns)"
                )
        elif self.duration is None or self.duration <= 0:
            raise SimulationError(
                f"{self.kind} needs a positive duration (kind:client@start"
                f"+duration)"
            )


class ClientFaultInjector:
    """Schedules client-lifecycle faults against a fail-aware fleet.

    Three fault kinds, mirroring the membership layer's test matrix:

    * ``crash-forever`` — the client crash-stops and never returns; the
      membership quorum must evict it for the checkpoint chain to
      resume.
    * ``crash-restart`` — crash at ``start``, restart with recovered
      state ``duration`` later (timers keep re-arming through a crash,
      so the client resumes by itself); typically back inside the lease
      window, so no eviction should occur.
    * ``lease-expiry`` — the client pauses and its offline mailbox
      defers (as in a long GC pause or partition) for ``duration``, long
      enough to be evicted, then returns and must rejoin via a fresh
      epoch — never producing a false ``fail``.

    Specs parse from ``kind:client@start[+duration]`` strings, e.g.
    ``crash-forever:1@200``, ``crash-restart:2@100+300``,
    ``lease-expiry:0@150+400`` (the ``repro scale --client-faults``
    syntax).
    """

    def __init__(
        self,
        scheduler: "Scheduler",
        clients: list,
        offline=None,
        trace: "SimTrace | None" = None,
    ) -> None:
        self._scheduler = scheduler
        self._clients = clients
        self._offline = offline
        self._trace = trace
        self.faults: list[ClientFault] = []

    @staticmethod
    def parse_spec(spec: str) -> ClientFault:
        """Parse one ``kind:client@start[+duration]`` fault spec."""
        try:
            kind, rest = spec.split(":", 1)
            target, timing = rest.split("@", 1)
            if "+" in timing:
                start_text, duration_text = timing.split("+", 1)
                duration: float | None = float(duration_text)
            else:
                start_text, duration = timing, None
            return ClientFault(
                kind=kind.strip(),
                client=int(target),
                start=float(start_text),
                duration=duration,
            )
        except (ValueError, IndexError) as exc:
            raise SimulationError(
                f"malformed client fault spec {spec!r}: expected "
                f"kind:client@start[+duration], e.g. crash-forever:1@200 "
                f"or lease-expiry:0@150+400"
            ) from exc

    def schedule(self, fault: ClientFault) -> None:
        """Schedule one fault's events in virtual time."""
        if not 0 <= fault.client < len(self._clients):
            raise SimulationError(
                f"client fault names client {fault.client} but the fleet "
                f"has {len(self._clients)} client(s)"
            )
        self.faults.append(fault)
        client = self._clients[fault.client]
        if fault.kind == "crash-forever":
            self._scheduler.schedule_at(fault.start, self._crash, client)
        elif fault.kind == "crash-restart":
            self._scheduler.schedule_at(fault.start, self._crash, client)
            self._scheduler.schedule_at(
                fault.start + fault.duration, self._restart, client
            )
        else:  # lease-expiry
            self._scheduler.schedule_at(fault.start, self._go_away, client)
            self._scheduler.schedule_at(
                fault.start + fault.duration, self._come_back, client
            )

    def schedule_specs(self, specs: list[str]) -> None:
        """Parse and schedule a list of fault specs."""
        for spec in specs:
            self.schedule(self.parse_spec(spec))

    # ---------------------------------------------------------------- #

    def _note(self, client, label: str) -> None:
        if self._trace is not None:
            self._trace.note(self._scheduler.now, client.name, label)

    def _crash(self, client) -> None:
        if getattr(client, "faust_failed", False) or client.crashed:
            return
        client.crash()
        self._note(client, "client-crash")

    def _restart(self, client) -> None:
        if getattr(client, "faust_failed", False) or not client.crashed:
            return
        client.restart()
        self._note(client, "client-restart")

    def _go_away(self, client) -> None:
        if getattr(client, "faust_failed", False) or client.crashed:
            return
        client.pause()
        if self._offline is not None:
            self._offline.set_online(client.name, False)
        self._note(client, "client-away")

    def _come_back(self, client) -> None:
        if getattr(client, "faust_failed", False) or client.crashed:
            return
        if self._offline is not None:
            self._offline.set_online(client.name, True)
        client.resume()
        self._note(client, "client-return")


class MultiServerFaultInjector:
    """Targets faults at individual servers of a multi-server topology.

    The cluster layer multiplies the fault axis by a shard dimension: an
    outage (or any crash/restart) can hit one shard's server while the
    rest of the deployment keeps serving.  This is a thin index over one
    :class:`ServerFaultInjector` per server, sharing one scheduler so all
    faults land in the same virtual time.
    """

    def __init__(
        self,
        scheduler: "Scheduler",
        servers: list["Node"],
        traces: "list[SimTrace | None] | None" = None,
    ) -> None:
        if traces is None:
            traces = [None] * len(servers)
        if len(traces) != len(servers):
            raise SimulationError("need one trace (or None) per server")
        self._injectors = [
            ServerFaultInjector(scheduler, server, trace)
            for server, trace in zip(servers, traces)
        ]

    def __len__(self) -> int:
        return len(self._injectors)

    def injector(self, index: int) -> ServerFaultInjector:
        if not 0 <= index < len(self._injectors):
            raise SimulationError(
                f"server index {index} out of range for "
                f"{len(self._injectors)} servers"
            )
        return self._injectors[index]

    def crash_at(self, index: int, time: float) -> None:
        self.injector(index).crash_at(time)

    def restart_at(self, index: int, time: float) -> None:
        self.injector(index).restart_at(time)

    def outage(self, index: int, start: float, duration: float) -> None:
        self.injector(index).outage(start, duration)

    def outage_all(self, start: float, duration: float) -> None:
        """The correlated failure: every server down over the window."""
        for injector in self._injectors:
            injector.outage(start, duration)
