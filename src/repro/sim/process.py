"""Process abstraction: anything that lives on the simulated network.

A :class:`Node` is a named message handler bound to a scheduler and one or
more channels.  Clients, servers (correct and Byzantine) and test stubs all
derive from it.  Crashing is modelled here because the paper allows *any
number of clients* to crash (Section 2): a crashed node silently stops
receiving and sending, and its pending timers become inert.

Crash-*recovery* is modelled here too (the storage-engine work extends
the fault model beyond the paper's crash-stop): a node whose class sets
``holds_mail_while_down`` keeps messages delivered during its downtime
and replays them, in arrival order, when :meth:`Node.restart` brings it
back — the reliable FIFO channels of the model outliving one endpoint's
restart, exactly as clients that retry against a recovering server would
observe.  What *state* the node comes back with is the subclass's
business (:meth:`Node.on_restart`); for the USTOR server that is its
:class:`~repro.store.engine.StorageEngine`'s recovery.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.common.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.network import Network
    from repro.sim.scheduler import Scheduler


class Node:
    """Base class for every simulated party."""

    #: When True, messages delivered while this node is down are held and
    #: replayed by :meth:`restart`; when False (crash-stop, the default)
    #: they are dropped.
    holds_mail_while_down = False

    def __init__(self, name: str) -> None:
        self.name = name
        self._scheduler: "Scheduler | None" = None
        self._network: "Network | None" = None
        self._crashed = False
        self._held_mail: list[tuple[str, Any]] = []

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #

    def bind(self, scheduler: "Scheduler", network: "Network") -> None:
        """Attach this node to a run; called by :meth:`Network.register`."""
        self._scheduler = scheduler
        self._network = network

    @property
    def scheduler(self) -> "Scheduler":
        if self._scheduler is None:
            raise SimulationError(f"node {self.name!r} is not bound to a scheduler")
        return self._scheduler

    @property
    def network(self) -> "Network":
        if self._network is None:
            raise SimulationError(f"node {self.name!r} is not bound to a network")
        return self._network

    @property
    def now(self) -> float:
        return self.scheduler.now

    # ------------------------------------------------------------------ #
    # Failure model
    # ------------------------------------------------------------------ #

    @property
    def crashed(self) -> bool:
        return self._crashed

    def crash(self) -> None:
        """Crash-stop this node: no further sends, receives, or timer work."""
        self._crashed = True

    def restart(self) -> None:
        """Return from a crash (crash-*recovery*, not the paper's crash-stop).

        Runs :meth:`on_restart` first — the subclass's chance to restore
        durable state — then replays any mail held during the downtime, in
        arrival order.  A no-op on a node that is not down.
        """
        if not self._crashed:
            return
        self._crashed = False
        self.on_restart()
        held, self._held_mail = self._held_mail, []
        for src, message in held:
            if self._crashed:  # a replayed message may crash us again
                self._held_mail.append((src, message))
                continue
            self.on_message(src, message)

    def on_restart(self) -> None:
        """Hook: restore state from durable storage before mail replays."""

    # ------------------------------------------------------------------ #
    # Messaging
    # ------------------------------------------------------------------ #

    def send(self, dst: str, message: Any) -> None:
        """Send over the network; silently dropped if this node has crashed.

        (A crashed process takes no further steps, so the drop is the
        simulation guarding itself against buggy callers, not a channel
        fault: the paper's channels are reliable.)
        """
        if self._crashed:
            return
        self.network.send(self.name, dst, message)

    def send_multi(self, dsts: tuple, message: Any) -> None:
        """Send one message to several destinations (replica broadcast).

        Uses the transport's ``send_multi`` when it has one (the simulated
        network shares a single latency sample across the group); falls
        back to per-destination sends on transports without the hook.
        """
        if self._crashed:
            return
        fanout = getattr(self.network, "send_multi", None)
        if fanout is not None:
            fanout(self.name, tuple(dsts), message)
            return
        for dst in dsts:
            self.network.send(self.name, dst, message)

    def deliver(self, src: str, message: Any) -> None:
        """Entry point used by channels; filters deliveries after a crash."""
        if self._crashed:
            if self.holds_mail_while_down:
                self._held_mail.append((src, message))
            return
        self.on_message(src, message)

    def on_message(self, src: str, message: Any) -> None:
        """Handle one delivered message.  Subclasses override."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "crashed" if self._crashed else "up"
        return f"<{type(self).__name__} {self.name} ({state})>"
