"""Process abstraction: anything that lives on the simulated network.

A :class:`Node` is a named message handler bound to a scheduler and one or
more channels.  Clients, servers (correct and Byzantine) and test stubs all
derive from it.  Crashing is modelled here because the paper allows *any
number of clients* to crash (Section 2): a crashed node silently stops
receiving and sending, and its pending timers become inert.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.common.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.network import Network
    from repro.sim.scheduler import Scheduler


class Node:
    """Base class for every simulated party."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._scheduler: "Scheduler | None" = None
        self._network: "Network | None" = None
        self._crashed = False

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #

    def bind(self, scheduler: "Scheduler", network: "Network") -> None:
        """Attach this node to a run; called by :meth:`Network.register`."""
        self._scheduler = scheduler
        self._network = network

    @property
    def scheduler(self) -> "Scheduler":
        if self._scheduler is None:
            raise SimulationError(f"node {self.name!r} is not bound to a scheduler")
        return self._scheduler

    @property
    def network(self) -> "Network":
        if self._network is None:
            raise SimulationError(f"node {self.name!r} is not bound to a network")
        return self._network

    @property
    def now(self) -> float:
        return self.scheduler.now

    # ------------------------------------------------------------------ #
    # Failure model
    # ------------------------------------------------------------------ #

    @property
    def crashed(self) -> bool:
        return self._crashed

    def crash(self) -> None:
        """Crash-stop this node: no further sends, receives, or timer work."""
        self._crashed = True

    # ------------------------------------------------------------------ #
    # Messaging
    # ------------------------------------------------------------------ #

    def send(self, dst: str, message: Any) -> None:
        """Send over the network; silently dropped if this node has crashed.

        (A crashed process takes no further steps, so the drop is the
        simulation guarding itself against buggy callers, not a channel
        fault: the paper's channels are reliable.)
        """
        if self._crashed:
            return
        self.network.send(self.name, dst, message)

    def deliver(self, src: str, message: Any) -> None:
        """Entry point used by channels; filters deliveries after a crash."""
        if self._crashed:
            return
        self.on_message(src, message)

    def on_message(self, src: str, message: Any) -> None:
        """Handle one delivered message.  Subclasses override."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "crashed" if self._crashed else "up"
        return f"<{type(self).__name__} {self.name} ({state})>"
