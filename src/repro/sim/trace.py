"""Recording of everything observable about a simulation run.

Two kinds of records are kept:

* :class:`MessageRecord` — one per message handed to a channel, with send
  and delivery times plus the wire size reported by the message object.
  The experiment harness derives the paper's communication-complexity
  numbers (E3, E4) from these.
* :class:`NoteRecord` — timestamped protocol-level events: operation
  invocations/responses, ``stable_i`` and ``fail_i`` notifications, crash
  injections.  The consistency checkers and the stability/detection latency
  experiments (E8, E9) consume these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class MessageRecord:
    """One message as seen by a channel."""

    sent_at: float
    delivered_at: float | None  # None while in flight / dropped at a crash
    src: str
    dst: str
    kind: str
    size: int


@dataclass(frozen=True)
class NoteRecord:
    """One protocol-level event (notification, crash, detection...)."""

    time: float
    source: str
    kind: str
    payload: Any = None


@dataclass
class SimTrace:
    """Append-only log of a run; cheap to filter and aggregate."""

    messages: list[MessageRecord] = field(default_factory=list)
    notes: list[NoteRecord] = field(default_factory=list)

    def record_message(
        self,
        sent_at: float,
        delivered_at: float | None,
        src: str,
        dst: str,
        kind: str,
        size: int,
    ) -> None:
        self.messages.append(
            MessageRecord(
                sent_at=sent_at,
                delivered_at=delivered_at,
                src=src,
                dst=dst,
                kind=kind,
                size=size,
            )
        )

    def note(self, time: float, source: str, kind: str, payload: Any = None) -> None:
        self.notes.append(NoteRecord(time=time, source=source, kind=kind, payload=payload))

    # ------------------------------------------------------------------ #
    # Aggregation helpers used by metrics and the experiment harness.
    # ------------------------------------------------------------------ #

    def messages_of_kind(self, kind: str) -> Iterator[MessageRecord]:
        return (m for m in self.messages if m.kind == kind)

    def message_count(self, kind: str | None = None) -> int:
        if kind is None:
            return len(self.messages)
        return sum(1 for _ in self.messages_of_kind(kind))

    def total_bytes(self, kind: str | None = None) -> int:
        if kind is None:
            return sum(m.size for m in self.messages)
        return sum(m.size for m in self.messages_of_kind(kind))

    def notes_of_kind(self, kind: str) -> list[NoteRecord]:
        return [n for n in self.notes if n.kind == kind]

    def first_note(self, kind: str, source: str | None = None) -> NoteRecord | None:
        for n in self.notes:
            if n.kind == kind and (source is None or n.source == source):
                return n
        return None
