"""Deterministic discrete-event scheduler.

Everything in this reproduction — protocol runs, Byzantine attacks,
benchmarks — executes on this single-threaded event loop.  Determinism is a
design requirement (DESIGN.md §5): given the same seed and the same call
sequence, two runs produce byte-identical traces, which the test suite and
the experiment harness rely on.

Events scheduled for the same simulated time fire in scheduling order
(stable tie-break by a monotonically increasing sequence number), so the
asynchronous-network semantics of the paper's model are explored
reproducibly rather than via wall-clock races.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.errors import SimulationError


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    fn: Callable[..., None] = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Cancellation handle returned by :meth:`Scheduler.schedule`."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent; no-op if already fired)."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class Scheduler:
    """A seeded discrete-event loop with virtual time.

    >>> sched = Scheduler(seed=7)
    >>> fired = []
    >>> _ = sched.schedule(2.0, fired.append, "b")
    >>> _ = sched.schedule(1.0, fired.append, "a")
    >>> sched.run()
    2
    >>> fired
    ['a', 'b']
    """

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: list[_ScheduledEvent] = []
        self._rng = random.Random(seed)
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def rng(self) -> random.Random:
        """The run's single source of randomness (latency sampling etc.)."""
        return self._rng

    @property
    def pending(self) -> int:
        """Number of scheduled-and-not-yet-fired (or cancelled) events."""
        return sum(1 for e in self._queue if not e.cancelled)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at an absolute virtual time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} which is before now={self._now}"
            )
        event = _ScheduledEvent(time=time, seq=self._seq, fn=fn, args=args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def step(self) -> bool:
        """Fire the next event; return False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run events until the queue drains, ``until`` passes, or the budget ends.

        Returns the number of events fired by this call.  ``until`` is an
        inclusive virtual-time bound: events at exactly ``until`` still fire.
        """
        fired = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                break
            if max_events is not None and fired >= max_events:
                break
            self.step()
            fired += 1
        if until is not None and (max_events is None or fired < max_events):
            # "Run until T" leaves the clock at T even if the queue drained
            # early, so subsequent relative scheduling anchors at T.
            self._now = max(self._now, until)
        return fired

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float | None = None,
        max_events: int = 10_000_000,
    ) -> bool:
        """Run until ``predicate()`` holds; return whether it ever did.

        ``timeout`` bounds virtual time; ``max_events`` guards against
        non-terminating protocols (a genuine possibility when simulating
        blocking baselines — see E5).
        """
        deadline = None if timeout is None else self._now + timeout
        fired = 0
        if predicate():
            return True
        while self._queue and fired < max_events:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if deadline is not None and head.time > deadline:
                self._now = max(self._now, deadline)
                return predicate()
            self.step()
            fired += 1
            if predicate():
                return True
        return predicate()
