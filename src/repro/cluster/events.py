"""Shard-tagged notifications for cluster deployments.

A cluster multiplies every fail-aware output by a shard dimension: a
failure notification now answers *which server* misbehaved, a stability
notification *which partition* the cut covers.  The events subclass the
single-server ones, so any subscriber filtering on
:class:`~repro.api.events.StabilityNotification` /
:class:`~repro.api.events.FailureNotification` keeps working unchanged —
cluster-aware consumers read the extra ``shard`` field.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.events import (
    FailureNotification,
    NotificationHub,
    StabilityNotification,
)
from repro.common.types import ClientId


@dataclass(frozen=True)
class ShardStabilityNotification(StabilityNotification):
    """``stable_i(W)`` emitted by client ``i``'s instance on one shard;
    ``cut`` is that shard's stability vector."""

    shard: int


@dataclass(frozen=True)
class ShardFailureNotification(FailureNotification):
    """``fail_i`` raised by client ``i``'s instance on one shard — proof
    that *this shard's server* misbehaved.  Other shards are independent
    trust domains and remain usable."""

    shard: int


class ClusterNotificationHub(NotificationHub):
    """A :class:`NotificationHub` whose emissions carry the shard axis.

    Only user-level interactions wire emissions: a client is notified
    about exactly the shards it touched (see ``ClusterSystem.touch``), so
    ``failure_events()`` answers the per-shard audit question — *who
    depended on the misbehaving server?* — not merely *who detected it*.
    """

    def emit_shard_stability(
        self, time: float, client: ClientId, cut: tuple[int, ...], shard: int
    ) -> None:
        """Record and fan out a ``stable_i(W)`` tagged with its shard."""
        self._emit(
            ShardStabilityNotification(
                seq=self._next_seq_value(),
                time=time,
                client=client,
                cut=cut,
                shard=shard,
            )
        )

    def emit_shard_failure(
        self, time: float, client: ClientId, reason: str, shard: int
    ) -> None:
        """Record and fan out a ``fail_i`` naming the misbehaving shard."""
        self._emit(
            ShardFailureNotification(
                seq=self._next_seq_value(),
                time=time,
                client=client,
                reason=reason,
                shard=shard,
            )
        )

    def failed_shards(self) -> set[int]:
        """Shards with at least one failure notification."""
        return {
            e.shard
            for e in self.history
            if isinstance(e, ShardFailureNotification)
        }

    def clients_notified_of(self, shard: int) -> set[ClientId]:
        """Clients that raised a failure notification about ``shard``."""
        return {
            e.client
            for e in self.history
            if isinstance(e, ShardFailureNotification) and e.shard == shard
        }
