"""Opening a sharded deployment from a :class:`SystemConfig`.

The cluster backend interprets the shard-axis knobs — ``shards``,
``shard_map``, ``shard_protocol``, ``shard_server_factories``,
``shard_outages`` — and the replica-axis knobs — ``replicas``,
``quorum``, ``counter``, ``replica_server_factories``
(:mod:`repro.replica`) — and assembles one deployment per shard over a
shared scheduler.  Everything else (latency models, storage engine,
FAUST tuning, seeds) applies uniformly to every shard, so a config that
ran on the ``faust`` backend runs on ``cluster`` by adding ``shards=N``
(and ``replicas=K`` for rollback-resistant shards).
"""

from __future__ import annotations

import hashlib

from repro.api.config import SystemConfig, validate_outage_windows
from repro.cluster.shardmap import make_shard_map
from repro.cluster.system import ClusterSystem
from repro.common.errors import ConfigurationError
from repro.sim.scheduler import Scheduler
from repro.workloads.runner import SystemBuilder


def derive_shard_seed(seed: int, shard: int) -> int:
    """A stable per-shard sub-seed for shard-local RNG streams.

    Hash-derived (not ``seed + shard``) so that neighbouring seeds and
    neighbouring shards never collide: seed 0 / shard 1 must not draw
    the stream of seed 1 / shard 0.
    """
    digest = hashlib.sha256(f"{seed}/{shard}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big")


def open_cluster_system(config: SystemConfig, backend_name: str, capabilities):
    """Build a :class:`ClusterSystem` described by ``config``."""
    if config.checkpoint is not None and config.shard_protocol != "faust":
        raise ConfigurationError(
            "checkpoint= needs fail-aware shards to co-sign the stable "
            "cut: it requires shard_protocol='faust'"
        )
    if config.membership is not None and config.shard_protocol != "faust":
        raise ConfigurationError(
            "membership= needs fail-aware shards to co-sign epoch "
            "changes: it requires shard_protocol='faust'"
        )
    if config.shards > config.num_clients:
        raise ConfigurationError(
            f"{config.shards} shards over {config.num_clients} registers "
            f"would leave shards owning nothing (the register space is one "
            f"register per client)"
        )
    shard_map = make_shard_map(
        config.shard_map, config.shards, config.num_clients
    )
    per_shard_outages = _outage_plan(config)

    scheduler = Scheduler(seed=config.seed)
    shards = []
    for shard in range(config.shards):
        factory = config.shard_server_factories.get(
            shard, config.server_factory
        )
        builder = SystemBuilder(
            num_clients=config.num_clients,
            seed=config.seed,
            scheme=config.scheme,
            latency=config.latency,
            offline_latency=config.offline_latency,
            server_factory=factory,
            commit_piggyback=config.commit_piggyback,
            server_name=f"S{shard}",
            storage=config.storage,
            scheduler=scheduler,
            batching=config.batching,
            # Per-shard latency stream: with one shared stream, shard k's
            # draws depended on every other shard's message *count* — and
            # identically-configured shards drew correlated samples.  A
            # single-shard cluster keeps the shared stream (byte-identical
            # to the single-server backends).
            latency_seed=(
                derive_shard_seed(config.seed, shard)
                if config.shards > 1
                else None
            ),
            replicas=config.replicas,
            quorum=config.quorum,
            counter=config.counter,
            replica_server_factories=config.replica_server_factories,
        )
        if config.shard_protocol == "faust":
            raw = builder.build_faust(
                checkpoint=config.checkpoint,
                membership=config.membership,
                **config.faust.as_kwargs(),
            )
        else:
            raw = builder.build()
        shards.append(raw)

    system = ClusterSystem(
        shards=shards,
        shard_map=shard_map,
        scheduler=scheduler,
        backend_name=backend_name,
        capabilities=capabilities,
        default_timeout=config.default_timeout,
        shard_protocol=config.shard_protocol,
    )
    for shard, windows in per_shard_outages.items():
        for start, duration in windows:
            system.shard_outage(shard, start, duration)
    return system


def _outage_plan(config: SystemConfig) -> dict[int, list[tuple[float, float]]]:
    """Merge whole-cluster windows with shard-targeted ones, per shard.

    Sorted so a restart scheduled exactly where the next crash starts is
    enqueued (and fires) first; overlaps are rejected per shard — the
    same contract the single-server backends enforce.
    """
    plan: dict[int, list[tuple[float, float]]] = {
        shard: list(config.server_outages) for shard in range(config.shards)
    }
    for shard, start, duration in config.shard_outages:
        plan[shard].append((start, duration))
    for shard, windows in plan.items():
        try:
            validate_outage_windows(tuple(windows))
        except ConfigurationError as exc:
            raise ConfigurationError(f"shard {shard}: {exc}") from None
        windows.sort()
    return plan
