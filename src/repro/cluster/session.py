"""The client-side shard router: one session over many servers.

A :class:`ClusterSession` presents exactly the single-server
:class:`~repro.api.session.Session` surface — future-returning ``write``
/``read``, blocking ``*_sync`` forms, ``barrier()``, the fail-aware
stability calls — while routing every operation to the shard owning its
register.  Under the hood it keeps one real per-shard ``Session`` per
shard it has touched, so all handle semantics (settling order, timeout
and failure behaviour) are literally the single-server ones.

Two deliberate semantic choices:

* **Per-shard failure isolation.**  A ``fail_i`` on one shard is proof
  that *that shard's server* misbehaved; other shards are independent
  trust domains.  Operations routed to healthy shards keep completing
  after a detection — only the failed shard's handles are rejected.
  ``failed`` reports whether *any* touched shard failed;
  ``failed_shards`` names them.
* **Home-shard stability.**  All of a client's writes live on the shard
  owning its own register (the *home shard*), so ``wait_for_stability``
  and ``stability_cut`` are home-shard questions; per-partition cuts for
  every touched shard are available via :meth:`stability_cuts`.
"""

from __future__ import annotations

from repro.api.errors import OperationTimeout
from repro.api.handles import OpHandle
from repro.api.session import Session
from repro.common.types import Bottom, RegisterId, Value


class ClusterSession:
    """Operations of one client against a sharded deployment."""

    def __init__(self, cluster, client_id: int, timeout: float | None = None) -> None:
        self._cluster = cluster
        self._client_id = client_id
        if timeout is None:
            timeout = cluster.default_timeout
        self._timeout = timeout
        #: Real per-shard sessions, created on first touch.
        self._shard_sessions: dict[int, Session] = {}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def client(self):
        """The cluster-level client proxy."""
        return self._cluster.clients[self._client_id]

    @property
    def client_id(self) -> int:
        """The bound client's id."""
        return self._client_id

    @property
    def system(self):
        """The cluster deployment this session operates against."""
        return self._cluster

    @property
    def timeout(self) -> float:
        """Default time budget (virtual time units) for blocking calls."""
        return self._timeout

    @property
    def home_shard(self) -> int:
        """The shard owning this client's own register."""
        return self._cluster.shard_of(self._client_id)

    @property
    def touched_shards(self) -> tuple[int, ...]:
        """Shards this session has routed at least one operation to."""
        return tuple(sorted(self._shard_sessions))

    @property
    def failed(self) -> bool:
        """Has any touched shard's instance output ``fail``?"""
        return any(s.failed for s in self._shard_sessions.values())

    @property
    def failed_shards(self) -> tuple[int, ...]:
        """Touched shards whose server was caught misbehaving."""
        return tuple(
            sorted(k for k, s in self._shard_sessions.items() if s.failed)
        )

    @property
    def outstanding(self) -> int:
        """Operations issued through this session and not yet settled."""
        return sum(s.outstanding for s in self._shard_sessions.values())

    def shard_session(self, shard: int) -> Session:
        """The per-shard session for ``shard`` (created and wired on first
        use; creating it counts as touching the shard)."""
        session = self._shard_sessions.get(shard)
        if session is None:
            self._cluster.check_shard(shard)
            session = Session(
                self._cluster.shards[shard], self._client_id, timeout=self._timeout
            )
            self._shard_sessions[shard] = session
            self._cluster.touch(self._client_id, shard)
        return session

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #

    def write(self, value: Value) -> OpHandle:
        """Write the client's own register (routed to the home shard)."""
        return self.shard_session(self.home_shard).write(value)

    def read(self, register: RegisterId) -> OpHandle:
        """Read any register (routed to the shard owning it)."""
        return self.shard_session(self._cluster.shard_of(register)).read(register)

    def write_sync(self, value: Value, timeout: float | None = None) -> int:
        """Blocking write; returns the home-shard operation timestamp."""
        return self.write(value).result(timeout).timestamp

    def read_sync(
        self, register: RegisterId, timeout: float | None = None
    ) -> tuple[Value | Bottom, int]:
        """Blocking read; returns ``(value, timestamp)``."""
        result = self.read(register).result(timeout)
        return result.value, result.timestamp

    def flush(self) -> None:
        """Flush the batch buffer of every touched shard session (a no-op
        on unbatched deployments)."""
        for session in self._shard_sessions.values():
            session.flush()

    def barrier(self, timeout: float | None = None) -> None:
        """Drive the simulation until every handle on *every* shard this
        session touched has settled.

        Mirrors the single-server contract — batch buffers are flushed
        first per the batching policy, and the call raises the first
        failure among the operations waited on, or
        :class:`OperationTimeout` naming the shards still in flight —
        but drains all shards: the cross-shard ordering point of a
        sharded deployment.
        """
        policy = self._cluster.batching
        if policy is not None and policy.flush_on_barrier:
            self.flush()
        sessions = dict(self._shard_sessions)
        # Operations still parked in a batch buffer (flush_on_barrier
        # off) are not waited on — they have not been issued.  The
        # exclusion logic is the per-shard Session's, not re-derived here.
        per_session = {
            shard: s._issued_unsettled() for shard, s in sessions.items()
        }
        waited = [h for handles in per_session.values() for h in handles]
        limit = self._timeout if timeout is None else timeout

        def drained() -> bool:
            # Per shard: every issued handle settled, or the instance
            # died (crash/fail) — a dead instance's handles can never
            # settle, so waiting out the budget would only burn virtual
            # time for everyone else.
            return all(
                s._all_issued_settled() or s._death_reason() is not None
                for s in sessions.values()
            )

        self._cluster.run_until(drained, timeout=limit)
        for session in sessions.values():
            session._reject_if_dead()
        pending_shards = sorted(
            shard
            for shard, handles in per_session.items()
            if any(not h.done() for h in handles)
        )
        if pending_shards:
            count = sum(
                1
                for shard in pending_shards
                for h in per_session[shard]
                if not h.done()
            )
            raise OperationTimeout(
                f"barrier: {count} operation(s) still in flight on shard(s) "
                f"{pending_shards} after {limit} time units (a Byzantine "
                f"server may be withholding the REPLY)"
            )
        for handle in waited:
            if handle._exception is not None:
                raise handle._exception

    # ------------------------------------------------------------------ #
    # Fail-aware surface
    # ------------------------------------------------------------------ #

    @property
    def stability_cut(self) -> tuple[int, ...]:
        """The home shard's latest ``W`` vector — the cut governing this
        client's writes."""
        return self.shard_session(self.home_shard).stability_cut

    def stability_cuts(self) -> dict[int, tuple[int, ...]]:
        """Per-partition stability: the ``W`` vector of every touched
        shard, keyed by shard."""
        return {
            shard: session.stability_cut
            for shard, session in sorted(self._shard_sessions.items())
        }

    def wait_for_stability(self, timestamp: int, timeout: float | None = None) -> bool:
        """Block until the home-shard write with ``timestamp`` is stable
        w.r.t. every client (or failure / timeout)."""
        return self.shard_session(self.home_shard).wait_for_stability(
            timestamp, timeout=timeout
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ClusterSession client={self._client_id} "
            f"touched={list(self.touched_shards)} failed={self.failed}>"
        )
