"""The sharded deployment: N independent servers, one simulated world.

A :class:`ClusterSystem` holds one fully wired single-server deployment
(:class:`~repro.workloads.runner.StorageSystem`) per shard, all driven by
one shared :class:`~repro.sim.scheduler.Scheduler` so every shard lives
in the same virtual time.  Each shard is a complete, independent
protocol domain — its own server, keystore, offline channel, history —
owning one partition of the register space; the cluster layer never
crosses protocol state between shards (doing so would be a fork by
construction).

The class mirrors the full facade surface of
:class:`~repro.api.system.System` *and* enough of the raw
:class:`StorageSystem` surface (``clients``, ``scheduler``, ``offline``,
``trace``, ``server_outage`` ...) that drivers, churn schedules and the
CLI run unchanged on a cluster.  ``clients`` holds
:class:`ClusterClient` proxies that route operations by register
ownership and aggregate per-shard state.

Detection is audited **per shard and per dependency**: the cluster wires
a client's notifications for exactly the shards that client touched with
user operations (:meth:`touch`).  A forking shard is therefore reported
to precisely the clients whose data lived there — a client that never
used the shard has nothing at stake and hears nothing, while its honest
shards keep serving it.
"""

from __future__ import annotations

from typing import Callable

from repro.api.errors import CapabilityError
from repro.cluster.events import ClusterNotificationHub
from repro.cluster.session import ClusterSession
from repro.cluster.shardmap import ShardMap
from repro.common.errors import ConfigurationError
from repro.common.types import ClientId, RegisterId, Value, client_name
from repro.history.history import History
from repro.sim.scheduler import Scheduler
from repro.workloads.runner import StorageSystem


class ClusterClient:
    """Cluster-level client proxy: the ``system.clients[i]`` object.

    Routes ``write``/``read`` to the owning shard's protocol instance and
    aggregates liveness/failure state over the shards this client has
    *touched* with user operations, so generic drivers and churn
    schedules treat it exactly like a single-server client.
    """

    #: Routing hands each shard instance at most its own sequential
    #: stream, and FAUST instances queue internally; sessions may pipeline.
    pipelines_operations = True

    def __init__(self, cluster: "ClusterSystem", client_id: ClientId) -> None:
        self._cluster = cluster
        self.client_id = client_id
        self.name = client_name(client_id)

    # -- shard instances ------------------------------------------------ #

    @property
    def instances(self) -> list:
        """This client's protocol instance on every shard."""
        return [
            shard.clients[self.client_id] for shard in self._cluster.shards
        ]

    def instance(self, shard: int):
        """This client's protocol instance on one specific shard."""
        self._cluster.check_shard(shard)
        return self._cluster.shards[shard].clients[self.client_id]

    def _touched_instances(self) -> list:
        return [
            self.instance(shard)
            for shard in self._cluster.touched_shards(self.client_id)
        ]

    # -- operations (routed) -------------------------------------------- #

    def write(self, value: Value, callback: Callable | None = None) -> None:
        """Write the client's own register (routed to its home shard)."""
        shard = self._cluster.shard_of(self.client_id)
        self._cluster.touch(self.client_id, shard)
        self.instance(shard).write(value, callback)

    def read(self, register: RegisterId, callback: Callable | None = None) -> None:
        """Read any register (routed to the shard owning it)."""
        shard = self._cluster.shard_of(register)
        self._cluster.touch(self.client_id, shard)
        self.instance(shard).read(register, callback)

    # -- aggregated state ------------------------------------------------ #

    @property
    def crashed(self) -> bool:
        """Crashed on every shard (a cluster client crashes as a unit)."""
        return all(inst.crashed for inst in self.instances)

    @property
    def busy(self) -> bool:
        """An operation is in flight on at least one shard."""
        return any(getattr(inst, "busy", False) for inst in self.instances)

    @property
    def failed(self) -> bool:
        """Any *touched* shard's instance output ``fail`` (untouched
        shards carry nothing of this client's and do not halt it)."""
        return any(inst.failed for inst in self._touched_instances())

    @property
    def fail_reason(self) -> str | None:
        """The first touched shard's ``fail_i`` reason, if any."""
        for inst in self._touched_instances():
            if inst.fail_reason is not None:
                return inst.fail_reason
        return None

    @property
    def faust_failed(self) -> bool:
        """Any touched shard's FAUST layer failed (fail-aware clusters)."""
        instances = self.instances
        if not instances or not hasattr(instances[0], "faust_failed"):
            raise AttributeError("faust_failed")  # not a fail-aware cluster
        return any(inst.faust_failed for inst in self._touched_instances())

    @property
    def faust_fail_reason(self) -> str | None:
        """The first touched shard's FAUST failure reason, if any."""
        for inst in self._touched_instances():
            if getattr(inst, "faust_fail_reason", None) is not None:
                return inst.faust_fail_reason
        return None

    @property
    def tracker(self):
        """The home-shard stability tracker (fail-aware clusters only)."""
        home = self.instance(self._cluster.shard_of(self.client_id))
        tracker = getattr(home, "tracker", None)
        if tracker is None:
            raise AttributeError("tracker")
        return tracker

    @property
    def completed_operations(self) -> int:
        """Operations completed by this client across all shards."""
        return sum(inst.completed_operations for inst in self.instances)

    # -- lifecycle (fanned out) ------------------------------------------ #

    def crash(self) -> None:
        """Crash-stop this client's instance on every shard."""
        for inst in self.instances:
            inst.crash()

    def pause(self) -> None:
        """Pause background activity (dummy reads/probes) on all shards."""
        for inst in self.instances:
            if hasattr(inst, "pause"):
                inst.pause()

    def resume(self) -> None:
        """Resume background activity on all shards."""
        for inst in self.instances:
            if hasattr(inst, "resume"):
                inst.resume()

    def enable_background(self, dummy_reads: bool = True, probes: bool = True) -> None:
        """Enable FAUST background traffic on every shard instance."""
        for inst in self.instances:
            if hasattr(inst, "enable_background"):
                inst.enable_background(dummy_reads, probes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ClusterClient {self.name} over {len(self._cluster.shards)} shards>"


class _ClusterOffline:
    """Connectivity facade: one switch per client, fanned to every
    shard's offline channel (the client is one person; going to sleep
    disconnects it from all its shard mailboxes at once)."""

    def __init__(self, cluster: "ClusterSystem") -> None:
        self._cluster = cluster

    def set_online(self, name: str, online: bool) -> None:
        for shard in self._cluster.shards:
            shard.offline.set_online(name, online)

    def is_online(self, name: str) -> bool:
        return all(shard.offline.is_online(name) for shard in self._cluster.shards)

    def mailbox_depth(self, name: str) -> int:
        return sum(
            shard.offline.mailbox_depth(name) for shard in self._cluster.shards
        )


class _ClusterTrace:
    """Read-mostly trace facade aggregating per-shard traces.

    Cluster-level events (``note``) land on every query as well, so a
    churn schedule's offline/online notes are preserved.
    """

    def __init__(self, cluster: "ClusterSystem") -> None:
        self._cluster = cluster
        self.notes: list[tuple[float, str, str, tuple]] = []

    def note(self, time: float, who: str, what: str, *details) -> None:
        self.notes.append((time, who, what, details))

    def message_count(self, kind: str | None = None) -> int:
        return sum(
            shard.trace.message_count(kind) for shard in self._cluster.shards
        )

    def total_bytes(self, kind: str | None = None) -> int:
        return sum(
            shard.trace.total_bytes(kind) for shard in self._cluster.shards
        )


class ClusterSystem:
    """A sharded deployment opened through the ``cluster`` backend."""

    def __init__(
        self,
        shards: list[StorageSystem],
        shard_map: ShardMap,
        scheduler: Scheduler,
        backend_name: str,
        capabilities,
        default_timeout: float = 1_000.0,
        shard_protocol: str = "faust",
    ) -> None:
        if len(shards) != shard_map.num_shards:
            raise ConfigurationError(
                f"{len(shards)} shard deployments but the map expects "
                f"{shard_map.num_shards}"
            )
        self.shards = shards
        self.shard_map = shard_map
        self.scheduler = scheduler
        self.backend_name = backend_name
        self.capabilities = capabilities
        self.default_timeout = default_timeout
        self.shard_protocol = shard_protocol
        self.num_clients = len(shards[0].clients)
        self.notifications = ClusterNotificationHub()
        self.trace = _ClusterTrace(self)
        self.offline = _ClusterOffline(self)
        self.clients = [
            ClusterClient(self, i) for i in range(self.num_clients)
        ]
        self._sessions: dict[ClientId, ClusterSession] = {}
        #: (client, shard) pairs with at least one user operation.
        self._touched: set[tuple[ClientId, int]] = set()

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #

    def shard_of(self, register: RegisterId) -> int:
        """The shard owning ``register``; validates the register range."""
        if not 0 <= register < self.num_clients:
            raise ConfigurationError(
                f"register {register} outside the register space "
                f"[0, {self.num_clients})"
            )
        return self.shard_map.shard_of(register)

    @property
    def num_shards(self) -> int:
        """Number of shards (independent server deployments)."""
        return len(self.shards)

    def check_shard(self, shard: int) -> int:
        """Validate a shard index (rejecting negatives — Python's
        negative indexing would silently alias the last shard)."""
        if not 0 <= shard < len(self.shards):
            raise ConfigurationError(
                f"shard {shard} out of range for {len(self.shards)} shard(s)"
            )
        return shard

    @property
    def servers(self) -> list:
        """The per-shard servers, indexed by shard."""
        return [shard.server for shard in self.shards]

    @property
    def batching(self):
        """The cluster's :class:`~repro.api.config.BatchingPolicy`
        (uniform across shards; ``None`` when unbatched)."""
        return self.shards[0].batching

    def touched_shards(self, client_id: ClientId) -> tuple[int, ...]:
        """Shards ``client_id`` has issued user operations against."""
        return tuple(
            sorted(s for c, s in self._touched if c == client_id)
        )

    def touch(self, client_id: ClientId, shard: int) -> None:
        """Record that ``client_id`` depends on ``shard`` and wire its
        notifications for that shard (idempotent).

        Wiring at touch time is what scopes detection: only the clients
        whose data lives on a shard are notified of its misbehaviour.  If
        the shard was already caught misbehaving, the notification fires
        immediately — depending on a known-bad shard must not go silent.
        """
        key = (client_id, shard)
        if key in self._touched:
            return
        self._touched.add(key)
        hub = self.notifications
        instance = self.shards[shard].clients[client_id]
        if hasattr(instance, "add_stable_listener"):
            instance.add_stable_listener(
                lambda cut, _c=client_id, _s=shard: hub.emit_shard_stability(
                    self.scheduler.now, _c, cut, _s
                )
            )
        if hasattr(instance, "add_failure_listener"):
            instance.add_failure_listener(
                lambda reason, _c=client_id, _s=shard: hub.emit_shard_failure(
                    self.scheduler.now, _c, reason, _s
                )
            )
        already = getattr(instance, "faust_fail_reason", None) or getattr(
            instance, "fail_reason", None
        )
        if already is not None or getattr(instance, "faust_failed", False):
            hub.emit_shard_failure(
                self.scheduler.now,
                client_id,
                already or "shard already failed",
                shard,
            )

    # ------------------------------------------------------------------ #
    # Sessions
    # ------------------------------------------------------------------ #

    def session(
        self, client_id: ClientId, timeout: float | None = None
    ) -> ClusterSession:
        """The cluster session bound to ``client_id`` (cached per client
        unless an explicit ``timeout`` asks for a dedicated one)."""
        if timeout is not None:
            return ClusterSession(self, client_id, timeout=timeout)
        if client_id not in self._sessions:
            self._sessions[client_id] = ClusterSession(self, client_id)
        return self._sessions[client_id]

    def sessions(self) -> list[ClusterSession]:
        """One session per client, in client order."""
        return [self.session(i) for i in range(self.num_clients)]

    # ------------------------------------------------------------------ #
    # Guarantees
    # ------------------------------------------------------------------ #

    def require(self, capability: str) -> None:
        """Assert the cluster provides ``capability``; raises
        :class:`CapabilityError` if not."""
        if not getattr(self.capabilities, capability):
            raise CapabilityError(
                f"backend {self.backend_name!r} does not provide {capability}"
            )

    # ------------------------------------------------------------------ #
    # The simulated world
    # ------------------------------------------------------------------ #

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Advance the shared simulation; returns events fired."""
        return self.scheduler.run(until=until, max_events=max_events)

    def run_until(
        self, predicate: Callable[[], bool], timeout: float | None = None
    ) -> bool:
        """Run until ``predicate()`` holds; returns whether it ever did."""
        return self.scheduler.run_until(predicate, timeout=timeout)

    @property
    def now(self) -> float:
        """Current virtual time (shared by every shard)."""
        return self.scheduler.now

    def crash_client_at(self, client_id: ClientId, time: float) -> None:
        """Schedule a crash-stop of one client (all its shard instances)."""
        proxy = self.clients[client_id]
        self.scheduler.schedule_at(
            time,
            lambda: (proxy.crash(), self.trace.note(time, proxy.name, "crash")),
        )

    # -- server faults, with a shard axis ------------------------------- #

    def shard_outage(self, shard: int, start: float, duration: float) -> None:
        """One crash-recovery window for a single shard.

        On a replicated shard the window hits every replica of that shard
        (a correlated outage); use :meth:`replica_outage` to crash one
        replica only — the fault an honest-majority group masks.
        """
        self.shards[self.check_shard(shard)].server_outage(start, duration)

    def replica_outage(
        self, shard: int, replica: int, start: float, duration: float
    ) -> None:
        """One crash-recovery window for a single replica of one shard."""
        self.shards[self.check_shard(shard)].replica_outage(
            replica, start, duration
        )

    def server_outage(self, start: float, duration: float) -> None:
        """A whole-cluster outage: every shard down over the window."""
        for shard in range(self.num_shards):
            self.shard_outage(shard, start, duration)

    # ------------------------------------------------------------------ #
    # Histories (per shard — each shard is its own consistency domain)
    # ------------------------------------------------------------------ #

    def shard_histories(self) -> dict[int, History]:
        """The recorded history of every shard, keyed by shard."""
        return {k: shard.history() for k, shard in enumerate(self.shards)}

    def attach_audit(
        self,
        every: float = 50.0,
        checks: tuple[str, ...] = ("linearizability", "causal"),
    ):
        """Start periodic O(delta) consistency audits — one streaming
        checker set per shard, since each shard is its own consistency
        domain (verdict keys are ``"shard<k>.<check>"``)."""
        from repro.workloads.runner import IncrementalAuditor

        return IncrementalAuditor(self, every=every, checks=checks)

    def history(self) -> History:
        """Unsupported on clusters: use :meth:`shard_histories`."""
        raise CapabilityError(
            "a cluster has one history per shard (each shard is an "
            "independent fork-linearizability domain); use shard_histories()"
        )

    def profile(self) -> dict:
        """Machine-readable performance profile of the whole cluster
        (:func:`repro.perf.system_profile`): per-shard scheduler/server
        counters, cluster-wide aggregates and hot-path cache stats."""
        from repro.perf.profile import system_profile

        return system_profile(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ClusterSystem shards={self.num_shards} "
            f"clients={self.num_clients} map={self.shard_map!r} "
            f"t={self.now:.1f}>"
        )
