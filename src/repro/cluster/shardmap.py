"""Register-space partitioning strategies for the sharded cluster.

A :class:`ShardMap` assigns every register (equivalently, every client's
own register ``X_i``) to exactly one shard.  The assignment is *static*
for the lifetime of a deployment: the paper's protocol pins each
register to one server's state, so re-sharding would be a fork by
construction (the old and the new owner would both answer for the same
register).  Two strategies ship:

* :class:`RangeShardMap` — contiguous register ranges, balanced to within
  one register.  Trivially inspectable; the default.
* :class:`HashShardMap` — consistent hashing on a SHA-256 ring with
  virtual nodes.  The assignment of a register depends only on the ring,
  not on the register population, so growing the register space leaves
  existing placements untouched — the property that matters once the
  register space outgrows any statically enumerable range.

Both are deterministic functions of their parameters — two processes
that agree on ``(strategy, num_shards)`` agree on every placement, so
clients need no placement service.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from bisect import bisect_right

from repro.common.errors import ConfigurationError
from repro.common.types import RegisterId


class ShardMap(ABC):
    """A total, static assignment of registers to shards."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ConfigurationError("a cluster needs at least one shard")
        self.num_shards = num_shards

    @abstractmethod
    def shard_of(self, register: RegisterId) -> int:
        """The shard owning ``register`` (in ``range(num_shards)``)."""

    def registers_of(self, shard: int, num_registers: int) -> tuple[RegisterId, ...]:
        """The partition owned by ``shard`` within ``range(num_registers)``."""
        if not 0 <= shard < self.num_shards:
            raise ConfigurationError(
                f"shard {shard} out of range for {self.num_shards} shards"
            )
        return tuple(
            r for r in range(num_registers) if self.shard_of(r) == shard
        )

    def partition(self, num_registers: int) -> list[tuple[RegisterId, ...]]:
        """All partitions, indexed by shard."""
        return [
            self.registers_of(shard, num_registers)
            for shard in range(self.num_shards)
        ]


class RangeShardMap(ShardMap):
    """Contiguous ranges: shard ``k`` owns registers ``[k*ceil .. )``.

    With ``num_registers`` known at construction the ranges are balanced
    to within one register (the first ``num_registers % num_shards``
    shards get one extra).
    """

    def __init__(self, num_shards: int, num_registers: int) -> None:
        super().__init__(num_shards)
        if num_registers < num_shards:
            raise ConfigurationError(
                f"range sharding {num_registers} registers over {num_shards} "
                f"shards would leave empty shards"
            )
        self.num_registers = num_registers
        base, extra = divmod(num_registers, num_shards)
        #: First register of each shard's range (ascending), for bisection.
        self._starts: list[int] = []
        start = 0
        for shard in range(num_shards):
            self._starts.append(start)
            start += base + (1 if shard < extra else 0)

    def shard_of(self, register: RegisterId) -> int:
        """The shard whose contiguous range contains ``register``."""
        if not 0 <= register < self.num_registers:
            raise ConfigurationError(
                f"register {register} outside the sharded space "
                f"[0, {self.num_registers})"
            )
        return bisect_right(self._starts, register) - 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RangeShardMap(shards={self.num_shards}, "
            f"registers={self.num_registers})"
        )


class HashShardMap(ShardMap):
    """Consistent hashing: shards own arcs of a SHA-256 ring.

    Each shard places ``virtual_nodes`` points on the ring; a register
    belongs to the shard owning the first point at or after its own hash
    (wrapping).  Placement is independent of the register population.
    """

    def __init__(self, num_shards: int, virtual_nodes: int = 64) -> None:
        super().__init__(num_shards)
        if virtual_nodes < 1:
            raise ConfigurationError("need at least one virtual node per shard")
        self.virtual_nodes = virtual_nodes
        ring: list[tuple[int, int]] = []
        for shard in range(num_shards):
            for vnode in range(virtual_nodes):
                ring.append((self._point(f"shard:{shard}:vnode:{vnode}"), shard))
        ring.sort()
        self._ring_points = [point for point, _ in ring]
        self._ring_shards = [shard for _, shard in ring]

    @staticmethod
    def _point(key: str) -> int:
        return int.from_bytes(
            hashlib.sha256(key.encode("ascii")).digest()[:8], "big"
        )

    def shard_of(self, register: RegisterId) -> int:
        """The shard owning ``register`` on the consistent-hash ring."""
        if register < 0:
            raise ConfigurationError(f"register {register} is negative")
        point = self._point(f"register:{register}")
        index = bisect_right(self._ring_points, point) % len(self._ring_points)
        return self._ring_shards[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HashShardMap(shards={self.num_shards}, "
            f"virtual_nodes={self.virtual_nodes})"
        )


#: Named strategies accepted by ``SystemConfig(shard_map=...)``.
SHARD_MAP_STRATEGIES = ("range", "hash")


def make_shard_map(
    spec: str | ShardMap, num_shards: int, num_registers: int
) -> ShardMap:
    """Resolve a shard-map spec: a ready :class:`ShardMap` passes through
    (its shard count must match), a strategy name builds one."""
    if isinstance(spec, ShardMap):
        if spec.num_shards != num_shards:
            raise ConfigurationError(
                f"shard map is built for {spec.num_shards} shards but the "
                f"cluster has {num_shards}"
            )
        return spec
    if spec == "range":
        return RangeShardMap(num_shards, num_registers)
    if spec == "hash":
        return HashShardMap(num_shards)
    raise ConfigurationError(
        f"unknown shard-map strategy {spec!r}; choose from "
        f"{sorted(SHARD_MAP_STRATEGIES)} or pass a ShardMap"
    )
