"""Sharded multi-server deployments of the fail-aware storage service.

The paper's protocol is single-server by design; this package scales it
out by *partitioning the register space* across N independent USTOR/FAUST
server instances (shards), each a complete protocol domain with its own
keys, history and fail-aware machinery.  A client-side
:class:`~repro.cluster.session.ClusterSession` routes every operation to
the owning shard behind the unchanged ``Session``/``OpHandle`` facade,
so applications, scenarios and experiments run on a cluster untouched.

Guarantees are per shard, audited per shard:

* each shard is fork-linearizable/fail-aware *independently* — an
  adversary may be honest on one shard and forking on another;
* a forking shard is detected by, and reported to, exactly the clients
  whose operations touched it (:class:`ShardFailureNotification` carries
  the shard);
* ``barrier()`` drains every touched shard; stability is tracked per
  register partition (home-shard cuts for writes).

Open one through the ``cluster`` backend::

    from repro.api import SystemConfig, open_system

    system = open_system(
        SystemConfig(num_clients=6, shards=3, shard_map="hash"),
        backend="cluster",
    )
"""

from repro.cluster.events import (
    ClusterNotificationHub,
    ShardFailureNotification,
    ShardStabilityNotification,
)
from repro.cluster.session import ClusterSession
from repro.cluster.shardmap import (
    SHARD_MAP_STRATEGIES,
    HashShardMap,
    RangeShardMap,
    ShardMap,
    make_shard_map,
)
from repro.cluster.system import ClusterClient, ClusterSystem

__all__ = [
    "ClusterClient",
    "ClusterNotificationHub",
    "ClusterSession",
    "ClusterSystem",
    "HashShardMap",
    "RangeShardMap",
    "SHARD_MAP_STRATEGIES",
    "ShardFailureNotification",
    "ShardMap",
    "ShardStabilityNotification",
    "make_shard_map",
]
