"""Getting metrics out: Prometheus text, ``/metrics`` HTTP, JSONL snapshots.

Three consumers, three formats, one registry:

* :func:`render_prometheus` — the text exposition format every scraper
  speaks; counters become ``repro_<name>_total``, histograms expand to
  cumulative ``_bucket{le="..."}`` series plus ``_sum``/``_count``;
* :class:`MetricsHTTPServer` — a dependency-free asyncio HTTP listener
  serving ``GET /metrics`` (Prometheus text) and ``GET /metrics.json``
  (the raw snapshot), mounted both on :class:`~repro.net.server.NetServerHost`
  processes and on the client runtime so a TCP deployment is observable
  end to end;
* :class:`JsonlSnapshotWriter` — periodic whole-registry snapshots as
  JSONL, the artifact CI uploads and offline analysis greps.

An optional ``on_scrape``/``on_snapshot`` hook runs before each read so
derived gauges (:class:`~repro.obs.health.HealthMonitor`) are fresh.
"""

from __future__ import annotations

import asyncio
import json
from math import inf
from typing import Callable

from repro.obs.registry import Counter, Gauge, Histogram, Registry


def _metric_name(name: str) -> str:
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return f"repro_{cleaned}"


def _format_value(value: float) -> str:
    if value == inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def render_prometheus(registry: Registry) -> str:
    """The registry's instruments in Prometheus text exposition format."""
    lines: list[str] = []
    for name in registry.names():
        instrument = registry.get(name)
        metric = _metric_name(name)
        if isinstance(instrument, Histogram):
            lines.append(f"# TYPE {metric} histogram")
            for bound, cumulative in instrument.bucket_counts():
                lines.append(
                    f'{metric}_bucket{{le="{_format_value(bound)}"}} '
                    f"{cumulative}"
                )
            lines.append(f"{metric}_sum {_format_value(instrument.sum)}")
            lines.append(f"{metric}_count {instrument.count}")
        elif isinstance(instrument, Counter):
            lines.append(f"# TYPE {metric}_total counter")
            lines.append(f"{metric}_total {instrument.value}")
        elif isinstance(instrument, Gauge):
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(instrument.value)}")
    return "\n".join(lines) + "\n"


class MetricsHTTPServer:
    """Minimal asyncio HTTP server exposing one registry.

    ``GET /metrics`` answers Prometheus text; ``GET /metrics.json``
    answers the JSON snapshot; anything else is 404.  One-shot
    connections (``Connection: close``) keep the implementation a screen
    long — scrapers reconnect per scrape anyway.  ``port=0`` binds an
    ephemeral port, published through :attr:`port` / :attr:`endpoint`
    after :meth:`start`.
    """

    def __init__(
        self,
        registry: Registry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        on_scrape: Callable[[], None] | None = None,
    ) -> None:
        self.registry = registry
        self.host = host
        self.port = port
        self.on_scrape = on_scrape
        self._listener: asyncio.Server | None = None
        self.scrapes = 0

    @property
    def endpoint(self) -> str:
        """``host:port`` of the bound listener."""
        return f"{self.host}:{self.port}"

    async def start(self) -> None:
        """Bind the listener (resolving an ephemeral port)."""
        self._listener = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._listener.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Close the listener."""
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None

    def _respond(self, path: str) -> tuple[int, str, str]:
        if path.split("?", 1)[0] == "/metrics":
            return 200, "text/plain; version=0.0.4", render_prometheus(
                self.registry
            )
        if path.split("?", 1)[0] == "/metrics.json":
            return 200, "application/json", json.dumps(
                self.registry.snapshot()
            )
        return 404, "text/plain", "not found\n"

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await reader.readline()
            parts = request.decode("latin-1", "replace").split()
            # Drain headers up to the blank line; we never need them.
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            if len(parts) < 2 or parts[0] != "GET":
                status, ctype, body = 405, "text/plain", "GET only\n"
            else:
                if self.on_scrape is not None:
                    self.on_scrape()
                self.scrapes += 1
                status, ctype, body = self._respond(parts[1])
            reason = {200: "OK", 404: "Not Found", 405: "Method Not Allowed"}
            payload = body.encode()
            writer.write(
                (
                    f"HTTP/1.0 {status} {reason.get(status, 'OK')}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    f"Connection: close\r\n\r\n"
                ).encode()
                + payload
            )
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - peer vanished
            pass
        finally:
            writer.close()


class JsonlSnapshotWriter:
    """Appends timestamped whole-registry snapshots to a JSONL file.

    Each :meth:`write` appends ``{"t": <now>, "metrics": {...}}`` as one
    line.  The caller owns the cadence — the CLI drives it from the run
    loop, tests call it directly.  ``on_snapshot`` (typically
    ``HealthMonitor.refresh``) runs before each read.
    """

    def __init__(
        self,
        registry: Registry,
        path,
        *,
        on_snapshot: Callable[[], None] | None = None,
    ) -> None:
        self.registry = registry
        self.path = path
        self.on_snapshot = on_snapshot
        self.snapshots_written = 0
        open(path, "w").close()  # truncate: one file per run

    def write(self, now: float) -> dict:
        """Refresh, snapshot, append one line; returns the snapshot."""
        if self.on_snapshot is not None:
            self.on_snapshot()
        snapshot = self.registry.snapshot()
        with open(self.path, "a") as fh:
            fh.write(json.dumps({"t": now, "metrics": snapshot}) + "\n")
        self.snapshots_written += 1
        return snapshot
