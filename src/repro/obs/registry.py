"""Counters, gauges, fixed-bucket histograms, and the metrics registry.

The design optimizes for the *disabled* case, because every protocol hot
path is instrumented unconditionally.  Instrumented code asks the
current registry for its handles **once** (at construction or first
use), then increments them without branching:

* with metrics enabled (:func:`enable_metrics`), handles come from a
  shared :class:`Registry` keyed by dotted name — one counter named
  ``"net.frames_sent"`` aggregates across every connection that asked
  for it, and :meth:`Registry.snapshot` / the exposition layer can read
  everything;
* with metrics disabled (the default :class:`NullRegistry`), counter and
  gauge handles are fresh *detached* instances — real objects whose
  ``inc``/``set`` still work (so read-through aliases like
  ``Network.bursts_formed`` keep counting per instance) but that no
  snapshot ever sees — and histogram handles are a shared no-op whose
  ``observe`` does nothing, because per-observation bucket search is the
  one place the cost would show.

Histograms use fixed ascending bucket upper bounds (Prometheus-style
cumulative ``le`` buckets at exposition time) and answer quantiles by
nearest-rank over the buckets, so p50/p95/p99 cost O(buckets) to read
and O(log buckets) to write.
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from math import ceil
from math import inf

from repro.common.errors import ConfigurationError

#: Latency bucket upper bounds — wide geometric ladder covering both the
#: simulator's virtual time units and TCP wall-clock seconds.
LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
)

#: Size bucket upper bounds (bytes) — wire frames and WAL records.
SIZE_BUCKETS = (
    64, 128, 256, 512, 1024, 2048, 4096, 8192,
    16384, 65536, 262144, 1048576,
)

#: Small-cardinality bucket bounds — batch sizes, group-commit sizes.
COUNT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0

    def inc(self, by: int = 1) -> None:
        """Add ``by`` (default 1) to the count."""
        self._value += by

    @property
    def value(self) -> int:
        """The current count."""
        return self._value


class Gauge:
    """A point-in-time measurement that can move both ways."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self._value = value

    @property
    def value(self) -> float:
        """The last value set (0.0 before any ``set``)."""
        return self._value


class Histogram:
    """Fixed-bucket distribution with nearest-rank percentiles.

    ``bounds`` are strictly ascending bucket *upper* bounds; every
    observation above the last bound lands in an implicit overflow
    bucket.  The histogram keeps exact ``count``/``sum``/``max`` so
    means stay precise even though quantiles are bucket-resolution.
    """

    __slots__ = ("bounds", "_counts", "_count", "_sum", "_max")

    def __init__(self, bounds: tuple[float, ...] = LATENCY_BUCKETS) -> None:
        bounds = tuple(bounds)
        if not bounds or any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram bounds must be non-empty strictly ascending, "
                f"got {bounds!r}"
            )
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._counts[bisect_left(self.bounds, value)] += 1
        self._count += 1
        self._sum += value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        """Total number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Exact sum of all observations."""
        return self._sum

    @property
    def max(self) -> float:
        """Largest observation seen (0.0 when empty)."""
        return self._max

    @property
    def mean(self) -> float:
        """Exact mean of all observations (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank quantile ``q`` in [0, 1], at bucket resolution.

        Returns the upper bound of the bucket holding the rank (or the
        exact ``max`` for ranks in the overflow bucket); 0.0 when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q!r}")
        if not self._count:
            return 0.0
        # Nearest-rank definition: rank = ceil(q * n).  round()'s
        # half-even ties would sit one rank low at small counts (e.g.
        # p50 of 3 samples is rank ceil(1.5) == 2, not round(1.5) == 2
        # only by accident of parity — and round(0.5) == 0 underflows).
        rank = max(1, ceil(q * self._count))
        cumulative = 0
        for bound, bucket in zip(self.bounds, self._counts):
            cumulative += bucket
            if cumulative >= rank:
                return bound
        return self._max  # rank falls in the overflow bucket

    @property
    def p50(self) -> float:
        """Median (nearest-rank, bucket resolution)."""
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        """95th percentile (nearest-rank, bucket resolution)."""
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        """99th percentile (nearest-rank, bucket resolution)."""
        return self.percentile(0.99)

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, Prometheus-style.

        The final pair uses ``+inf`` as the bound and equals ``count``.
        """
        pairs: list[tuple[float, int]] = []
        cumulative = 0
        for bound, bucket in zip(self.bounds, self._counts):
            cumulative += bucket
            pairs.append((bound, cumulative))
        pairs.append((inf, self._count))
        return pairs

    def snapshot(self) -> dict:
        """Summary dict: count/sum/mean/max and the headline quantiles."""
        return {
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "max": self._max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


class _NullHistogram(Histogram):
    """Shared histogram whose ``observe`` is a no-op (disabled metrics)."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        """Discard the observation — this is the disabled-metrics sink."""


_NULL_HISTOGRAM = _NullHistogram()


class Registry:
    """Get-or-create instrument store, keyed by dotted metric name.

    Two callers asking for the same name share the same instrument —
    that is how per-connection and per-shard code aggregates into one
    system-wide view.  Asking for an existing name as a different kind
    (or a histogram with different bounds) is a loud
    :class:`~repro.common.errors.ConfigurationError` rather than a
    silently forked time series.
    """

    #: Real registries record; the :class:`NullRegistry` subclass flips this.
    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type, factory):
        found = self._instruments.get(name)
        if found is not None:
            if type(found) is not kind:
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{type(found).__name__}, not {kind.__name__}"
                )
            return found
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        """The shared counter registered under ``name`` (created on first use)."""
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        """The shared gauge registered under ``name`` (created on first use)."""
        return self._get(name, Gauge, Gauge)

    def histogram(
        self, name: str, bounds: tuple[float, ...] = LATENCY_BUCKETS
    ) -> Histogram:
        """The shared histogram under ``name`` (bounds fixed at creation)."""
        found = self._get(name, Histogram, lambda: Histogram(bounds))
        if found.bounds != tuple(bounds):
            raise ConfigurationError(
                f"histogram {name!r} already registered with bounds "
                f"{found.bounds!r}, not {tuple(bounds)!r}"
            )
        return found

    def names(self) -> list[str]:
        """All registered metric names, sorted."""
        return sorted(self._instruments)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """The instrument registered under ``name``, or None."""
        return self._instruments.get(name)

    def snapshot(self) -> dict:
        """Every instrument's current value as a JSON-ready dict.

        Counters map to ints, gauges to floats, histograms to their
        summary dicts (count/sum/mean/max/p50/p95/p99).
        """
        out: dict = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                out[name] = instrument.snapshot()
            else:
                out[name] = instrument.value
        return out


class NullRegistry(Registry):
    """The disabled-metrics default: hands out instruments nobody reads.

    Counters and gauges are fresh *detached* instances per call — they
    still count (so per-instance read-through aliases work with metrics
    off) but belong to no snapshot.  Histograms are one shared no-op
    instance, because ``observe`` is the only per-event cost worth
    eliding.  ``snapshot()`` is always empty.
    """

    enabled = False

    def counter(self, name: str) -> Counter:
        """A fresh detached counter (never snapshotted)."""
        return Counter()

    def gauge(self, name: str) -> Gauge:
        """A fresh detached gauge (never snapshotted)."""
        return Gauge()

    def histogram(
        self, name: str, bounds: tuple[float, ...] = LATENCY_BUCKETS
    ) -> Histogram:
        """The shared no-op histogram (``observe`` discards)."""
        return _NULL_HISTOGRAM


_current: Registry = NullRegistry()


def get_registry() -> Registry:
    """The process-wide current registry (a no-op one by default)."""
    return _current


def set_registry(registry: Registry) -> Registry:
    """Install ``registry`` as current; returns the one it replaced."""
    global _current
    previous = _current
    _current = registry
    return previous


def enable_metrics() -> Registry:
    """Install and return a fresh recording :class:`Registry`.

    The single switch a deployment flips (the CLI's ``--metrics`` family
    of flags does it) before building systems, so every seam constructed
    afterwards draws shared instruments from it.
    """
    registry = Registry()
    set_registry(registry)
    return registry


@contextmanager
def use_registry(registry: Registry):
    """Context manager scoping ``registry`` as current, then restoring.

    Tests and embedded runs use this to observe one system without
    leaking a recording registry into the rest of the process.
    """
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
