"""Fail-aware health gauges: stability lag, time-to-detection, audits.

The paper's product promise is that clients *learn* about server
misbehaviour with bounded lag; :class:`HealthMonitor` turns that promise
into numbers a dashboard can alarm on:

* ``health.c<i>.stability_lag`` — operations client ``i`` has issued
  minus operations of ``i`` known stable.  FAUST clients answer from
  their own :class:`~repro.faust.stability.StabilityTracker` (the
  paper's ``W_i`` cut); plain USTOR clients have no tracker, so the
  monitor computes the global-observer proxy ``min_j V_j[i]`` over the
  co-resident clients' version vectors — the exact quantity the offline
  checkers use.
* ``health.time_to_detection`` — first ``fail_i`` output minus the first
  known Byzantine *deviation*.  Deviation times come from
  :meth:`note_deviation`, or are auto-discovered from server attributes
  the adversaries already expose (``rollback_crash_time``,
  ``first_deviation_at``); absent both, the monitor's start time is the
  conservative baseline.
* ``health.failures`` / ``health.first_failure_time`` — the
  ``FailureNotification`` fan-out, recorded by failure listeners the
  monitor registers on every client; the timestamps coincide with the
  :class:`~repro.api.events.NotificationHub`'s because both listen on
  the same client callbacks under the same clock.
* ``checkpoint.stall_seconds`` (``repro_checkpoint_stall_seconds`` on
  the wire) — how long the slowest client's pending checkpoint sequence
  has been waiting for co-signatures, with ``blocking_clients`` naming
  the members whose shares (or stability) are missing.  A sustained
  stall is the page that precedes an eviction when the membership layer
  is on, and the page that *is* the outage when it is off.
* ``audit.*`` — progress and verdict of an attached
  :class:`~repro.workloads.runner.IncrementalAuditor`.

Gauges are only as fresh as the last :meth:`refresh`; the exposition
layer calls it on every scrape/snapshot.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.obs.registry import Registry, get_registry

#: Server attributes understood as "first Byzantine deviation" times, in
#: the order they are preferred.  ``rollback_crash_time`` is when the
#: rollback adversary snapshots reality and starts lying about it.
_DEVIATION_ATTRS = ("first_deviation_at", "rollback_crash_time")


class HealthMonitor:
    """Computes the fail-aware gauges for one running system.

    ``clients`` are protocol clients (USTOR or FAUST); ``now`` is the
    deployment's clock (the simulator scheduler's or wall time).
    ``servers`` are optional server objects probed for deviation
    timestamps on refresh.  The monitor registers a failure listener on
    every client at construction, so detections are timestamped even if
    nobody refreshes until after the run.
    """

    def __init__(
        self,
        clients: Iterable,
        now: Callable[[], float],
        *,
        registry: Registry | None = None,
        servers: Iterable = (),
        auditor=None,
    ) -> None:
        self._clients = list(clients)
        self._now = now
        self._registry = registry if registry is not None else get_registry()
        self._servers = list(servers)
        self._auditor = auditor
        self.started_at = now()
        #: (time, client_index, reason) per observed ``fail_i``.
        self.failures: list[tuple[float, int, str]] = []
        self.deviation_time: float | None = None
        self._failures_counter = self._registry.counter("health.failures")
        for index, client in enumerate(self._clients):
            add = getattr(client, "add_failure_listener", None)
            if add is not None:
                add(self._make_failure_listener(index))

    def _make_failure_listener(self, index: int):
        def on_fail(reason: str) -> None:
            self.failures.append((self._now(), index, reason))
            self._failures_counter.inc()

        return on_fail

    def note_deviation(self, time: float) -> None:
        """Record the (earliest known) Byzantine deviation time."""
        if self.deviation_time is None or time < self.deviation_time:
            self.deviation_time = time

    def watch_auditor(self, auditor) -> None:
        """Attach an incremental auditor whose progress refresh reports."""
        self._auditor = auditor

    # ---------------------------------------------------------------- #
    # Derived quantities
    # ---------------------------------------------------------------- #

    def stability_lags(self) -> list[int]:
        """Per-client ops issued minus ops stable, at this instant."""
        vectors = []
        for client in self._clients:
            version = getattr(client, "version", None)
            vectors.append(tuple(version.vector) if version is not None else ())
        lags = []
        for index, client in enumerate(self._clients):
            issued = vectors[index][index] if vectors[index] else 0
            tracker = getattr(client, "tracker", None)
            if tracker is not None:
                stable = tracker.stable_timestamp_for_all()
            else:
                stable = min(
                    (v[index] for v in vectors if len(v) > index),
                    default=0,
                )
            lags.append(max(0, issued - stable))
        return lags

    def checkpoint_stall(self) -> tuple[float, tuple[int, ...]]:
        """Worst pending-checkpoint stall and who is blocking it.

        Returns ``(seconds, client_ids)`` over the co-resident clients'
        checkpoint managers: the longest time any client's pending
        sequence has gone unsigned, and the union of members those
        stalled clients are waiting on (missing shares, and — with
        membership on — lease-lapsed peers the membership layer blames).
        ``(0.0, ())`` when no checkpointing is configured or nothing is
        pending.
        """
        now = self._now()
        worst = 0.0
        blocking: set[int] = set()
        for client in self._clients:
            manager = getattr(client, "checkpoint_manager", None)
            if manager is None:
                continue
            stall = manager.stall_seconds(now)
            if stall <= 0.0:
                continue
            worst = max(worst, stall)
            blocking.update(manager.blocking_clients())
            membership = getattr(client, "membership_manager", None)
            if membership is not None:
                blocking.update(membership.blocking_clients(now))
        return worst, tuple(sorted(blocking))

    def first_failure_time(self) -> float | None:
        """Timestamp of the earliest observed ``fail_i``, or None."""
        return min((t for t, _c, _r in self.failures), default=None)

    def time_to_detection(self) -> float | None:
        """Seconds from first deviation (or monitor start) to first fail_i."""
        detected = self.first_failure_time()
        if detected is None:
            return None
        baseline = (
            self.deviation_time
            if self.deviation_time is not None
            else self.started_at
        )
        return max(0.0, detected - baseline)

    def _discover_deviation(self) -> None:
        for server in self._servers:
            for attr in _DEVIATION_ATTRS:
                time = getattr(server, attr, None)
                if time is not None:
                    self.note_deviation(time)
                    break

    def refresh(self) -> dict:
        """Recompute every gauge into the registry; returns them as a dict.

        Exposed keys: per-client ``health.c<i>.stability_lag``, the
        aggregate ``health.max_stability_lag``, detection gauges, and —
        when an auditor is attached — ``audit.audits`` and ``audit.ok``.
        """
        registry = self._registry
        self._discover_deviation()
        values: dict = {}
        lags = self.stability_lags()
        for index, lag in enumerate(lags):
            name = f"health.c{index}.stability_lag"
            registry.gauge(name).set(lag)
            values[name] = lag
        max_lag = max(lags, default=0)
        registry.gauge("health.max_stability_lag").set(max_lag)
        values["health.max_stability_lag"] = max_lag
        stall, blocking = self.checkpoint_stall()
        registry.gauge("checkpoint.stall_seconds").set(stall)
        values["checkpoint.stall_seconds"] = stall
        registry.gauge("checkpoint.blocking_clients").set(len(blocking))
        values["checkpoint.blocking_clients"] = blocking
        first_fail = self.first_failure_time()
        if first_fail is not None:
            registry.gauge("health.first_failure_time").set(first_fail)
            values["health.first_failure_time"] = first_fail
        detection = self.time_to_detection()
        if detection is not None:
            registry.gauge("health.time_to_detection").set(detection)
            values["health.time_to_detection"] = detection
        if self.deviation_time is not None:
            registry.gauge("health.deviation_time").set(self.deviation_time)
            values["health.deviation_time"] = self.deviation_time
        if self._auditor is not None:
            audits = len(getattr(self._auditor, "audits", ()))
            ok = 1.0 if getattr(self._auditor, "ok", True) else 0.0
            registry.gauge("audit.runs").set(audits)
            registry.gauge("audit.ok").set(ok)
            values["audit.runs"] = audits
            values["audit.ok"] = ok
        return values
