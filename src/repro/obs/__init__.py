"""`repro.obs` — the observability spine: metrics, tracing, health.

One registry feeds every surface.  The hot seams (session issue/settle,
transport bursts, group commits, WAL appends, framing, auditors) hold
registry handles and increment them unconditionally; whether those
increments land in a real :class:`~repro.obs.registry.Registry` (shared,
snapshotable, exposable) or in detached no-op instruments (the default)
is decided once, at handle-creation time, by
:func:`~repro.obs.registry.get_registry`.  That keeps the off-switch
near-zero-cost — no branch per event, just an attribute add on a
throwaway counter — which `benchmarks/test_bench_obs.py` gates at <=5%
on the digest/encode hot paths.

The package splits into four modules:

* :mod:`repro.obs.registry` — counters, gauges, fixed-bucket histograms
  (p50/p95/p99), the registry itself, and the process-global default;
* :mod:`repro.obs.tracing` — deterministic per-operation trace ids
  (client id + protocol timestamp, so byte-identical replay survives)
  and the :class:`~repro.obs.tracing.SpanLog` with JSONL and Chrome
  trace-event export;
* :mod:`repro.obs.health` — the fail-aware headline gauges: per-client
  stability lag, time-to-detection from Byzantine deviation to
  ``FailureNotification``, auditor progress/verdict;
* :mod:`repro.obs.exposition` — Prometheus text rendering, the
  ``/metrics`` asyncio HTTP endpoint, and the periodic JSONL snapshot
  writer.
"""

from repro.obs.exposition import (
    JsonlSnapshotWriter,
    MetricsHTTPServer,
    render_prometheus,
)
from repro.obs.health import HealthMonitor
from repro.obs.registry import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    NullRegistry,
    Registry,
    enable_metrics,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.tracing import (
    SpanLog,
    make_trace_id,
    trace_client,
    trace_timestamp,
)

__all__ = [
    "COUNT_BUCKETS",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "HealthMonitor",
    "Histogram",
    "JsonlSnapshotWriter",
    "MetricsHTTPServer",
    "NullRegistry",
    "Registry",
    "SpanLog",
    "enable_metrics",
    "get_registry",
    "make_trace_id",
    "render_prometheus",
    "set_registry",
    "trace_client",
    "trace_timestamp",
    "use_registry",
]
