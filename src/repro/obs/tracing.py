"""Deterministic per-operation trace ids and the span log.

Trace ids must survive byte-identical replay: ``repro replay --check``
rebuilds fresh clients from a wire trace and compares every re-encoded
SUBMIT frame byte-for-byte, so an id minted from a random source or a
wall clock would diverge.  Instead the id is a pure function of protocol
state the replayed client reproduces exactly — the submitting client's
index and the operation's protocol timestamp ``t`` (strictly increasing
per client, Algorithm 1):

    ``trace_id = (client_id << 40) | t``

40 bits of timestamp cover ~10^12 operations per client; the same id is
recomputable anywhere the pair is known (the session settling an op, the
client failing one, the server applying a SUBMIT), which is what lets
one operation be followed across process boundaries without any id
allocation protocol.

:class:`SpanLog` collects span records — ``ph="X"`` complete spans with
a duration and ``ph="i"`` instants — and exports them as JSONL (one
record per line, grep-friendly) or as a Chrome trace-event file that
``chrome://tracing`` / Perfetto loads directly, with one trace-viewer
process per reporting component and one row per client.
"""

from __future__ import annotations

import json

from repro.common.errors import ConfigurationError

#: Bits reserved for the protocol timestamp in a trace id.
TIMESTAMP_BITS = 40
_TIMESTAMP_MASK = (1 << TIMESTAMP_BITS) - 1


def make_trace_id(client_id: int, timestamp: int) -> int:
    """The deterministic trace id of client ``client_id``'s op ``timestamp``."""
    if client_id < 0 or timestamp < 0:
        raise ConfigurationError(
            f"trace ids need non-negative client/timestamp, got "
            f"({client_id}, {timestamp})"
        )
    return (client_id << TIMESTAMP_BITS) | (timestamp & _TIMESTAMP_MASK)


def trace_client(trace_id: int) -> int:
    """The client index encoded in ``trace_id``."""
    return trace_id >> TIMESTAMP_BITS


def trace_timestamp(trace_id: int) -> int:
    """The protocol timestamp encoded in ``trace_id``."""
    return trace_id & _TIMESTAMP_MASK


class SpanLog:
    """An append-only list of span records with JSONL and Chrome export.

    Records are plain dicts::

        {"ph": "X", "name": "op:write", "proc": "client", "ts": 3.0,
         "dur": 1.5, "trace_id": 17, "args": {...}}

    ``ts``/``dur`` are in the emitting side's time units (virtual time on
    the simulator, UNIX seconds over TCP); the Chrome export scales them
    to microseconds, which the viewers expect.  ``proc`` names the
    reporting component (``"client"``, ``"server:S"``, ...) and becomes a
    trace-viewer process; the client encoded in ``trace_id`` becomes the
    thread row, so one operation reads left-to-right across processes on
    the same row index.
    """

    def __init__(self) -> None:
        self.records: list[dict] = []

    def __len__(self) -> int:
        return len(self.records)

    def span(
        self,
        name: str,
        *,
        ts: float,
        dur: float,
        trace_id: int | None = None,
        proc: str = "client",
        args: dict | None = None,
    ) -> dict:
        """Record a complete span (``ph="X"``) and return the record."""
        record = {
            "ph": "X",
            "name": name,
            "proc": proc,
            "ts": ts,
            "dur": dur,
            "trace_id": trace_id,
            "args": args or {},
        }
        self.records.append(record)
        return record

    def instant(
        self,
        name: str,
        *,
        ts: float,
        trace_id: int | None = None,
        proc: str = "client",
        args: dict | None = None,
    ) -> dict:
        """Record a zero-duration instant event (``ph="i"``)."""
        record = {
            "ph": "i",
            "name": name,
            "proc": proc,
            "ts": ts,
            "trace_id": trace_id,
            "args": args or {},
        }
        self.records.append(record)
        return record

    def for_trace(self, trace_id: int) -> list[dict]:
        """Every record carrying ``trace_id``, in emission order."""
        return [r for r in self.records if r.get("trace_id") == trace_id]

    def write_jsonl(self, path) -> int:
        """Write one JSON record per line to ``path``; returns the count."""
        with open(path, "w") as fh:
            for record in self.records:
                fh.write(json.dumps(record) + "\n")
        return len(self.records)

    def chrome_events(self) -> list[dict]:
        """The records as Chrome trace-event dicts (timestamps in µs).

        Each distinct ``proc`` becomes a numbered pid with a
        ``process_name`` metadata event; the trace id's client index is
        the tid, so each client gets its own row within the process.
        """
        pids: dict[str, int] = {}
        events: list[dict] = []
        for record in self.records:
            proc = record["proc"]
            pid = pids.get(proc)
            if pid is None:
                pid = pids[proc] = len(pids) + 1
                events.append(
                    {
                        "ph": "M",
                        "name": "process_name",
                        "pid": pid,
                        "tid": 0,
                        "args": {"name": proc},
                    }
                )
            trace_id = record.get("trace_id")
            tid = trace_client(trace_id) if trace_id is not None else 0
            event = {
                "ph": record["ph"],
                "name": record["name"],
                "pid": pid,
                "tid": tid,
                "ts": record["ts"] * 1_000_000.0,
                "args": dict(record["args"], trace_id=trace_id),
            }
            if record["ph"] == "X":
                event["dur"] = record["dur"] * 1_000_000.0
            else:
                event["s"] = "t"  # instant scope: thread
            events.append(event)
        return events

    def write_chrome(self, path) -> int:
        """Write the Chrome trace-event JSON file; returns the event count."""
        events = self.chrome_events()
        with open(path, "w") as fh:
            json.dump({"traceEvents": events}, fh)
        return len(events)
