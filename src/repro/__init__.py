"""FAUST — Fail-Aware Untrusted Storage (Cachin, Keidar, Shraer; DSN 2009).

A complete reproduction: the USTOR weak fork-linearizable storage protocol
(Algorithms 1-2), the FAUST fail-aware layer (Section 6), the consistency
theory of Sections 2-4 as executable checkers, baselines, Byzantine server
attacks, and the simulation substrate everything runs on.

Quickstart (see :mod:`repro.api` for the full facade)::

    from repro.api import FaustBackend, SystemConfig

    system = FaustBackend().open_system(SystemConfig(num_clients=3, seed=7))
    alice, bob, carlos = system.sessions()
    t = alice.write_sync(b"draft-1")
    print(bob.read_sync(0), alice.wait_for_stability(t))

See README.md for the full tour and DESIGN.md for the architecture.
"""

from repro.common import BOTTOM, OpKind
from repro.consistency import (
    CheckResult,
    check_causal_consistency,
    check_fork_linearizability_exhaustive,
    check_linearizability,
    check_linearizability_exhaustive,
    check_weak_fork_linearizability_exhaustive,
    validate_weak_fork_linearizability,
)
from repro.history import History, HistoryRecorder, Operation
from repro.ustor import UstorClient, UstorServer, Version

__version__ = "1.0.0"

__all__ = [
    "BOTTOM",
    "CheckResult",
    "History",
    "HistoryRecorder",
    "OpKind",
    "Operation",
    "UstorClient",
    "UstorServer",
    "Version",
    "__version__",
    "check_causal_consistency",
    "check_fork_linearizability_exhaustive",
    "check_linearizability",
    "check_linearizability_exhaustive",
    "check_weak_fork_linearizability_exhaustive",
    "validate_weak_fork_linearizability",
]
