"""A wall-clock scheduler with the simulator's timer surface.

Protocol components never import the sim :class:`~repro.sim.scheduler.
Scheduler` type — they call ``scheduler.now``, ``scheduler.rng`` and
``scheduler.schedule(delay, fn, *args)`` and keep the returned handle to
cancel it.  :class:`RealtimeScheduler` provides exactly that surface on
top of an asyncio event loop, so the Session flush timers, the
``PeriodicTimer`` driving incremental audits, and client deadline logic
run unchanged against real time.

``now`` is seconds since the scheduler's epoch (loop creation), so
timestamps recorded in histories and traces start near zero like the
simulator's — one simulated time unit maps to one wall-clock second.
"""

from __future__ import annotations

import asyncio
import random
from typing import TYPE_CHECKING, Any, Callable

from repro.common.errors import SimulationError

if TYPE_CHECKING:
    from repro.net.client import NetRuntime


class RealtimeHandle:
    """Cancellation handle mirroring the sim scheduler's ``EventHandle``."""

    __slots__ = ("_timer", "time")

    def __init__(self, timer: asyncio.TimerHandle, time: float) -> None:
        self._timer = timer
        self.time = time

    def cancel(self) -> None:
        self._timer.cancel()

    @property
    def cancelled(self) -> bool:
        return self._timer.cancelled()


class RealtimeScheduler:
    """Wall-clock implementation of the scheduler seam.

    ``run``/``run_until`` exist for facade compatibility (the cluster
    system delegates to its scheduler); they pump the attached runtime's
    event loop rather than draining a virtual event queue.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop, *, seed: int = 0) -> None:
        self.loop = loop
        self.rng = random.Random(seed)
        self.events_processed = 0
        self._epoch = loop.time()
        self._runtime: "NetRuntime | None" = None

    # -- time ---------------------------------------------------------- #

    @property
    def now(self) -> float:
        return self.loop.time() - self._epoch

    # -- timers -------------------------------------------------------- #

    def schedule(
        self, delay: float, fn: Callable[..., Any], *args: Any
    ) -> RealtimeHandle:
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} into the past")

        def fire() -> None:
            self.events_processed += 1
            fn(*args)

        timer = self.loop.call_later(delay, fire)
        return RealtimeHandle(timer, self.now + delay)

    def schedule_at(
        self, time: float, fn: Callable[..., Any], *args: Any
    ) -> RealtimeHandle:
        return self.schedule(max(0.0, time - self.now), fn, *args)

    # -- facade compatibility ------------------------------------------ #

    def attach_runtime(self, runtime: "NetRuntime") -> None:
        self._runtime = runtime

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float | None = None,
        max_events: int | None = None,
    ) -> bool:
        if self._runtime is None:
            raise SimulationError(
                "RealtimeScheduler.run_until needs an attached NetRuntime"
            )
        return self._runtime.pump_until(predicate, timeout)

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        if until is None:
            raise SimulationError(
                "a wall-clock scheduler cannot run to quiescence; "
                "use run_until with a timeout"
            )
        deadline = until
        self.run_until(lambda: self.now >= deadline, timeout=None)
