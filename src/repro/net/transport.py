"""The transport seam between protocol nodes and message delivery.

Protocol objects (:class:`~repro.sim.process.Node` subclasses) never open
sockets or schedule events themselves; they call ``self.send(dst, msg)``
and receive ``on_message(src, msg)`` callbacks.  Everything in between is
a *transport*, and this module names that seam so it can be implemented
twice:

* :class:`repro.sim.network.Network` — the discrete-event simulator's
  in-memory message bus (deterministic latency, partitions, batching);
* :class:`repro.net.client.ClientTransport` — real asyncio TCP streams
  carrying length-prefixed TLV frames to server processes.

The protocol below is structural (:class:`typing.Protocol`): the sim
``Network`` already satisfies it byte-for-byte unchanged, which is the
point — the refactor extracts an interface, it does not fork behaviour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

if TYPE_CHECKING:
    from repro.sim.process import Node
    from repro.sim.trace import SimTrace


@runtime_checkable
class Transport(Protocol):
    """What a protocol node needs from its message layer.

    ``register`` wires a node in (binding it to a scheduler and this
    transport); ``send`` moves one message from a named source to a named
    destination; ``trace`` exposes the per-run message/annotation log
    (``None`` when tracing is off) that clients use for fail-notification
    notes.
    """

    def register(self, node: "Node") -> None: ...

    def send(self, src: str, dst: str, message: Any) -> None: ...

    @property
    def trace(self) -> "SimTrace | None": ...
