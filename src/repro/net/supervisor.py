"""OS-process lifecycle for server hosts (``repro serve`` children).

:class:`ServerProcess` spawns one ``python -m repro serve`` child,
waits for its ``LISTENING <host> <port>`` readiness line, and exposes
the bound endpoint; :class:`ClusterSupervisor` runs one such process
per shard (the ``repro serve-cluster`` launcher).  Both are used by the
multi-process integration tests and the CI smoke run, and both are
plain context managers so a crashed test never leaks a child.

Readiness is line-based on purpose: parsing the child's stdout is the
only mechanism that works identically for a test, a shell script and a
CI step, and the ephemeral-port case (``--port 0``) *requires* reading
the bound port back from the child.
"""

from __future__ import annotations

import os
import queue
import subprocess
import sys
import threading
import time

import repro
from repro.common.errors import ConfigurationError

__all__ = ["ServerProcess", "ClusterSupervisor"]


def _child_environment() -> dict[str, str]:
    """The child's environment, with ``repro`` importable.

    The repo is run from a source tree (not installed), so the package
    root must be on the child's ``PYTHONPATH`` regardless of how the
    parent found it.
    """
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing
        else package_root + os.pathsep + existing
    )
    return env


class ServerProcess:
    """One ``python -m repro serve`` child process.

    ``port=0`` asks the OS for an ephemeral port; the bound port is read
    back from the child's readiness line and exposed via ``endpoint``.
    """

    def __init__(
        self,
        num_clients: int,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        server: str = "correct",
        server_name: str = "S",
        storage: str = "memory",
        extra_args: tuple[str, ...] = (),
    ) -> None:
        self.num_clients = num_clients
        self.host = host
        self.port = port
        self.server = server
        self.server_name = server_name
        self.storage = storage
        self.extra_args = tuple(extra_args)
        self.process: subprocess.Popen | None = None
        self._lines: "queue.Queue[str | None]" = queue.Queue()
        self._reader: threading.Thread | None = None

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    def command(self) -> list[str]:
        return [
            sys.executable, "-m", "repro", "serve",
            "--clients", str(self.num_clients),
            "--host", self.host,
            "--port", str(self.port),
            "--server", self.server,
            "--server-name", self.server_name,
            "--storage", self.storage,
            *self.extra_args,
        ]

    def start(self, timeout: float = 20.0) -> str:
        """Spawn the child and block until it listens; returns the endpoint."""
        if self.process is not None:
            raise ConfigurationError("server process already started")
        self.process = subprocess.Popen(
            self.command(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=_child_environment(),
        )
        self._reader = threading.Thread(target=self._pump_stdout, daemon=True)
        self._reader.start()
        deadline = time.monotonic() + timeout
        seen: list[str] = []
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.stop()
                raise ConfigurationError(
                    f"server {self.server_name!r} did not report LISTENING "
                    f"within {timeout:g}s; output so far: {seen!r}"
                )
            try:
                line = self._lines.get(timeout=min(remaining, 0.25))
            except queue.Empty:
                if self.process.poll() is not None and self._lines.empty():
                    raise ConfigurationError(
                        f"server process exited with code "
                        f"{self.process.returncode} before listening; "
                        f"output: {seen!r}"
                    )
                continue
            if line is None:  # EOF: the child died
                code = self.process.wait()
                raise ConfigurationError(
                    f"server process exited with code {code} before "
                    f"listening; output: {seen!r}"
                )
            seen.append(line)
            parts = line.split()
            if len(parts) == 3 and parts[0] == "LISTENING":
                self.host = parts[1]
                self.port = int(parts[2])
                return self.endpoint

    def _pump_stdout(self) -> None:
        assert self.process is not None and self.process.stdout is not None
        for line in self.process.stdout:
            self._lines.put(line.strip())
        self._lines.put(None)

    def stop(self, timeout: float = 5.0) -> None:
        """Terminate the child (escalating to kill) and reap it."""
        if self.process is None:
            return
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
                self.process.kill()
                self.process.wait()
        if self._reader is not None:
            self._reader.join(timeout=1.0)

    def __enter__(self) -> "ServerProcess":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


class ClusterSupervisor:
    """One server process per shard × replica (``serve-cluster``).

    Shard ``i`` serves as ``S{i}`` with its own storage: ``{shard}`` and
    ``{replica}`` placeholders in ``storage`` (e.g.
    ``dir:/var/faust/shard-{shard}-r{replica}``) are expanded per process
    so durable processes never share a directory.  With ``replicas > 1``
    each shard becomes a replica group ``S{i}/r0`` .. ``S{i}/r{k-1}`` of
    independent processes (``endpoints`` stays flat, shard-major then
    replica-minor — the order the TCP client layer expects), and
    ``counter`` arms every process's monotonic counter
    (:mod:`repro.replica`).
    """

    def __init__(
        self,
        num_clients: int,
        num_shards: int,
        *,
        host: str = "127.0.0.1",
        base_port: int = 0,
        storage: str = "memory",
        servers: dict[int, str] | None = None,
        replicas: int = 1,
        counter: str | None = None,
    ) -> None:
        if num_shards < 1:
            raise ConfigurationError("a cluster needs at least one shard")
        if replicas < 1:
            raise ConfigurationError("a replica group needs at least one replica")
        extra_args = ("--counter", counter) if counter is not None else ()
        self.processes = [
            ServerProcess(
                num_clients,
                host=host,
                port=(base_port + shard * replicas + replica) if base_port else 0,
                server=(servers or {}).get(shard, "correct"),
                server_name=(
                    f"S{shard}" if replicas == 1 else f"S{shard}/r{replica}"
                ),
                storage=storage.format(shard=shard, replica=replica),
                extra_args=extra_args,
            )
            for shard in range(num_shards)
            for replica in range(replicas)
        ]

    @property
    def endpoints(self) -> tuple[str, ...]:
        return tuple(proc.endpoint for proc in self.processes)

    def start(self, timeout: float = 20.0) -> tuple[str, ...]:
        """Start every shard process; stops them all if any fails."""
        try:
            for proc in self.processes:
                proc.start(timeout=timeout)
        except ConfigurationError:
            self.stop()
            raise
        return self.endpoints

    def stop(self) -> None:
        for proc in self.processes:
            proc.stop()

    def __enter__(self) -> "ClusterSupervisor":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
