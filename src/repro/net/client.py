"""Asyncio client runtime: real connections behind the unchanged facade.

The protocol clients (:class:`~repro.ustor.client.UstorClient`) and the
session layer above them are event-driven and never block, so moving
them onto sockets needs no changes there — only a transport whose
``send`` writes frames, and a scheduler whose ``now`` is a wall clock.
:class:`NetSystem` assembles both and mirrors the surface of the
simulator's :class:`~repro.workloads.runner.StorageSystem`, which is
what keeps ``Session``/``OpHandle``, the incremental auditors, the
workload driver and the consistency checkers working unchanged.

Reliability bridge
------------------

The model assumes reliable FIFO channels; TCP provides that only while
one connection lives.  Each client therefore keeps an ``unacked`` list
of every frame sent since its last received REPLY and retransmits it
after reconnecting (the server deduplicates — see
:mod:`repro.net.server`).  A REPLY empties the list *before* it is
delivered, so the COMMIT (and any next SUBMIT) the delivery triggers
starts the next unacked window.

Waiting
-------

``run_until(predicate, timeout)`` pumps the event loop until the
predicate holds or ``timeout`` wall-clock seconds pass, waking on every
received frame.  Session code maps a ``False`` return to
:class:`~repro.api.errors.OperationTimeout` — the paper's timed model
(operations complete or time out in bounded wall-clock time) lands on
exactly the same exception the simulated deadline used.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import (
    ConfigurationError,
    DecodeError,
    EncodingError,
    SimulationError,
)
from repro.crypto.keystore import KeyStore
from repro.history.history import History
from repro.history.recorder import HistoryRecorder
from repro.net.framing import MAX_FRAME_BYTES, encode_frame, read_frame
from repro.net.realtime import RealtimeScheduler
from repro.obs.registry import SIZE_BUCKETS, get_registry
from repro.net.wire import (
    decode_payload,
    hello_payload,
    message_to_payload,
    payload_to_message,
)
from repro.sim.trace import SimTrace
from repro.ustor.client import UstorClient
from repro.ustor.messages import ReplyMessage

__all__ = [
    "NetRuntime",
    "ClientConnection",
    "ClientTransport",
    "NetSystem",
    "ReconnectBackoff",
    "open_tcp_system",
    "parse_endpoint",
]


class ReconnectBackoff:
    """Exponential reconnect backoff with deterministic full-range jitter.

    Consecutive failed attempts wait ``base * multiplier**attempt``
    capped at ``cap``, each scaled by a jitter factor drawn uniformly
    from ``[0.5, 1.0)`` — enough spread that a fleet of clients whose
    server just died does not retry in lockstep (the reconnect
    thundering herd), while keeping a floor of half the nominal delay so
    backoff still backs off.  The jitter stream is ``random.Random(seed)``,
    so a seeded deployment replays the exact same delays.

    :meth:`reset` (called after a successful handshake) starts the
    schedule over, so one long outage does not penalize the next blip.
    """

    def __init__(
        self,
        base: float = 0.05,
        *,
        multiplier: float = 2.0,
        cap: float = 2.0,
        seed: int = 0,
    ) -> None:
        if base <= 0:
            raise ConfigurationError("backoff base must be positive")
        if multiplier < 1.0:
            raise ConfigurationError("backoff multiplier must be >= 1")
        if cap < base:
            raise ConfigurationError("backoff cap must be >= base")
        self._base = base
        self._multiplier = multiplier
        self._cap = cap
        self._rng = random.Random(seed)
        self._attempt = 0

    @property
    def attempt(self) -> int:
        """Failed attempts since the last :meth:`reset`."""
        return self._attempt

    def next_delay(self) -> float:
        """The delay to sleep before the next reconnect attempt."""
        ceiling = min(self._cap, self._base * self._multiplier**self._attempt)
        self._attempt += 1
        return ceiling * (0.5 + 0.5 * self._rng.random())

    def reset(self) -> None:
        """A connection succeeded; start the schedule over."""
        self._attempt = 0


def parse_endpoint(endpoint: str) -> tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` with loud failure."""
    host, sep, port = endpoint.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ConfigurationError(
            f"endpoints are 'host:port' strings, got {endpoint!r}"
        )
    return host, int(port)


class NetRuntime:
    """Owns the event loop and the pump that stands in for ``run_until``."""

    def __init__(self, *, seed: int = 0) -> None:
        self.loop = asyncio.new_event_loop()
        self.scheduler = RealtimeScheduler(self.loop, seed=seed)
        self.scheduler.attach_runtime(self)
        self._wake: asyncio.Event | None = None
        self._closed = False

    def wake(self) -> None:
        """Nudge a pending :meth:`pump_until` (called on frame receipt)."""
        if self._wake is not None:
            self._wake.set()

    def pump_until(
        self, predicate: Callable[[], bool], timeout: float | None = None
    ) -> bool:
        """Drive the loop until ``predicate()`` or ``timeout`` seconds."""
        if self.loop.is_running():
            raise SimulationError(
                "re-entrant wait: run_until called from inside the event loop"
            )
        deadline = None if timeout is None else self.scheduler.now + timeout

        async def pump() -> bool:
            if self._wake is None:
                self._wake = asyncio.Event()
            while True:
                if predicate():
                    return True
                remaining = None
                if deadline is not None:
                    remaining = deadline - self.scheduler.now
                    if remaining <= 0:
                        return False
                self._wake.clear()
                # The wake event covers frame receipt; the short fallback
                # poll covers everything else (timers, connects, deadline).
                delay = 0.05 if remaining is None else min(0.05, remaining)
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=delay)
                except asyncio.TimeoutError:
                    pass

        return self.loop.run_until_complete(pump())

    def run_coroutine(self, coro):
        """Run one coroutine to completion on the runtime's loop."""
        return self.loop.run_until_complete(coro)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.loop.close()


class ClientConnection:
    """One client's TCP link to one server, with reconnect + retransmit."""

    def __init__(
        self,
        runtime: NetRuntime,
        client_id: int,
        num_clients: int,
        endpoint: str,
        server_name: str,
        *,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        reconnect_delay: float = 0.05,
        reconnect_seed: int | None = None,
        sim_trace: SimTrace | None = None,
        trace_writer=None,
        trace_s2c: bool = True,
    ) -> None:
        self._runtime = runtime
        self.client_id = client_id
        self._n = num_clients
        self.host, self.port = parse_endpoint(endpoint)
        self.server_name = server_name
        self._max_frame = max_frame_bytes
        self._reconnect_delay = reconnect_delay
        # Per-client jitter stream: default seed keys off the client id
        # so a fleet sharing one config still de-synchronizes.
        self._backoff = ReconnectBackoff(
            reconnect_delay,
            seed=client_id if reconnect_seed is None else reconnect_seed,
        )
        self._sim_trace = sim_trace
        self._trace_writer = trace_writer
        #: With a replica group the raw per-replica REPLY stream is not
        #: the client's logical input (the quorum winner is), so inbound
        #: recording moves to the resolution hook and this stays False.
        self._trace_s2c = trace_s2c
        self._node: UstorClient | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._task: asyncio.Task | None = None
        self._closed = False
        self.connected = False
        #: A fatal handshake mismatch (wrong server / population); set
        #: once, stops the reconnect loop for good.
        self.error: str | None = None
        #: Frames sent since the last REPLY received, for retransmission.
        self.unacked: list[bytes] = []
        self.reconnects = 0
        self.frames_sent = 0
        self.frames_received = 0
        # Registry handles captured once: aggregate transport counters
        # across every connection (no-op instruments when metrics are off).
        registry = get_registry()
        self._obs_sent = registry.counter("net.frames_sent")
        self._obs_received = registry.counter("net.frames_received")
        self._obs_reconnects = registry.counter("net.reconnects")
        self._obs_retransmissions = registry.counter("net.retransmissions")
        self._obs_frame_bytes = registry.histogram(
            "net.frame_bytes", SIZE_BUCKETS
        )

    def attach(self, node: UstorClient) -> None:
        self._node = node

    def start(self) -> None:
        self._task = self._runtime.loop.create_task(self._run())

    # -- outbound ------------------------------------------------------ #

    def send_message(self, message) -> None:
        payload = message_to_payload(message)
        self.unacked.append(payload)
        if self._trace_writer is not None:
            self._trace_writer.frame("c2s", self.client_id, payload, retx=False)
        if self._sim_trace is not None:
            now = self._runtime.scheduler.now
            self._sim_trace.record_message(
                now, now, self._node.name, self.server_name,
                getattr(message, "kind", type(message).__name__),
                len(payload),
            )
        self._write(payload)

    def _write(self, payload: bytes) -> None:
        if self._writer is None or self._writer.is_closing():
            return  # queued in unacked; the reconnect flush will carry it
        try:
            self._writer.write(encode_frame(payload, max_bytes=self._max_frame))
            self.frames_sent += 1
            self._obs_sent.inc()
            self._obs_frame_bytes.observe(len(payload))
        except (ConnectionError, OSError):  # pragma: no cover - close race
            pass

    # -- connection loop ----------------------------------------------- #

    async def _run(self) -> None:
        first_attempt = True
        while not self._closed:
            if not first_attempt:
                await asyncio.sleep(self._backoff.next_delay())
            first_attempt = False
            try:
                reader, writer = await asyncio.open_connection(self.host, self.port)
            except (ConnectionError, OSError):
                continue
            try:
                writer.write(
                    encode_frame(hello_payload(self.client_id, self._n))
                )
                welcome = await read_frame(reader, max_bytes=self._max_frame)
                if welcome is None:
                    continue
                record = decode_payload(welcome, max_bytes=self._max_frame)
                if not (
                    record[0] == "WELCOME"
                    and len(record) == 3
                    and record[1] == self.server_name
                    and record[2] == self._n
                ):
                    # A mis-wired deployment, not a transient fault:
                    # reconnecting will not fix it, so stop for good.
                    self.error = (
                        f"endpoint {self.host}:{self.port} answered as "
                        f"{record[1:]!r}; expected server "
                        f"{self.server_name!r} with {self._n} client(s)"
                    )
                    self._closed = True
                    return
                self._writer = writer
                self.connected = True
                self._backoff.reset()
                self._runtime.wake()
                for payload in list(self.unacked):
                    # Retransmissions are flagged so the replayer knows the
                    # logical message was already recorded once.
                    if self._trace_writer is not None:
                        self._trace_writer.frame(
                            "c2s", self.client_id, payload, retx=True
                        )
                    writer.write(
                        encode_frame(payload, max_bytes=self._max_frame)
                    )
                if self.unacked:
                    self.reconnects += 1
                    self._obs_reconnects.inc()
                    self._obs_retransmissions.inc(len(self.unacked))
                await writer.drain()
                while True:
                    payload = await read_frame(reader, max_bytes=self._max_frame)
                    if payload is None:
                        break
                    self._on_payload(payload)
            except (ConnectionError, OSError):
                pass
            except (DecodeError, EncodingError):
                # Undecodable bytes from the (untrusted) server: note it,
                # drop the connection, let deadlines do their job.
                if self._sim_trace is not None and self._node is not None:
                    self._sim_trace.note(
                        self._runtime.scheduler.now,
                        self._node.name,
                        "net-malformed-frame",
                    )
            finally:
                self.connected = False
                self._writer = None
                writer.close()

    def _on_payload(self, payload: bytes) -> None:
        self.frames_received += 1
        self._obs_received.inc()
        if self._trace_writer is not None and self._trace_s2c:
            self._trace_writer.frame("s2c", self.client_id, payload, retx=False)
        message = payload_to_message(payload)
        if self._sim_trace is not None:
            now = self._runtime.scheduler.now
            self._sim_trace.record_message(
                now, now, self.server_name, self._node.name,
                getattr(message, "kind", type(message).__name__),
                len(payload),
            )
        if isinstance(message, ReplyMessage):
            # Everything up to here is answered; the COMMIT/next SUBMIT the
            # delivery below triggers opens the next unacked window.
            self.unacked.clear()
        if self._node is not None:
            self._node.deliver(self.server_name, message)
        self._runtime.wake()

    # -- teardown ------------------------------------------------------ #

    async def aclose(self) -> None:
        self._closed = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, Exception):
                pass
        if self._writer is not None:
            self._writer.close()
            self._writer = None


class ClientTransport:
    """The :class:`~repro.net.transport.Transport` over per-client sockets.

    Routes ``send(src, dst, ...)`` to the connection registered for the
    ``(client, server)`` pair — one client may hold several connections
    on a sharded deployment.
    """

    def __init__(self, runtime: NetRuntime, trace: SimTrace | None = None) -> None:
        self._runtime = runtime
        self._trace = trace
        self._routes: dict[tuple[str, str], ClientConnection] = {}

    @property
    def trace(self) -> SimTrace | None:
        return self._trace

    def register(self, node) -> None:
        node.bind(self._runtime.scheduler, self)

    def add_route(self, client_name: str, connection: ClientConnection) -> None:
        self._routes[(client_name, connection.server_name)] = connection

    def send(self, src: str, dst: str, message) -> None:
        route = self._routes.get((src, dst))
        if route is None:
            raise ConfigurationError(
                f"no connection from {src!r} to {dst!r}"
            )
        route.send_message(message)

    def send_multi(self, src: str, dsts, message) -> None:
        """Fan one message out to several servers (replica broadcast).

        TCP gives each replica its own connection, so unlike the
        simulator's shared-sample :meth:`Network.send_multi` there is no
        latency stream to share — this is exactly N sends."""
        for dst in dsts:
            self.send(src, dst, message)


@dataclass
class NetSystem:
    """A real-transport deployment behind the ``StorageSystem`` surface."""

    runtime: NetRuntime
    scheduler: RealtimeScheduler
    network: ClientTransport
    clients: list
    recorder: HistoryRecorder
    trace: SimTrace
    keystore: KeyStore
    connections: list[ClientConnection]
    default_timeout: float = 30.0
    #: No co-located server object — servers are separate processes (or
    #: loopback hosts listed in ``hosts``); ``None`` keeps facade code
    #: that probes ``system.server`` honest about that.
    server: None = None
    offline: None = None
    batching: None = None
    faust_clients: list = field(default_factory=list)
    #: Loopback hosts owned by this system (closed with it); empty when
    #: the servers are real separate processes.
    hosts: list = field(default_factory=list)
    trace_writer: object | None = None
    #: Whether :meth:`close` also closes the runtime's event loop.  False
    #: when the runtime was injected (loopback tests share one runtime
    #: between host and clients and own its lifetime themselves).
    owns_runtime: bool = True
    #: Optional :class:`repro.obs.tracing.SpanLog` shared with the clients
    #: (and read by sessions) when causal tracing is on.
    span_log: object | None = None
    #: Client-side ``/metrics`` endpoint, once :meth:`start_metrics` ran.
    metrics_server: object | None = None

    # -- running ------------------------------------------------------- #

    def run_until(
        self, predicate: Callable[[], bool], timeout: float | None = None
    ) -> bool:
        return self.runtime.pump_until(predicate, timeout)

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Pump for ``until`` seconds of wall-clock time (facade parity)."""
        if until is None:
            raise ConfigurationError(
                "a real deployment cannot run to event-queue exhaustion; "
                "give run() a wall-clock bound or use run_until()"
            )
        deadline = until
        self.runtime.pump_until(lambda: self.scheduler.now >= deadline, None)
        return self.scheduler.events_processed

    def run_until_quiescent(
        self, check_every: float = 0.05, timeout: float = 30.0
    ) -> None:
        def quiet() -> bool:
            return all(
                not getattr(c, "busy", False)
                for c in self.clients
                if not c.crashed
            )

        self.run_until(quiet, timeout=timeout)

    # -- introspection (StorageSystem parity) -------------------------- #

    def history(self) -> History:
        return self.recorder.history()

    def attach_audit(
        self,
        every: float = 1.0,
        checks: tuple[str, ...] = ("linearizability", "causal"),
    ):
        from repro.workloads.runner import IncrementalAuditor

        return IncrementalAuditor(self, every=every, checks=checks)

    def client(self, client_id: int):
        return self.clients[client_id]

    @property
    def now(self) -> float:
        return self.scheduler.now

    # -- lifecycle ----------------------------------------------------- #

    def wait_connected(self, timeout: float = 5.0) -> None:
        """Block until every connection finished its handshake."""
        ok = self.run_until(
            lambda: any(c.error for c in self.connections)
            or all(c.connected for c in self.connections),
            timeout=timeout,
        )
        errors = sorted({c.error for c in self.connections if c.error})
        if errors:
            raise ConfigurationError("; ".join(errors))
        if not ok:
            missing = [
                f"{c.host}:{c.port}" for c in self.connections if not c.connected
            ]
            raise ConfigurationError(
                f"could not connect to {sorted(set(missing))} "
                f"within {timeout:g}s"
            )

    def start_metrics(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        on_scrape: Callable[[], None] | None = None,
    ):
        """Expose the current registry on an HTTP ``/metrics`` endpoint.

        Runs on this system's event loop; returns the started
        :class:`~repro.obs.exposition.MetricsHTTPServer` (its ``port``
        resolves the ephemeral bind).  Stopped again by :meth:`close`.
        """
        from repro.obs.exposition import MetricsHTTPServer

        server = MetricsHTTPServer(
            get_registry(), host=host, port=port, on_scrape=on_scrape
        )
        self.runtime.run_coroutine(server.start())
        self.metrics_server = server
        return server

    def close(self) -> None:
        """Tear down connections, loopback hosts, trace and loop."""

        async def shutdown() -> None:
            for connection in self.connections:
                await connection.aclose()
            for host in self.hosts:
                await host.stop()
            if self.metrics_server is not None:
                await self.metrics_server.stop()

        if not self.runtime.loop.is_closed():
            self.runtime.run_coroutine(shutdown())
        if self.trace_writer is not None:
            self.trace_writer.close()
        if self.owns_runtime:
            self.runtime.close()

    def __enter__(self) -> "NetSystem":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open_tcp_system(
    num_clients: int,
    endpoints: tuple[str, ...] | list[str] | str,
    *,
    seed: int = 0,
    scheme: str = "hmac",
    server_name: str = "S",
    default_timeout: float = 30.0,
    commit_piggyback: bool = False,
    trace_path: str | None = None,
    runtime: NetRuntime | None = None,
    connect_timeout: float | None = 5.0,
    trace_ids: bool = False,
    span_log=None,
    replicas: int = 1,
    quorum: int | None = None,
    counter: bool = False,
) -> NetSystem:
    """Open a single-shard deployment over real TCP.

    ``endpoints`` must name one ``host:port`` per replica — exactly one
    for the paper's single server (the sharded form lives in the cluster
    layer).  Keys are deterministic from ``(scheme, num_clients)`` — the
    same determinism that makes simulated runs reproducible makes the
    server processes and the replayer agree with these clients about
    every signature.

    With ``replicas > 1`` each client opens one connection per replica
    process (named ``S/r0`` .. ``S/r{k-1}``) and resolves replies through
    a client-side :class:`~repro.replica.coordinator.QuorumCoordinator`;
    ``counter=True`` additionally arms the
    :class:`~repro.replica.counter.CounterVerifier` against the counter
    attestations the server processes attach.  A wire trace then records
    the client's *logical* streams: outbound frames once per broadcast
    (on replica ``r0``'s connection) and inbound replies at quorum
    resolution — the winner the protocol engine consumed, not any one
    replica's raw arrivals (a round can resolve before ``r0``'s reply
    lands, and the raw stream would replay out of order).  The
    single-server replayer works unchanged on that trace.

    ``trace_ids=True`` stamps SUBMIT/COMMIT with deterministic causal
    trace ids (recorded in the wire-trace header so replay stays
    byte-identical); ``span_log`` shares one
    :class:`~repro.obs.tracing.SpanLog` across the clients and sessions.
    """
    if isinstance(endpoints, str):
        endpoints = tuple(part for part in endpoints.split(",") if part)
    if replicas == 1 and len(endpoints) != 1:
        raise ConfigurationError(
            f"a single-server system takes exactly one endpoint, "
            f"got {list(endpoints)!r}"
        )
    if len(endpoints) != replicas:
        raise ConfigurationError(
            f"a replica group needs one endpoint per replica: "
            f"replicas={replicas} but {len(endpoints)} endpoint(s) given"
        )
    replica_names = (
        [server_name]
        if replicas == 1
        else [f"{server_name}/r{k}" for k in range(replicas)]
    )
    owns_runtime = runtime is None
    runtime = runtime or NetRuntime(seed=seed)
    sim_trace = SimTrace()
    transport = ClientTransport(runtime, trace=sim_trace)
    keystore = KeyStore(num_clients, scheme=scheme)
    recorder = HistoryRecorder()
    trace_writer = None
    if trace_path is not None:
        from repro.net.trace import WireTraceWriter

        trace_writer = WireTraceWriter(
            trace_path,
            clock=lambda: runtime.scheduler.now,
            num_clients=num_clients,
            scheme=scheme,
            # The first replica's view: with replicas > 1 only its
            # connections carry the frame hook, and the replayer talks to
            # it by name.
            server_name=replica_names[0],
            endpoints=tuple(endpoints),
            commit_piggyback=commit_piggyback,
            trace_ids=trace_ids,
        )
        recorder.add_listener(trace_writer)
    replica_kwargs: dict = {}
    if replicas > 1:
        replica_kwargs = {
            "replica_servers": tuple(replica_names),
            "quorum": quorum,
            "counter": counter,
        }
    elif counter:
        replica_kwargs = {"counter": True}
    clients: list[UstorClient] = []
    connections: list[ClientConnection] = []
    for i in range(num_clients):
        client = UstorClient(
            client_id=i,
            num_clients=num_clients,
            signer=keystore.signer(i),
            server_name=replica_names[0],
            recorder=recorder,
            commit_piggyback=commit_piggyback,
            trace_ids=trace_ids,
            **replica_kwargs,
        )
        client.span_log = span_log
        if trace_writer is not None and replicas > 1:
            # The logical inbound stream: the quorum winner at resolution
            # time, recorded in place of any raw per-replica arrival.
            def record_resolved(message, _client_id=i):
                trace_writer.frame(
                    "s2c", _client_id, message_to_payload(message), retx=False
                )

            client.resolved_reply_hook = record_resolved
        transport.register(client)
        for k, (endpoint, name) in enumerate(zip(endpoints, replica_names)):
            connection = ClientConnection(
                runtime,
                i,
                num_clients,
                endpoint,
                name,
                sim_trace=sim_trace,
                # Distinct deterministic jitter stream per (client, replica)
                # link, reproducible from the system seed.
                reconnect_seed=(seed << 16) ^ (i * len(endpoints) + k),
                trace_writer=trace_writer if k == 0 else None,
                trace_s2c=replicas == 1,
            )
            connection.attach(client)
            transport.add_route(client.name, connection)
            connection.start()
            connections.append(connection)
        clients.append(client)
    system = NetSystem(
        runtime=runtime,
        scheduler=runtime.scheduler,
        network=transport,
        clients=clients,
        recorder=recorder,
        trace=sim_trace,
        keystore=keystore,
        connections=connections,
        default_timeout=default_timeout,
        trace_writer=trace_writer,
        owns_runtime=owns_runtime,
        span_log=span_log,
    )
    if connect_timeout is not None:
        try:
            system.wait_connected(timeout=connect_timeout)
        except ConfigurationError:
            system.close()
            raise
    return system
