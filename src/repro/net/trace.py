"""Append-only JSONL wire traces of real runs, and their sim replay.

Every real (TCP) run can be recorded as one JSON-lines file holding the
run's parameters, every operation invocation/response the history
recorder saw, and every frame as observed **by the clients** — outbound
at the moment of transmission, inbound at the moment of receipt.  The
client-side vantage point matters for the security argument: the trace
captures exactly the bytes the clients acted on, so replaying it
re-derives the clients' verdicts *whatever* the server actually was —
honest, Byzantine, or long gone.

Record shapes (one JSON object per line; ``seq`` is a global counter)::

    {"t": "header", "v": 1, "n": ..., "scheme": ..., "server": ...,
     "endpoints": [...], "piggyback": ...}
    {"t": "invoke",   "seq": k, "c": i, "k": "WRITE", "r": j,
     "val": <hex|null>, "ts": t, "at": seconds}
    {"t": "response", "seq": k, "c": i, "k": "READ", "r": j,
     "val": <hex|"BOTTOM"|null>, "ts": t, "at": seconds}
    {"t": "frame", "seq": k, "dir": "c2s"|"s2c", "c": i,
     "retx": bool, "payload": hex, "at": seconds}
    {"t": "note", "seq": k, "kind": ..., "data": ...}

Replay (:func:`replay_trace`) rebuilds *fresh* protocol clients on the
discrete-event simulator — same deterministic keys, so same signatures —
and walks the records in order at virtual time = ``seq``: invocations
re-invoke, inbound frames re-deliver.  Two equivalence checks fall out:

* every client-to-server frame the replayed clients produce is compared
  byte-for-byte against the recorded one (retransmissions excluded —
  they repeat bytes already recorded once);
* the replayed history equals the recorded one up to timestamps
  (:func:`history_signature`), so every consistency checker returns the
  same verdict over both.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import ConfigurationError, ProtocolError
from repro.common.types import BOTTOM
from repro.crypto.keystore import KeyStore
from repro.history.history import History
from repro.history.recorder import HistoryRecorder
from repro.net.wire import message_to_payload, payload_to_message
from repro.sim.scheduler import Scheduler
from repro.sim.trace import SimTrace
from repro.ustor.client import UstorClient

TRACE_VERSION = 1


def _value_to_json(value) -> str | None:
    if value is None:
        return None
    if value is BOTTOM:
        return "BOTTOM"
    return bytes(value).hex()


def _value_from_json(value):
    if value is None:
        return None
    if value == "BOTTOM":
        return BOTTOM
    return bytes.fromhex(value)


class WireTraceWriter:
    """Streams one run's records to disk as they happen.

    Doubles as a :class:`~repro.history.recorder.HistoryRecorder`
    listener (``on_invoke``/``on_response``) and as the frame hook the
    client connections call.  Append-only and flushed per record, so a
    crashed run leaves a usable prefix.
    """

    def __init__(
        self,
        path: str,
        *,
        clock: Callable[[], float],
        num_clients: int,
        scheme: str = "hmac",
        server_name: str = "S",
        endpoints: tuple[str, ...] = (),
        commit_piggyback: bool = False,
        trace_ids: bool = False,
    ) -> None:
        self.path = path
        self._clock = clock
        self._file = open(path, "w", encoding="utf-8")
        self._seq = 0
        self._closed = False
        self._emit(
            {
                "t": "header",
                "v": TRACE_VERSION,
                "n": num_clients,
                "scheme": scheme,
                "server": server_name,
                "endpoints": list(endpoints),
                "piggyback": commit_piggyback,
                # Recorded so replay rebuilds clients that mint the same
                # trace-id field (byte-identical frames either way); old
                # traces simply lack the key and default to False.
                "trace_ids": trace_ids,
            }
        )

    def _emit(self, record: dict) -> None:
        if self._closed:
            return
        record.setdefault("seq", self._seq)
        self._seq += 1
        self._file.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._file.flush()

    # -- recorder listener hooks --------------------------------------- #

    def on_invoke(self, op) -> None:
        self._emit(
            {
                "t": "invoke",
                "c": op.client,
                "k": op.kind.name,
                "r": op.register,
                "val": _value_to_json(op.value),
                "ts": op.timestamp,
                "at": round(op.invoked_at, 6),
            }
        )

    def on_response(self, op) -> None:
        self._emit(
            {
                "t": "response",
                "c": op.client,
                "k": op.kind.name,
                "r": op.register,
                "val": _value_to_json(op.value),
                "ts": op.timestamp,
                "at": round(op.responded_at, 6),
            }
        )

    # -- frame hook ---------------------------------------------------- #

    def frame(self, direction: str, client: int, payload: bytes, *, retx: bool) -> None:
        self._emit(
            {
                "t": "frame",
                "dir": direction,
                "c": client,
                "retx": retx,
                "payload": payload.hex(),
                "at": round(self._clock(), 6),
            }
        )

    def note(self, kind: str, data=None) -> None:
        self._emit({"t": "note", "kind": kind, "data": data})

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._file.close()


def load_trace(path: str) -> tuple[dict, list[dict]]:
    """Read a trace file; returns ``(header, records)`` in seq order."""
    header: dict | None = None
    records: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("t") == "header":
                header = record
            else:
                records.append(record)
    if header is None:
        raise ConfigurationError(f"{path!r} has no trace header")
    if header.get("v") != TRACE_VERSION:
        raise ConfigurationError(
            f"trace version {header.get('v')!r} unsupported "
            f"(this build reads v{TRACE_VERSION})"
        )
    records.sort(key=lambda r: r["seq"])
    return header, records


class PlaybackTransport:
    """Transport for replayed clients: outbound frames are captured, not
    sent — the replayer compares them against the recorded ones."""

    def __init__(self, scheduler: Scheduler, trace: SimTrace | None = None) -> None:
        self._scheduler = scheduler
        self._trace = trace
        self.outbound: dict[str, list[bytes]] = {}

    @property
    def trace(self) -> SimTrace | None:
        return self._trace

    def register(self, node) -> None:
        node.bind(self._scheduler, self)
        self.outbound.setdefault(node.name, [])

    def send(self, src: str, dst: str, message) -> None:
        self.outbound[src].append(message_to_payload(message))


@dataclass
class ReplayResult:
    """Outcome of replaying one recorded run on the simulator."""

    history: History
    recorder: HistoryRecorder
    clients: list
    sim_trace: SimTrace
    #: Human-readable descriptions of every point where the replay did
    #: not reproduce the recording byte-for-byte.  Empty = equivalent.
    divergences: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def fail_reasons(self) -> dict[int, str]:
        """``client_id -> fail_i reason`` for every failed replayed client."""
        return {
            c.client_id: c.fail_reason for c in self.clients if c.failed
        }


def replay_trace(path: str) -> ReplayResult:
    """Re-run a recorded TCP run on the sim backend, checking equivalence."""
    header, records = load_trace(path)
    num_clients = header["n"]
    server_name = header["server"]
    scheduler = Scheduler(seed=0)
    sim_trace = SimTrace()
    transport = PlaybackTransport(scheduler, trace=sim_trace)
    keystore = KeyStore(num_clients, scheme=header.get("scheme", "hmac"))
    recorder = HistoryRecorder()
    clients = []
    for i in range(num_clients):
        client = UstorClient(
            client_id=i,
            num_clients=num_clients,
            signer=keystore.signer(i),
            server_name=server_name,
            recorder=recorder,
            commit_piggyback=bool(header.get("piggyback", False)),
            trace_ids=bool(header.get("trace_ids", False)),
        )
        transport.register(client)
        clients.append(client)
    divergences: list[str] = []

    def apply(record: dict) -> None:
        kind = record["t"]
        client = clients[record["c"]] if "c" in record else None
        if kind == "invoke":
            try:
                if record["k"] == "WRITE":
                    client.write(_value_from_json(record["val"]))
                else:
                    client.read(record["r"])
            except ProtocolError as exc:
                divergences.append(
                    f"seq {record['seq']}: replayed {client.name} rejected "
                    f"the recorded invocation ({exc})"
                )
        elif kind == "frame":
            if record["dir"] == "c2s":
                if record["retx"]:
                    return  # the logical frame was already checked once
                expected = bytes.fromhex(record["payload"])
                produced = transport.outbound[client.name]
                if not produced:
                    divergences.append(
                        f"seq {record['seq']}: recording has a frame from "
                        f"{client.name} the replay never produced"
                    )
                elif produced.pop(0) != expected:
                    divergences.append(
                        f"seq {record['seq']}: frame from {client.name} "
                        f"differs between recording and replay"
                    )
            else:  # s2c — re-deliver exactly what the client processed
                message = payload_to_message(bytes.fromhex(record["payload"]))
                client.deliver(server_name, message)
        # "response"/"note" records carry no replay obligation: responses
        # re-emerge from the replayed protocol itself.

    for index, record in enumerate(records):
        # Virtual time = record index keeps invocation/response order (and
        # therefore History's sort) identical to the recording's.
        scheduler.schedule_at(float(index), apply, record)
    scheduler.run()

    for name, leftover in transport.outbound.items():
        if leftover:
            divergences.append(
                f"replay produced {len(leftover)} frame(s) from {name} "
                f"that the recording never carried"
            )
    return ReplayResult(
        history=recorder.history(),
        recorder=recorder,
        clients=clients,
        sim_trace=sim_trace,
        divergences=divergences,
    )


def history_signature(history: History) -> tuple:
    """A history's content minus its clock: what both transports must agree
    on.  Wall-clock instants differ between a real run and its replay by
    construction; everything else — per-client operation sequences, kinds,
    registers, values, protocol timestamps, completion — must not."""
    return tuple(
        (
            op.client,
            op.kind.name,
            op.register,
            _value_to_json(op.value),
            op.timestamp,
            op.responded_at is not None,
        )
        for op in history
    )
