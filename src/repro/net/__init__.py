"""Real transport for the FAUST reproduction.

Everything below ``repro.net`` moves the protocol off the discrete-event
simulator and onto real sockets and real clocks, *without touching* the
protocol state machines: the same :class:`~repro.ustor.client.UstorClient`
and :class:`~repro.ustor.server.UstorServer` objects that run under
``sim.network.Network`` run here, bound to a :class:`Transport`
implementation backed by asyncio TCP streams and a wall-clock scheduler.

Layout:

* :mod:`repro.net.transport` — the ``Transport`` protocol the seam was
  extracted into (``sim.network.Network`` is the other implementation);
* :mod:`repro.net.framing` — length-prefixed frames over byte streams,
  hardened against untrusted peers;
* :mod:`repro.net.wire` — protocol messages <-> canonical TLV payloads;
* :mod:`repro.net.realtime` — wall-clock scheduler with the sim
  ``Scheduler``'s timer surface;
* :mod:`repro.net.server` — asyncio server host (in-process for loopback
  tests, standalone for ``python -m repro serve``);
* :mod:`repro.net.client` — asyncio client runtime and the ``NetSystem``
  facade mirroring the sim ``StorageSystem`` surface;
* :mod:`repro.net.trace` — append-only JSONL wire traces and their
  deterministic replay on the sim backend;
* :mod:`repro.net.supervisor` — OS-process lifecycle for servers.
"""

from repro.net.transport import Transport
from repro.net.client import NetSystem, open_tcp_system
from repro.net.server import NetServerHost, serve_forever
from repro.net.supervisor import ClusterSupervisor, ServerProcess
from repro.net.trace import replay_trace

__all__ = [
    "Transport",
    "NetSystem",
    "open_tcp_system",
    "NetServerHost",
    "serve_forever",
    "ClusterSupervisor",
    "ServerProcess",
    "replay_trace",
]
