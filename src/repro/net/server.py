"""Asyncio host wrapping a protocol server behind real TCP connections.

The protocol server (:class:`~repro.ustor.server.UstorServer` or one of
its Byzantine variants) is unchanged — it still receives ``on_message``
callbacks and answers with ``send``.  The host supplies everything the
simulator used to: a transport whose ``send`` routes REPLYs onto the
right client's socket, a wall-clock scheduler, and the connection
lifecycle (handshake, reconnects, duplicate suppression).

Exactly-once over at-least-once
-------------------------------

TCP gives reliable FIFO delivery *per connection*; the model's channels
are reliable *per client*.  Clients bridge the gap by retransmitting
everything sent since their last REPLY when they reconnect, which makes
delivery at-least-once — but a duplicate SUBMIT is protocol-fatal (the
duplicate pending entry would fail every other client's Algorithm 1
line 43 check).  The host therefore deduplicates by the SUBMIT's
timestamp, which the protocol already makes strictly increasing per
client:

* a SUBMIT whose timestamp matches the *reply journal* (the last REPLY
  sent per client) is answered by resending that exact REPLY;
* a SUBMIT at or below the highest timestamp already applied, with no
  journaled REPLY (the journal is volatile — a host restart loses it),
  is dropped: the operation times out at the client, which is precisely
  the fail-aware outcome the paper's timed model prescribes for a server
  that lost the ability to answer correctly;
* COMMITs are always delivered — ``apply_commit`` is idempotent (the
  version comparison on line 119 is strict, so a duplicate neither
  advances the commit index nor prunes twice).
"""

from __future__ import annotations

import asyncio
import os
from typing import Callable

from repro.common.errors import ConfigurationError, DecodeError, EncodingError
from repro.common.types import client_name
from repro.net.framing import MAX_FRAME_BYTES, encode_frame, read_frame
from repro.net.realtime import RealtimeScheduler
from repro.obs.registry import get_registry
from repro.net.wire import (
    decode_payload,
    message_to_payload,
    payload_to_message,
    welcome_payload,
)
from repro.sim.trace import SimTrace
from repro.store.engine import make_engine
from repro.ustor.messages import CommitMessage, ReplyMessage, SubmitMessage
from repro.ustor.server import UstorServer


class _HostTransport:
    """The server node's view of the world: sends become socket writes."""

    def __init__(self, host: "NetServerHost") -> None:
        self._host = host

    def register(self, node) -> None:
        node.bind(self._host.scheduler, self)

    @property
    def trace(self) -> SimTrace | None:
        return self._host.trace

    def send(self, src: str, dst: str, message) -> None:
        self._host._send_to_client(dst, message)


class NetServerHost:
    """One protocol server behind one listening TCP socket.

    Two modes of use:

    * **loopback** — ``await start()`` on an already-running (or pumped)
      event loop; client and server share the loop, which keeps the
      integration tests single-process and fast;
    * **standalone** — :func:`serve_forever` (the ``repro serve``
      subcommand) gives the host its own loop and process.

    ``server_factory`` receives ``(num_clients, server_name)`` exactly
    like the simulator's builder, so the CLI's Byzantine behaviours plug
    straight in.  The host requires a non-group-commit server: it
    journals each REPLY as the synchronous answer to the SUBMIT being
    delivered, which group commit's deferred replies would break.
    """

    def __init__(
        self,
        num_clients: int,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        server_name: str = "S",
        storage: str = "memory",
        server_factory: Callable[[int, str], UstorServer] | None = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        trace: SimTrace | None = None,
        metrics_port: int | None = None,
        metrics_host: str = "127.0.0.1",
        counter: str | None = None,
    ) -> None:
        if num_clients < 1:
            raise ConfigurationError("need at least one client")
        if counter not in (None, "volatile", "durable"):
            raise ConfigurationError(
                f"counter= must be 'volatile' or 'durable', got {counter!r}"
            )
        self._n = num_clients
        self.host = host
        self.port = port
        self.server_name = server_name
        self._max_frame = max_frame_bytes
        self.trace = trace
        #: Monotonic-counter mode (:mod:`repro.replica`): attach a trust
        #: anchor to this host's server so every REPLY carries a counter
        #: attestation.  ``"durable"`` with ``dir:`` storage persists the
        #: counter value next to the WAL, so it survives a host restart
        #: the way a real sealed counter would.
        self._counter_mode = counter
        self._counter_state_path = (
            os.path.join(storage[len("dir:"):], "counter.state")
            if counter == "durable"
            and isinstance(storage, str)
            and storage.startswith("dir:")
            else None
        )
        self._factory = server_factory or (
            lambda n, name: UstorServer(
                n, name=name, engine=make_engine(storage, n)
            )
        )
        self.scheduler: RealtimeScheduler | None = None
        self.node: UstorServer | None = None
        self._listener: asyncio.Server | None = None
        self._handlers: set[asyncio.Task] = set()
        self._connections: dict[str, asyncio.StreamWriter] = {}
        #: Per client: (timestamp of the last replied SUBMIT, its REPLY
        #: payload bytes) — volatile by design; see the module docstring.
        self._journal: dict[int, tuple[int, bytes]] = {}
        #: Highest SUBMIT timestamp delivered per client (dedup floor).
        self._seen: dict[int, int] = {}
        #: Client whose SUBMIT is being delivered right now (journaling).
        self._inflight: str | None = None
        self.submits_deduplicated = 0
        self.submits_dropped_stale = 0
        #: ``/metrics`` endpoint config; started with the host when a port
        #: (0 = ephemeral) was given.
        self._metrics_port = metrics_port
        self._metrics_host = metrics_host
        self.metrics_server = None
        #: Optional :class:`repro.obs.tracing.SpanLog`: when set, every
        #: delivered SUBMIT that carries a trace id is recorded as a
        #: server-side instant, extending the causal trace across the
        #: process boundary.
        self.span_log = None
        registry = get_registry()
        self._obs_submits = registry.counter("server.submits_delivered")
        self._obs_dedup = registry.counter("server.submits_deduplicated")
        self._obs_dropped = registry.counter("server.submits_dropped_stale")

    # ---------------------------------------------------------------- #
    # Lifecycle
    # ---------------------------------------------------------------- #

    async def start(self) -> None:
        loop = asyncio.get_event_loop()
        self.scheduler = RealtimeScheduler(loop)
        self.node = self._factory(self._n, self.server_name)
        if getattr(self.node, "group_commit", False):
            raise ConfigurationError(
                "the TCP host needs synchronous replies; build the server "
                "with group_commit=False"
            )
        if self._counter_mode is not None:
            from repro.replica.counter import MonotonicCounter

            self.node.attach_counter(
                MonotonicCounter(
                    self.server_name,
                    durable=self._counter_mode == "durable",
                    state_path=self._counter_state_path,
                )
            )
        _HostTransport(self).register(self.node)
        # Recovered durable state re-establishes the dedup floor: without
        # this, a SUBMIT applied (and WAL-logged) just before a crash
        # would be *re-applied* when the client retransmits it after the
        # restart — a duplicate pending entry, which is protocol-fatal
        # for every other client (Algorithm 1 line 43).
        state = getattr(self.node, "state", None)
        if state is not None:
            for client_id, entry in enumerate(state.mem):
                if entry.timestamp:
                    self._seen[client_id] = entry.timestamp
        self._listener = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._listener.sockets[0].getsockname()[1]
        if self._metrics_port is not None:
            from repro.obs.exposition import MetricsHTTPServer

            self.metrics_server = MetricsHTTPServer(
                get_registry(),
                host=self._metrics_host,
                port=self._metrics_port,
            )
            await self.metrics_server.start()

    async def stop(self) -> None:
        if self.metrics_server is not None:
            await self.metrics_server.stop()
            self.metrics_server = None
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None
        for writer in list(self._connections.values()):
            writer.close()
        self._connections.clear()
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        self._handlers.clear()

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    # ---------------------------------------------------------------- #
    # Connections
    # ---------------------------------------------------------------- #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        name: str | None = None
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        try:
            hello = await read_frame(reader, max_bytes=self._max_frame)
            if hello is None:
                return
            record = decode_payload(hello, max_bytes=self._max_frame)
            if not (
                record[0] == "HELLO"
                and len(record) == 3
                and isinstance(record[1], int)
                and 0 <= record[1] < self._n
                and record[2] == self._n
            ):
                return  # wrong population or malformed handshake: refuse
            client_id = record[1]
            name = client_name(client_id)
            previous = self._connections.get(name)
            if previous is not None and previous is not writer:
                previous.close()  # at most one live connection per client
            self._connections[name] = writer
            writer.write(
                encode_frame(welcome_payload(self.server_name, self._n))
            )
            while True:
                payload = await read_frame(reader, max_bytes=self._max_frame)
                if payload is None:
                    return
                self._handle_client_payload(client_id, payload)
        except (DecodeError, EncodingError, ConnectionError, OSError):
            # A hostile or broken peer costs this connection, nothing more.
            return
        except asyncio.CancelledError:
            return  # orderly stop(); not an error worth the loop's logging
        finally:
            if name is not None and self._connections.get(name) is writer:
                del self._connections[name]
            writer.close()

    def _handle_client_payload(self, client_id: int, payload: bytes) -> None:
        message = payload_to_message(payload)
        name = client_name(client_id)
        if isinstance(message, SubmitMessage):
            if message.invocation.client != client_id:
                raise EncodingError(
                    f"connection of {name} submitted for client "
                    f"{message.invocation.client}"
                )
            self._deliver_submit(client_id, name, message)
        elif isinstance(message, CommitMessage):
            assert self.node is not None
            self.node.deliver(name, message)
        # REPLY from a client is meaningless; payload_to_message already
        # rejected anything else.

    def _deliver_submit(
        self, client_id: int, name: str, message: SubmitMessage
    ) -> None:
        assert self.node is not None
        t = message.timestamp
        journaled = self._journal.get(client_id)
        if journaled is not None and journaled[0] == t:
            # Retransmission of the last answered SUBMIT: resend its REPLY.
            self.submits_deduplicated += 1
            self._obs_dedup.inc()
            self._write_frame(name, journaled[1])
            return
        floor = self._seen.get(client_id, 0)
        if journaled is not None:
            floor = max(floor, journaled[0])
        if t <= floor:
            # Already applied but the REPLY is gone (journal lost across a
            # host restart): unanswerable — the client's deadline handles it.
            self.submits_dropped_stale += 1
            self._obs_dropped.inc()
            return
        self._seen[client_id] = t
        self._obs_submits.inc()
        if self.span_log is not None and message.trace_id is not None:
            assert self.scheduler is not None
            self.span_log.instant(
                "server:submit",
                ts=self.scheduler.now,
                trace_id=message.trace_id,
                proc=f"server:{self.server_name}",
                args={"client": client_id, "timestamp": t},
            )
        self._inflight = name
        try:
            self.node.deliver(name, message)
        finally:
            self._inflight = None

    # ---------------------------------------------------------------- #
    # Outbound (called by the protocol server through _HostTransport)
    # ---------------------------------------------------------------- #

    def _send_to_client(self, dst: str, message) -> None:
        payload = message_to_payload(message)
        if isinstance(message, ReplyMessage) and self._inflight == dst:
            submit_t = self._seen.get(self._client_id_of(dst))
            if submit_t is not None:
                self._journal[self._client_id_of(dst)] = (submit_t, payload)
        self._write_frame(dst, payload)

    @staticmethod
    def _client_id_of(name: str) -> int:
        return int(name[1:]) - 1

    def _write_frame(self, dst: str, payload: bytes) -> None:
        writer = self._connections.get(dst)
        if writer is None or writer.is_closing():
            return  # client away; it will retransmit and be journal-answered
        try:
            writer.write(encode_frame(payload, max_bytes=self._max_frame))
        except (ConnectionError, OSError):  # pragma: no cover - race on close
            pass


def serve_forever(
    num_clients: int,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    server_name: str = "S",
    storage: str = "memory",
    server_factory: Callable[[int, str], UstorServer] | None = None,
    announce: Callable[[str], None] = print,
    metrics_port: int | None = None,
    counter: str | None = None,
) -> int:
    """Run one server process until interrupted (``repro serve``).

    Prints ``LISTENING <host> <port>`` once the socket is bound — the
    supervisor and the CI smoke test wait for that line.  With
    ``metrics_port`` (0 = ephemeral) the process enables a recording
    metrics registry, exposes it at ``http://<host>:<metrics_port>/metrics``
    and announces ``METRICS <host> <port>`` the same way.
    """
    loop = asyncio.new_event_loop()
    try:
        asyncio.set_event_loop(loop)
        if metrics_port is not None:
            from repro.obs.registry import enable_metrics

            enable_metrics()
        server = NetServerHost(
            num_clients,
            host=host,
            port=port,
            server_name=server_name,
            storage=storage,
            server_factory=server_factory,
            metrics_port=metrics_port,
            counter=counter,
        )
        loop.run_until_complete(server.start())
        announce(f"LISTENING {server.host} {server.port}")
        if server.metrics_server is not None:
            announce(
                f"METRICS {server.metrics_server.host} "
                f"{server.metrics_server.port}"
            )
        try:
            loop.run_forever()
        except KeyboardInterrupt:
            pass
        loop.run_until_complete(server.stop())
        return 0
    finally:
        asyncio.set_event_loop(None)
        loop.close()
