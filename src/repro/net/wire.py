"""Protocol messages <-> frame payloads.

One frame payload is one canonically encoded tuple whose first element
names the record::

    ("HELLO",   client_id, num_clients)     client -> server, once
    ("WELCOME", server_name, num_clients)   server -> client, once
    ("SUBMIT",  <submit tuple>)             repro.store.codec shapes
    ("COMMIT",  <commit tuple>)
    ("REPLY",   <reply tuple>)

Reusing :mod:`repro.store.codec` for the message bodies means the wire
format *is* the durable-state format: whatever the WAL can persist, the
socket can carry, and a recorded frame decodes with the same validation
a WAL record gets (malformed input from a Byzantine server raises
:class:`~repro.common.errors.EncodingError`, never half-builds a
message).

SUBMIT/COMMIT/REPLY tuples may carry one *optional trailing* element —
the causal trace id (:mod:`repro.obs.tracing`).  The codec appends it
only when present and pads it with ``None`` when absent, so decoders for
the longer form read every old frame, WAL record and wire trace
unchanged, and a deployment with tracing off emits bytes identical to a
build that predates the field.
"""

from __future__ import annotations

from repro.common.encoding import decode, encode
from repro.common.errors import EncodingError
from repro.common.types import OpKind
from repro.net.framing import MAX_FRAME_BYTES
from repro.store.codec import (
    commit_from_tuple,
    commit_to_tuple,
    reply_from_tuple,
    reply_to_tuple,
    submit_from_tuple,
    submit_to_tuple,
)
from repro.ustor.messages import CommitMessage, ReplyMessage, SubmitMessage

ProtocolMessage = SubmitMessage | CommitMessage | ReplyMessage

_TO_TUPLE = {
    "SUBMIT": submit_to_tuple,
    "COMMIT": commit_to_tuple,
    "REPLY": reply_to_tuple,
}
_FROM_TUPLE = {
    "SUBMIT": submit_from_tuple,
    "COMMIT": commit_from_tuple,
    "REPLY": reply_from_tuple,
}


def message_to_payload(message: ProtocolMessage) -> bytes:
    """Encode one protocol message as a frame payload."""
    try:
        to_tuple = _TO_TUPLE[message.kind]
    except (KeyError, AttributeError):
        raise EncodingError(f"not a wire message: {message!r}") from None
    return encode((message.kind, to_tuple(message)))


def hello_payload(client_id: int, num_clients: int) -> bytes:
    return encode(("HELLO", client_id, num_clients))


def welcome_payload(server_name: str, num_clients: int) -> bytes:
    return encode(("WELCOME", server_name, num_clients))


def decode_payload(
    payload: bytes, *, max_bytes: int = MAX_FRAME_BYTES
) -> tuple:
    """Decode a frame payload into its ``(kind, ...)`` record tuple."""
    values = decode(payload, enums=(OpKind,), max_bytes=max_bytes)
    if len(values) != 1:
        raise EncodingError(
            f"frame payload must hold exactly one record, got {len(values)}"
        )
    record = values[0]
    if not isinstance(record, tuple) or not record or not isinstance(record[0], str):
        raise EncodingError(f"malformed frame record: {record!r}")
    return record


def payload_to_message(payload: bytes) -> ProtocolMessage:
    """Decode a SUBMIT/COMMIT/REPLY payload into its message object."""
    record = decode_payload(payload)
    kind = record[0]
    try:
        from_tuple = _FROM_TUPLE[kind]
    except KeyError:
        raise EncodingError(f"unknown wire message kind: {kind!r}") from None
    if len(record) != 2:
        raise EncodingError(f"malformed {kind} record: {record!r}")
    return from_tuple(record[1])
