"""Length-prefixed framing for canonical TLV payloads on byte streams.

TCP delivers a byte stream; the protocol speaks in messages.  A frame is
a 4-byte big-endian payload length followed by the payload — one
canonically-encoded value sequence (:mod:`repro.common.encoding`).  The
peer is the *untrusted server* of the paper's model, so the reader
enforces a hard size bound before buffering (``OversizedFrameError``)
and reports streams that end mid-frame as ``TruncatedFrameError`` —
the same typed errors the codec itself raises for hostile input, so
transport code has exactly one failure vocabulary.
"""

from __future__ import annotations

import asyncio
import struct

from repro.common.errors import OversizedFrameError, TruncatedFrameError

#: Hard upper bound on a frame payload.  Generously above any legitimate
#: USTOR message (replies grow with ``n``, not with history), far below
#: anything that could exhaust memory.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct(">I")
LENGTH_PREFIX_BYTES = _LEN.size


def encode_frame(payload: bytes, *, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Wrap an encoded payload in its length prefix."""
    if len(payload) > max_bytes:
        raise OversizedFrameError(
            f"frame payload is {len(payload)} bytes (limit {max_bytes})"
        )
    return _LEN.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame extractor for synchronous consumers (replay, tests).

    Feed it chunks in any fragmentation; it yields complete payloads in
    order.  State between calls is just the undecoded tail.
    """

    def __init__(self, *, max_bytes: int = MAX_FRAME_BYTES) -> None:
        self._buffer = bytearray()
        self._max_bytes = max_bytes

    def feed(self, chunk: bytes) -> list[bytes]:
        self._buffer.extend(chunk)
        frames: list[bytes] = []
        while True:
            if len(self._buffer) < LENGTH_PREFIX_BYTES:
                return frames
            (length,) = _LEN.unpack_from(self._buffer)
            if length > self._max_bytes:
                raise OversizedFrameError(
                    f"peer declared a {length}-byte frame (limit {self._max_bytes})"
                )
            end = LENGTH_PREFIX_BYTES + length
            if len(self._buffer) < end:
                return frames
            frames.append(bytes(self._buffer[LENGTH_PREFIX_BYTES:end]))
            del self._buffer[:end]

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)


async def read_frame(
    reader: asyncio.StreamReader, *, max_bytes: int = MAX_FRAME_BYTES
) -> bytes | None:
    """Read one frame payload; ``None`` on clean EOF at a frame boundary.

    EOF *inside* a frame (after the prefix started) is a truncation and
    raises :class:`TruncatedFrameError` — a peer must not be able to make
    a half-message look like an orderly shutdown.
    """
    try:
        prefix = await reader.readexactly(LENGTH_PREFIX_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise TruncatedFrameError(
            f"stream ended inside a frame length prefix "
            f"({len(exc.partial)}/{LENGTH_PREFIX_BYTES} bytes)"
        ) from exc
    (length,) = _LEN.unpack(prefix)
    if length > max_bytes:
        raise OversizedFrameError(
            f"peer declared a {length}-byte frame (limit {max_bytes})"
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TruncatedFrameError(
            f"stream ended inside a frame payload "
            f"({len(exc.partial)}/{length} bytes)"
        ) from exc
