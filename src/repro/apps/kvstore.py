"""A multi-writer key-value store on top of fail-aware untrusted storage.

The paper's functionality is n single-writer registers; real applications
want a shared map that *anyone* can update.  This layer shows how to build
one — the construction the paper's Section 1 examples (wikis, shared
documents) imply:

* each client serialises its own update log into **its own register**
  (single-writer, so USTOR applies unchanged);
* the merged map view orders all updates by ``(timestamp, client)`` —
  Lamport's classic total order on the per-client operation timestamps
  already maintained by the protocol — with last-writer-wins per key;
* reading merges the logs the client currently knows, which inherits the
  layer-below guarantees: linearizable under a correct server, weakly
  fork-linearizable always, fail-aware through FAUST.

The store is deliberately simple (full-log serialisation per write); the
point is the *composition*, exercised by tests and the shopping-list
example, not storage engineering.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.api.session import as_session
from repro.common.errors import ProtocolError
from repro.common.types import BOTTOM, ClientId


@dataclass(frozen=True)
class KvUpdate:
    """One update in a client's log."""

    key: str
    value: Any  # JSON-serialisable; None encodes deletion
    timestamp: int  # Lamport clock at the writer when the update was made
    writer: ClientId

    def order_key(self) -> tuple[int, int]:
        """Lamport order: by logical timestamp, ties broken by writer id."""
        return (self.timestamp, self.writer)


def _serialize_log(log: list[KvUpdate]) -> bytes:
    return json.dumps(
        [[u.key, u.value, u.timestamp, u.writer] for u in log],
        separators=(",", ":"),
    ).encode()


def _deserialize_log(raw: bytes) -> list[KvUpdate]:
    try:
        entries = json.loads(raw.decode())
        return [
            KvUpdate(key=k, value=v, timestamp=t, writer=w) for k, v, t, w in entries
        ]
    except (ValueError, TypeError) as exc:
        raise ProtocolError(f"malformed key-value log: {exc}") from exc


class KvStore:
    """A per-client handle to the shared map."""

    def __init__(self, system, client_id: ClientId) -> None:
        """``system`` may be a :class:`repro.api.system.System` or a raw
        :class:`~repro.workloads.runner.StorageSystem`."""
        self._system = system
        self._client_id = client_id
        self._session = as_session(system, client_id)
        self._log: list[KvUpdate] = []
        self._clock = 0  # Lamport clock, advanced by updates and merges

    # ------------------------------------------------------------------ #
    # Updates (writes to the client's own register)
    # ------------------------------------------------------------------ #

    def put(self, key: str, value: Any) -> int:
        """Set ``key``; returns the underlying write's USTOR timestamp
        (usable with :meth:`wait_until_stable`)."""
        return self._append(key, value)

    def delete(self, key: str) -> int:
        """Remove ``key`` (a tombstone in the log)."""
        return self._append(key, None)

    def _append(self, key: str, value: Any) -> int:
        self._clock += 1
        update = KvUpdate(
            key=key, value=value, timestamp=self._clock, writer=self._client_id
        )
        self._log.append(update)
        return self._session.write_sync(_serialize_log(self._log))

    # ------------------------------------------------------------------ #
    # Reads (merge of all logs)
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict[str, Any]:
        """Read every register and merge: last writer (in Lamport order)
        wins per key.  Merging also advances the local Lamport clock, so
        later local updates order after everything observed."""
        updates: list[KvUpdate] = []
        for register in range(len(self._system.clients)):
            raw, _t = self._session.read_sync(register)
            if raw is BOTTOM:
                continue
            updates.extend(_deserialize_log(raw))
        updates.sort(key=KvUpdate.order_key)
        if updates:
            self._clock = max(self._clock, updates[-1].timestamp)
        merged: dict[str, Any] = {}
        for update in updates:
            if update.value is None:
                merged.pop(update.key, None)
            else:
                merged[update.key] = update.value
        return merged

    def get(self, key: str, default: Any = None) -> Any:
        return self.snapshot().get(key, default)

    # ------------------------------------------------------------------ #
    # Fail-awareness passthrough
    # ------------------------------------------------------------------ #

    def wait_until_stable(self, timestamp: int, timeout: float | None = None) -> bool:
        """Block until the update with ``timestamp`` is stable w.r.t. all."""
        return self._session.wait_for_stability(timestamp, timeout=timeout)

    @property
    def failed(self) -> bool:
        return self._session.failed
