"""Applications composed on top of the fail-aware storage service."""

from repro.apps.kvstore import KvStore, KvUpdate

__all__ = ["KvStore", "KvUpdate"]
