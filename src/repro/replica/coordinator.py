"""Client-side quorum resolution over a replica group.

Replication strategy (modeled on AWE's metadata quorums, collapsed to
full replication): every SUBMIT and COMMIT a client issues is broadcast
to all ``n`` replicas of its shard, and the REPLYs are resolved
client-side — there is **no** replica-to-replica protocol.  Because the
channels are reliable FIFO and an honest replica is a deterministic
state machine that sends exactly one REPLY per SUBMIT, all honest
replicas fed the same broadcast stream produce *identical* REPLY
streams; replica ``r``'s ``i``-th REPLY necessarily answers the
client's ``i``-th SUBMIT, which is how the coordinator matches REPLYs
into per-operation rounds without any wire-format change.

Resolution per round:

* **write quorum** — ``>= quorum`` byte-identical REPLYs (counter
  attestations stripped first: those legitimately differ per replica)
  elect a winner, which flows into the unchanged Algorithm 1 checks.
  Deviating minority REPLYs are *masked* — counted, not fatal.
* **read quorum with write-back** — if every live replica answered and
  no value reached quorum (replicas caught mid-propagation or partially
  rolled back), the REPLY carrying the highest register timestamp wins;
  the client's subsequent COMMIT broadcast is the write-back that
  re-converges the group.  The winner still passes the full client-side
  signature/version checks, so a *fabricated* "highest timestamp" is
  detected exactly as on a single server.
* **no quorum on a write** — a write that every live replica answered
  without agreement is a correctness loss the group cannot mask;
  resolution fails and the client raises ``fail_i``.

Counter attestations (:mod:`repro.replica.counter`) are verified per
replica *before* voting; a violator is **convicted** — permanently
excluded from the group and from every future broadcast/quorum — which
is how a rolled-back replica is caught in O(1) operations while the
honest majority keeps serving.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.common.errors import ConfigurationError
from repro.replica.counter import CounterVerifier

#: Resolved rounds remembered for judging stragglers' late REPLYs.
_RESOLVED_WINDOW = 32


def default_quorum(replicas: int) -> int:
    """The paper-style write quorum ``ceil((n + 1) / 2)``: any two quorums
    intersect in at least one replica, so ``floor((n - 1) / 2)`` Byzantine
    replicas are masked."""
    return replicas // 2 + 1


@dataclass
class _Round:
    """One in-flight operation: the votes collected so far."""

    index: int
    is_read: bool
    binding: bytes
    #: Normalized (attestation-stripped) REPLY per replica name.
    votes: dict = field(default_factory=dict)


@dataclass(frozen=True)
class _Resolved:
    """A finished round, kept briefly to judge stragglers against."""

    binding: bytes
    winner: object | None  # normalized winning REPLY (None: round failed)


class QuorumCoordinator:
    """Per-client quorum state over one shard's replica group.

    The owning :class:`~repro.ustor.client.UstorClient` calls
    :meth:`begin_round` when it issues a SUBMIT, routes every incoming
    REPLY through :meth:`absorb`, and broadcasts to :meth:`targets`.
    ``absorb`` returns ``None`` (keep waiting), the winning REPLY (pass
    it to the protocol layer), or a failure-reason string (raise
    ``fail_i``).
    """

    def __init__(
        self,
        replicas: tuple,
        quorum: int | None = None,
        verifier: CounterVerifier | None = None,
        on_convict: Callable[[str, str], None] | None = None,
    ) -> None:
        names = tuple(replicas)
        if len(names) < 2:
            raise ConfigurationError("a replica group needs at least 2 replicas")
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate replica names in {names!r}")
        self._replicas = names
        self._quorum = default_quorum(len(names)) if quorum is None else quorum
        if not 1 <= self._quorum <= len(names):
            raise ConfigurationError(
                f"quorum must be in [1, {len(names)}], got {self._quorum}"
            )
        self._verifier = verifier
        self._on_convict = on_convict
        #: REPLYs seen per replica == the round its next REPLY answers.
        self._replies_seen = {name: 0 for name in names}
        self._rounds_begun = 0
        self._open: _Round | None = None
        self._resolved: OrderedDict[int, _Resolved] = OrderedDict()
        #: Convicted replicas, with the violation that convicted them.
        self.convicted: dict[str, str] = {}
        # -- observability ---------------------------------------------- #
        self.masked_deviations = 0
        self.read_repairs = 0
        self.late_replies = 0
        self.rounds_resolved = 0

    @property
    def quorum(self) -> int:
        """REPLYs that must agree byte-for-byte to elect a winner."""
        return self._quorum

    @property
    def replicas(self) -> tuple:
        """All replica names, convicted or not."""
        return self._replicas

    def targets(self) -> tuple:
        """Where to broadcast: every not-yet-convicted replica."""
        return tuple(r for r in self._replicas if r not in self.convicted)

    def stats(self) -> dict:
        """Machine-readable resolution counters (for CLI/experiments)."""
        return {
            "rounds_resolved": self.rounds_resolved,
            "masked_deviations": self.masked_deviations,
            "read_repairs": self.read_repairs,
            "late_replies": self.late_replies,
            "convicted": dict(self.convicted),
        }

    # -- the client-facing protocol ------------------------------------- #

    def begin_round(self, is_read: bool, binding: bytes) -> None:
        """Open the round for the SUBMIT about to be broadcast.

        ``binding`` is the operation's SUBMIT signature — the value
        counter attestations must be bound to.
        """
        if self._open is not None:
            raise ConfigurationError(
                "previous quorum round is still open (operations are "
                "issued one at a time per client)"
            )
        self._open = _Round(
            index=self._rounds_begun, is_read=is_read, binding=binding
        )
        self._rounds_begun += 1

    def absorb(self, src: str, reply):
        """Fold one REPLY from replica ``src`` into its round.

        Returns ``None`` while unresolved, the winning (normalized)
        REPLY once this REPLY resolves the open round, or a ``str``
        failure reason when resolution is impossible.
        """
        if src not in self._replies_seen:
            return None  # not a member of this group — not ours to judge
        index = self._replies_seen[src]
        self._replies_seen[src] += 1
        if src in self.convicted:
            return None  # evidence already on file; ignore the convict
        if index >= self._rounds_begun:
            # More REPLYs than SUBMITs we ever broadcast: fabrication.
            return self._convict(src, "unsolicited REPLY (never submitted)")
        binding = self._binding_for(index)
        if self._verifier is not None and binding is not None:
            violation = self._verifier.check(src, reply, binding)
            if violation is not None:
                return self._convict(src, violation)
        normalized = replace(reply, attestation=None)
        open_round = self._open
        if open_round is not None and index == open_round.index:
            open_round.votes[src] = normalized
            return self._evaluate()
        # A straggler for an already-resolved round: judge it against the
        # recorded winner so slow-but-deviating replicas still show up.
        self.late_replies += 1
        resolved = self._resolved.get(index)
        if (
            resolved is not None
            and resolved.winner is not None
            and normalized != resolved.winner
        ):
            self.masked_deviations += 1
        return None

    # -- internals ------------------------------------------------------- #

    def _binding_for(self, index: int):
        if self._open is not None and index == self._open.index:
            return self._open.binding
        resolved = self._resolved.get(index)
        return resolved.binding if resolved is not None else None

    def _convict(self, src: str, violation: str):
        """Permanently exclude ``src``; may resolve or doom the round."""
        self.convicted[src] = violation
        if self._on_convict is not None:
            self._on_convict(src, violation)
        if self._open is not None:
            self._open.votes.pop(src, None)
        if len(self.targets()) < self._quorum:
            if self._open is not None:
                self._finish(None)
            return (
                f"replica {src} convicted ({violation}); "
                f"{len(self.targets())} live replica(s) cannot reach "
                f"quorum {self._quorum}"
            )
        if self._open is not None:
            # One voter fewer may mean "everyone has now answered".
            return self._evaluate()
        return None

    def _evaluate(self):
        """Try to resolve the open round from the votes on hand."""
        open_round = self._open
        targets = self.targets()
        # Group identical normalized REPLYs (list scan: no hash needed).
        groups: list[list] = []
        for vote in open_round.votes.values():
            for group in groups:
                if group[0] == vote:
                    group.append(vote)
                    break
            else:
                groups.append([vote])
        best = max(groups, key=len, default=None)
        if best is not None and len(best) >= self._quorum:
            return self._elect(open_round, best[0])
        if len(open_round.votes) < len(targets):
            return None  # keep waiting for the stragglers
        # Every live replica answered without a quorum.
        if open_round.is_read:
            # Read repair: highest register timestamp wins; the client's
            # COMMIT broadcast that follows is the write-back.
            winner = max(
                open_round.votes.values(),
                key=lambda r: (
                    r.mem.timestamp if r.mem is not None else -1,
                    sum(r.last_version.version.vector) + len(r.pending),
                ),
            )
            self.read_repairs += 1
            return self._elect(open_round, winner)
        self._finish(None)
        return (
            f"write quorum unattainable: {len(groups)} distinct REPLYs "
            f"from {len(targets)} live replica(s), quorum {self._quorum}"
        )

    def _elect(self, open_round: _Round, winner):
        self.masked_deviations += sum(
            1 for vote in open_round.votes.values() if vote != winner
        )
        self._finish(winner)
        return winner

    def _finish(self, winner) -> None:
        self._resolved[self._open.index] = _Resolved(
            binding=self._open.binding, winner=winner
        )
        while len(self._resolved) > _RESOLVED_WINDOW:
            self._resolved.popitem(last=False)
        self.rounds_resolved += 1
        self._open = None
