"""Replicated rollback-resistant shards (honest-majority replica groups).

The paper's system is a *single* untrusted server: every attack is
detectable (fail-awareness) but none is preventable — a rollback costs
the clients their service the moment it is caught.  This package adds
the two classic hardening levers on top of the unchanged USTOR/FAUST
client protocol:

* :class:`~repro.replica.coordinator.QuorumCoordinator` — a client-side
  k-of-n replica group per shard.  Every SUBMIT/COMMIT is broadcast to
  all replicas; REPLYs are matched into per-operation rounds and a
  quorum of byte-identical REPLYs elects the one the protocol layer
  processes.  An honest majority therefore *masks* faults a lone server
  could only be caught at, while the minority's deviating REPLYs are
  still visible (and counted) evidence.

* :class:`~repro.replica.counter.MonotonicCounter` — a trusted
  monotonic-counter abstraction ("TEE Is Not a Healer"-style trust
  anchor) each replica binds into its REPLYs.  The counter value must
  equal the number of SUBMITs the replica's state has ever absorbed —
  an O(1)-checkable invariant over the REPLY itself — so a rollback
  shows up as a counter running *ahead* of the state it accompanies on
  the very first post-rollback REPLY, instead of waiting for the rolled
  state to contradict some client's version.

Both levers live entirely behind the existing ``Session``/``OpHandle``
facade; deployments opt in with ``SystemConfig(replicas=, quorum=,
counter=)`` on the cluster backend or ``--replicas/--quorum/--counter``
on the CLI.
"""

from __future__ import annotations

from repro.replica.coordinator import QuorumCoordinator, default_quorum
from repro.replica.counter import (
    CounterAttestation,
    CounterVerifier,
    MonotonicCounter,
    derive_counter_key,
    ops_accounted,
)

__all__ = [
    "CounterAttestation",
    "CounterVerifier",
    "MonotonicCounter",
    "QuorumCoordinator",
    "default_quorum",
    "derive_counter_key",
    "ops_accounted",
]
