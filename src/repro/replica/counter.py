"""A trusted monotonic counter bound to each replica's REPLYs.

The one attack the wire protocol cannot *prevent* is the rollback: a
server that restarts from a stale-but-internally-consistent state serves
perfectly well-formed REPLYs, and detection has to wait until the rolled
state contradicts some client's committed version (Algorithm 1, lines
36/43/51).  A small trusted component — a monotonic counter the
untrusted server cannot rewind — collapses that window to O(1), by the
state-continuity argument of Memoir/TrInc-style systems:

* the server's durable state records its own **position in the SUBMIT
  stream** (``ServerState.submits_applied`` — incremented on every
  apply, captured by snapshots, reconstructed by WAL replay);
* on every SUBMIT the server presents that position to the counter;
  the counter increments and attests **both** numbers — its own fresh
  value and the state-reported position — under a MAC the server never
  holds;
* a memoryless client checks ``attestation.value ==
  attestation.state_value`` on each REPLY, in O(1).

For a server whose recoveries are honest the two march in lockstep: one
counter step per applied SUBMIT.  A rollback breaks the lockstep
*permanently*: the restored state under-reports ``submits_applied`` by
exactly the operations the rollback discarded, and nothing heals it —
client COMMITs rebuild the committed version vector and prune the
pending list, but the state's stream position only ever advances by one
per *newly applied* SUBMIT, so the deficit against the durable counter
is carried forward forever.  The first post-rollback REPLY (and every
one after it) arrives with the counter ahead of the state it vouches
for — caught without cross-client communication and without waiting for
a version conflict.

The threat model is the crash-recovery adversary (the realistic one: a
server that "restores yesterday's backup" and then runs honest code over
the stale state).  A server that additionally *lies* to its own trusted
component about the state position forfeits this O(1) detection — but it
is then actively forging, and the protocol's signature checks and the
quorum's byte-for-byte REPLY comparison own that case.

Authenticity is an HMAC under a key shared between the counter (the
trusted component) and the clients — the *server* never holds it, so it
can neither mint attestations for forged positions nor strip/replay them
undetected: each attestation is bound to the client's own SUBMIT
signature, which the client compares against the operation it actually
has in flight.

Crash semantics are configurable (``durable=True`` keeps the value
across server crashes, the hardware-monotonic model; ``durable=False``
resets to zero, a volatile register).  The volatile flavour demonstrates
the paper-adjacent pitfall: after an honest crash-recovery the *state*
remembers its operations but the counter does not, so honest recovery
becomes indistinguishable from misbehaviour — the trusted component must
be at least as durable as the state it vouches for.
"""

from __future__ import annotations

import hashlib
import hmac as hmac_mod
import os
from dataclasses import dataclass

from repro.common.errors import ConfigurationError, StorageError
from repro.ustor.messages import INT_BYTES

#: Attestation MACs are SHA-256 HMACs.
COUNTER_MAC_BYTES = 32


def derive_counter_key(counter_id: str) -> bytes:
    """The MAC key shared by counter ``counter_id`` and the clients.

    Deterministic derivation models the pre-shared key of the trust
    anchor (provisioned out of band, like the clients' signing keys);
    the untrusted server is *not* given it.
    """
    return hashlib.sha256(
        b"repro.replica.counter-key\x00" + counter_id.encode("utf-8")
    ).digest()


def ops_accounted(reply) -> int:
    """How many SUBMITs the state behind ``reply`` has ever absorbed.

    Sum of the committed timestamp vector plus the still-pending
    invocations: each SUBMIT adds one pending entry, and a dominating
    COMMIT moves entries from pending into the vector one-for-one (a
    non-dominating COMMIT touches neither) — so the total is invariant
    under COMMITs and counts SUBMITs exactly.
    """
    return sum(reply.last_version.version.vector) + len(reply.pending)


@dataclass(frozen=True)
class CounterAttestation:
    """One attested counter reading, bound to one SUBMIT.

    ``binding`` is the submitting client's SUBMIT signature — a value
    the client knows and the server cannot forge — so a replayed
    attestation from an earlier operation fails the binding check at
    the one client able to judge it.  ``state_value`` is the stream
    position the server's durable state reported when the attestation
    was minted (``ServerState.submits_applied`` after the apply); the
    MAC covers it, so the server cannot adjust it after the fact.
    """

    counter_id: str
    value: int
    state_value: int
    binding: bytes
    mac: bytes

    def wire_size(self) -> int:
        """Approximate serialized size (for the message-size accounting)."""
        return (
            len(self.counter_id.encode("utf-8"))
            + 2 * INT_BYTES
            + len(self.binding)
            + len(self.mac)
        )


def _mac(
    key: bytes, counter_id: str, value: int, state_value: int, binding: bytes
) -> bytes:
    payload = (
        counter_id.encode("utf-8")
        + b"\x00"
        + value.to_bytes(INT_BYTES, "big")
        + state_value.to_bytes(INT_BYTES, "big")
        + binding
    )
    return hmac_mod.new(key, payload, hashlib.sha256).digest()


class MonotonicCounter:
    """The trusted component: an attested counter the server cannot rewind.

    ``durable=True`` (the default) models a hardware-monotonic counter:
    its value survives every crash of the server process around it.
    ``durable=False`` models a volatile register that resets with the
    process — useful to demonstrate *why* durability is part of the
    trust model.  ``state_path`` optionally persists a durable counter's
    value to disk so real (TCP) server processes keep it across process
    restarts; volatile counters never touch the file.
    """

    def __init__(
        self,
        counter_id: str,
        durable: bool = True,
        state_path: str | None = None,
    ) -> None:
        if not counter_id:
            raise ConfigurationError("a counter needs a non-empty id")
        if state_path is not None and not durable:
            raise ConfigurationError(
                "state_path persists a durable counter; a volatile counter "
                "forgets its value by definition"
            )
        self.counter_id = counter_id
        self.durable = durable
        self._key = derive_counter_key(counter_id)
        self._state_path = state_path
        self._value = 0
        #: Attestations issued / resets suffered (volatile counters only).
        self.attestations = 0
        self.resets = 0
        if state_path is not None and os.path.exists(state_path):
            self._value = self._load(state_path)

    @property
    def value(self) -> int:
        """The current counter value (number of attestations ever issued)."""
        return self._value

    def attest(self, binding: bytes, state_value: int) -> CounterAttestation:
        """Increment and attest: one monotonic step per SUBMIT applied.

        ``state_value`` is the stream position the server's state claims
        *after* applying the SUBMIT (``ServerState.submits_applied``);
        both numbers go under the MAC so the pair is tamper-evident.
        """
        self._value += 1
        self.attestations += 1
        if self._state_path is not None:
            self._persist()
        return CounterAttestation(
            counter_id=self.counter_id,
            value=self._value,
            state_value=state_value,
            binding=binding,
            mac=_mac(self._key, self.counter_id, self._value, state_value, binding),
        )

    def on_crash(self) -> None:
        """The enclosing server crashed: volatile counters lose everything."""
        if not self.durable:
            self._value = 0
            self.resets += 1

    # -- persistence (real server processes) ---------------------------- #

    def _persist(self) -> None:
        tmp = self._state_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(f"{self.counter_id} {self._value}\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self._state_path)

    def _load(self, path: str) -> int:
        with open(path, "r", encoding="utf-8") as handle:
            fields = handle.read().split()
        if len(fields) != 2 or fields[0] != self.counter_id:
            raise StorageError(
                f"counter state file {path!r} does not belong to counter "
                f"{self.counter_id!r}"
            )
        value = int(fields[1])
        if value < 0:
            raise StorageError(f"counter state file {path!r} holds {value}")
        return value


class CounterVerifier:
    """The client-side O(1) check over each attested REPLY.

    Memoryless about history except for one integer per counter (the
    last value seen, for strict monotonicity across this client's own
    REPLY stream).  Returns a human-readable violation or ``None``.
    """

    def __init__(self) -> None:
        self._last_seen: dict[str, int] = {}

    def check(self, counter_id: str, reply, binding: bytes) -> str | None:
        """Judge one REPLY from the replica owning ``counter_id``.

        ``binding`` is this client's SUBMIT signature for the operation
        the REPLY answers.  Checks, in order: the attestation exists, is
        MAC-authentic, is bound to this operation, moved strictly
        forward, and its counter value matches the stream position the
        server's durable state vouched for.
        """
        attestation = getattr(reply, "attestation", None)
        if attestation is None:
            return "REPLY carries no counter attestation"
        if attestation.counter_id != counter_id:
            return (
                f"attestation names counter {attestation.counter_id!r}, "
                f"expected {counter_id!r}"
            )
        key = derive_counter_key(counter_id)
        expected_mac = _mac(
            key,
            counter_id,
            attestation.value,
            attestation.state_value,
            attestation.binding,
        )
        if not hmac_mod.compare_digest(expected_mac, attestation.mac):
            return "attestation MAC is not authentic"
        if attestation.binding != binding:
            return "attestation is bound to a different operation (replayed)"
        last = self._last_seen.get(counter_id, 0)
        if attestation.value <= last:
            return (
                f"counter went backwards: attested {attestation.value} "
                f"after {last}"
            )
        # Counter and state each advance exactly once per applied SUBMIT;
        # a rollback rewinds the state's position but never the counter,
        # so the first divergence convicts (or, for a volatile counter
        # that forgot an honest server's history, falsely accuses).
        if attestation.value != attestation.state_value:
            return (
                f"counter at {attestation.value} but the state vouches for "
                f"{attestation.state_value} applied SUBMITs — the state "
                f"{'was rolled back' if attestation.value > attestation.state_value else 'ran ahead of the counter'}"
            )
        self._last_seen[counter_id] = attestation.value
        return None
