"""Statistics for the experiment harness.

The headline analytical claims of the paper are *shape* claims ("overhead
is O(n)", "one round per operation", "who blocks and who doesn't"), so the
module focuses on the tools those need: linear regression for complexity
fits and simple trace reductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.sim.trace import SimTrace


@dataclass(frozen=True)
class LinearFit:
    """Least-squares fit of ``y ~ slope * x + intercept``."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Ordinary least squares (no numpy dependency for two sums)."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two equal-length samples of size >= 2")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        raise ValueError("degenerate x sample")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LinearFit(slope=slope, intercept=intercept, r_squared=r_squared)


def bytes_per_operation(trace: SimTrace, operations: int, kinds: Sequence[str]) -> float:
    """Average wire bytes attributable to each completed operation."""
    if operations <= 0:
        raise ValueError("operations must be positive")
    total = sum(trace.total_bytes(kind) for kind in kinds)
    return total / operations


def messages_per_operation(trace: SimTrace, operations: int, kinds: Sequence[str]) -> float:
    if operations <= 0:
        raise ValueError("operations must be positive")
    total = sum(trace.message_count(kind) for kind in kinds)
    return total / operations


def critical_path_rounds(trace: SimTrace, operations: int) -> float:
    """Message rounds on the operation critical path.

    For USTOR the critical path is SUBMIT -> REPLY (one round); COMMIT is
    asynchronous.  Computed as REPLY messages per completed operation —
    exactly one for a correct server.
    """
    if operations <= 0:
        raise ValueError("operations must be positive")
    return trace.message_count("REPLY") / operations
