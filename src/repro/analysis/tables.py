"""Fixed-width table rendering for experiment output.

The benchmark harness prints the rows each experiment reproduces
(EXPERIMENTS.md embeds them verbatim), so the formatting lives in one
place and stays dependency-free.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[_render(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(values: Sequence[str]) -> str:
        return "  ".join(value.ljust(width) for value, width in zip(values, widths)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def _render(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)
