"""ASCII timelines of histories — the paper's figures, renderable.

Figures 2 and 3 of the paper draw operations as intervals on per-client
time lines.  :func:`render_timeline` produces the same picture for any
recorded history::

    C1 |==w(X1,'u')==|...............................
    C2 ..............|==r(X1)->B==|..|==r(X1)->'u'==|

Used by the CLI (``--timeline``) and handy in test failure messages.
"""

from __future__ import annotations

from repro.common.types import BOTTOM, client_name, register_name
from repro.history.events import Operation
from repro.history.history import History


def _label(op: Operation) -> str:
    reg = register_name(op.register)
    if op.is_write:
        return f"w({reg})"
    if op.value is BOTTOM:
        return f"r({reg})->B"
    if op.value is None:
        return f"r({reg})->?"
    try:
        shown = op.value.decode("utf-8")
    except (UnicodeDecodeError, AttributeError):
        shown = op.value.hex()[:6] if isinstance(op.value, bytes) else "?"
    if len(shown) > 8:
        shown = shown[:7] + "~"
    return f"r({reg})->{shown}"


def render_timeline(history: History, width: int = 100) -> str:
    """Render one line per client; operations as ``|==label==|`` spans.

    Incomplete operations extend to the right margin with ``>``.  Spans
    are scaled to the history's duration; labels are truncated to fit.
    """
    ops = list(history)
    if not ops:
        return "(empty history)"
    start = min(op.invoked_at for op in ops)
    end = max(
        op.responded_at if op.complete else op.invoked_at for op in ops
    )
    span = max(end - start, 1e-9)

    def column(time: float) -> int:
        return int((time - start) / span * (width - 1))

    lines = []
    for client in history.clients():
        row = ["."] * width
        for op in history.restrict_to_client(client):
            left = column(op.invoked_at)
            right = column(op.responded_at) if op.complete else width - 1
            right = max(right, left + 1)
            fill = "=" if op.complete else ">"
            for index in range(left, min(right + 1, width)):
                row[index] = fill
            row[left] = "|"
            if op.complete and right < width:
                row[right] = "|"
            label = _label(op)[: max(right - left - 1, 0)]
            for offset, char in enumerate(label):
                position = left + 1 + offset
                if position < min(right, width):
                    row[position] = char
        lines.append(f"{client_name(client):>4} {''.join(row)}")
    scale = f"     t={start:.2f}{' ' * (width - len(f't={start:.2f}') - len(f't={end:.2f}'))}t={end:.2f}"
    return "\n".join(lines + [scale])
