"""Experiment analysis: trace reductions, fits, and table rendering."""

from repro.analysis.stats import (
    LinearFit,
    bytes_per_operation,
    critical_path_rounds,
    linear_fit,
    messages_per_operation,
)
from repro.analysis.tables import format_table
from repro.analysis.timeline import render_timeline

__all__ = [
    "LinearFit",
    "bytes_per_operation",
    "critical_path_rounds",
    "format_table",
    "linear_fit",
    "messages_per_operation",
    "render_timeline",
]
