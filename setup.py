"""Legacy setup shim.

The execution environment ships setuptools without the ``wheel`` package
and has no network access, so PEP 517 editable installs are unavailable;
this shim lets ``pip install -e .`` fall back to the classic
``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
