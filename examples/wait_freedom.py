#!/usr/bin/env python3
"""Wait-freedom: why weak fork-linearizability matters.

The same scenario runs twice: a client crashes right after submitting an
operation (before acknowledging the server's reply).

* Under **USTOR** the remaining clients complete every operation — the
  protocol is wait-free whenever the server is correct.
* Under a **lock-step fork-linearizable** protocol (the SUNDR-style design
  the paper improves on) the server must withhold every later reply until
  the crashed client's commit arrives... which it never does.  The whole
  system wedges, demonstrating the impossibility that motivates weak
  fork-linearizability: no fork-linearizable storage protocol can be
  wait-free.

Both protocols run through the same ``repro.api`` surface — only the
backend (and with it, the guarantee) changes.

Run:  python examples/wait_freedom.py
"""

from repro.api import LockstepBackend, SystemConfig, UstorBackend
from repro.sim.network import FixedLatency


def crash_scenario(system, label: str) -> None:
    print(f"\n=== {label} ===")

    # C1 submits a write and crashes before it can acknowledge the reply.
    doomed = system.session(0).write(b"doomed-operation")
    system.scheduler.schedule(1.5, system.clients[0].crash)
    print("  t=0.0  C1 submits write; t=1.5 C1 crashes (reply lands at t=2)")

    # Later, the surviving clients try to work.
    completions = []

    def submit(client_id: int, tag: str, value_or_register) -> None:
        session = system.session(client_id)
        handle = (
            session.write(value_or_register)
            if isinstance(value_or_register, bytes)
            else session.read(value_or_register)
        )
        handle.add_done_callback(lambda _h: completions.append((tag, system.now)))

    system.scheduler.schedule(5.0, submit, 1, "C2", b"from-C2")
    system.scheduler.schedule(5.0, submit, 2, "C3", 1)
    system.run(until=500.0)

    if completions:
        for who, when in completions:
            print(f"  t={when:5.1f}  {who}'s operation completed")
    else:
        print("  .... no survivor operation ever completed (system is wedged)")
    blocked = getattr(system.server, "blocked", None)
    if blocked is not None:
        print(f"  server token held by the dead client: {blocked}")
    print(f"  survivors completed {len(completions)}/2 operations")
    assert not doomed.done(), "the crashed client's operation must never settle"


def main() -> None:
    config = SystemConfig(num_clients=3, seed=7, latency=FixedLatency(1.0))
    ustor = UstorBackend().open_system(config)
    crash_scenario(ustor, "USTOR (weak fork-linearizable, wait-free)")

    lockstep = LockstepBackend().open_system(config)
    crash_scenario(lockstep, "Lock-step baseline (fork-linearizable, blocking)")

    print(
        "\nSame crash, opposite outcomes: this is Section 4's impossibility "
        "in action,\nand the reason the paper introduces weak fork-linearizability."
    )


if __name__ == "__main__":
    main()
