#!/usr/bin/env python3
"""A sharded cluster with one forking shard: detection stays scoped.

Scaling the fail-aware store out means partitioning registers over many
untrusted servers — and a multi-server adversary has a trick the paper's
single server does not: *be honest on one shard and fork another*.  The
cluster contract (`repro.cluster`) is that each shard is its own
fail-aware trust domain:

1. clients whose operations touched the forked shard receive a
   shard-tagged failure notification — the proof names the guilty shard;
2. clients that never used that shard hear nothing (none of their data
   was at stake);
3. the honest shards keep serving *everyone*, including clients that
   just caught the forked shard red-handed.

Run:  python examples/cluster_split_brain.py
"""

from repro.api import ClusterBackend, FaustParams, OperationFailed, SystemConfig
from repro.cluster import ShardFailureNotification
from repro.common.errors import ProtocolError
from repro.ustor.byzantine import SplitBrainServer

CLIENTS, SHARDS, FORKED = 6, 3, 1
FORK_TIME = 12.0


def forking(n, name):
    groups = [{c for c in range(n) if c % 2 == 0},
              {c for c in range(n) if c % 2 == 1}]
    return SplitBrainServer(n, groups=groups, fork_time=FORK_TIME, name=name)


def main() -> None:
    system = ClusterBackend().open_system(
        SystemConfig(
            num_clients=CLIENTS,
            seed=7,
            shards=SHARDS,
            shard_map="range",
            shard_server_factories={FORKED: forking},
            faust=FaustParams(delta=15.0, probe_check_period=5.0),
        )
    )
    placement = [system.shard_of(r) for r in range(CLIENTS)]
    print(f"{SHARDS} shards over {CLIENTS} registers; register->shard {placement}")
    print(f"shard {FORKED} will fork its clients at t={FORK_TIME}\n")

    sessions = system.sessions()
    forked_registers = [r for r in range(CLIENTS) if placement[r] == FORKED]
    honest_registers = [r for r in range(CLIENTS) if placement[r] != FORKED]

    # Everyone writes its own register; the even clients additionally read
    # from the doomed shard, the odd ones stay entirely on honest shards.
    for client, session in enumerate(sessions):
        session.write_sync(b"v1-of-C%d" % (client + 1))
        if client % 2 == 0:
            session.read_sync(forked_registers[client % len(forked_registers)])
        else:
            session.read_sync(honest_registers[client % len(honest_registers)])

    print("fork happens; background version exchange exposes it ...")
    system.run(until=FORK_TIME + 60.0)

    failures = [
        e for e in system.notifications.history
        if isinstance(e, ShardFailureNotification)
    ]
    notified = sorted({e.client for e in failures})
    print(f"failure notifications: {len(failures)}, "
          f"clients {[f'C{c + 1}' for c in notified]}, "
          f"all tagged shard {sorted({e.shard for e in failures})}")

    # The forked shard is dead to the clients that used it ...
    caught = sessions[notified[0]]
    try:
        caught.read_sync(forked_registers[0])
        raise AssertionError("the forked shard must stay rejected")
    except (OperationFailed, ProtocolError) as exc:
        print(f"C{caught.client_id + 1} re-reading the forked shard: "
              f"{type(exc).__name__}")

    # ... but honest shards still serve them, and everyone else.
    value, _ = caught.read_sync(honest_registers[0])
    print(f"C{caught.client_id + 1} reading an honest shard still works: "
          f"{value!r}")
    for session in sessions:
        if session.client_id not in notified:
            assert not session.failed, "an avoider must not be failed"
    print(f"avoiders {[f'C{c + 1}' for c in range(CLIENTS) if c not in notified]} "
          f"were never notified — none of their data lived on shard {FORKED}")

    assert failures and all(e.shard == FORKED for e in failures)
    assert not caught.failed or caught.failed_shards == (FORKED,)
    print("\none forking shard, surgically detected; the rest of the "
          "cluster never missed a beat.")


if __name__ == "__main__":
    main()
