#!/usr/bin/env python3
"""The rollback attack: why persistence needs fail-awareness.

A production untrusted store must persist its state — and persistence is
an attack surface the wire protocol never sees.  A provider that restores
last night's backup after a "crash" serves every client a consistent,
correctly-signed view of *the past*: no signature is forged, no message
malformed.  What gives it away is the version logic (Definition 7): the
restored server presents versions that no longer dominate what the
clients themselves committed.

This example shows both sides of the coin on the same deployment shape:

1. an HONEST crash — the server goes down mid-run and recovers from its
   write-ahead log + snapshot; the recovered state is byte-identical,
   held requests are served late, and nobody raises ``fail`` (a recovery
   is indistinguishable from slowness, and accuracy demands silence);
2. the ROLLBACK adversary — same crash, but "recovery" restores a stale
   snapshot and discards the WAL suffix; the first client that looks at
   the rolled-back state hands in the proof, and FAUST spreads the
   failure notification to everyone.

Run:  python examples/rollback_attack.py
"""

from repro.api import (
    FailureNotification,
    FaustBackend,
    FaustParams,
    OperationFailed,
    SystemConfig,
)
from repro.store import encode_server_state
from repro.ustor.byzantine import RollbackServer


def honest_crash_recovery() -> None:
    print("=" * 64)
    print("1. honest crash + WAL/snapshot recovery (storage='log')")
    print("=" * 64)
    system = FaustBackend().open_system(
        SystemConfig(
            num_clients=2,
            seed=33,
            storage="log",  # write-ahead log + snapshots
            server_outages=((6.0, 12.0),),  # down over [6, 18)
        )
    )
    alice, bob = system.session(0), system.session(1)

    t1 = alice.write_sync(b"ledger-entry-1")
    print(f"alice wrote entry 1 (t={t1}); the server crashes at t=6 ...")
    system.run(until=5.5)
    handle = alice.write(b"ledger-entry-2")  # lands during the outage
    entry2 = handle.result(timeout=100)
    print(f"alice's entry 2 was held during the outage and committed at "
          f"t(virtual)={system.now:.1f} (timestamp {entry2.timestamp})")

    value, _ = bob.read_sync(0)
    print(f"bob reads the register after recovery: {value!r}")

    server = system.server
    before = encode_server_state(server.last_pre_crash_state)
    after = encode_server_state(server.last_recovery_state)
    print(f"recovered state byte-identical to pre-crash state: {before == after}")
    print(f"failure notifications raised: "
          f"{len(system.notifications.failure_events())} (recovery is not "
          f"misbehaviour)")
    assert value == b"ledger-entry-2"
    assert before == after
    assert not system.notifications.failure_events()


def rollback_attack() -> None:
    print()
    print("=" * 64)
    print("2. the rollback adversary: 'recovery' from a stale snapshot")
    print("=" * 64)
    system = FaustBackend().open_system(
        SystemConfig(
            num_clients=2,
            seed=34,
            server_factory=lambda n, name: RollbackServer(
                n,
                snapshot_after_submits=1,   # the backup is taken here
                rollback_after_submits=3,   # ... and restored after this
                outage=4.0,
                name=name,
            ),
            # Quiet background machinery: bob's scripted read (not a dummy
            # read racing it) should be the one that catches the rollback.
            faust=FaustParams(enable_dummy_reads=False, enable_probes=False),
        )
    )
    alice, bob = system.session(0), system.session(1)
    events = system.notifications.subscribe(kinds=FailureNotification)

    for version in (1, 2, 3):
        alice.write_sync(b"ledger-entry-%d" % version)
    print("alice committed entries 1..3; the provider 'crashes' and quietly "
          "restores the backup taken after entry 1 ...")
    system.run(until=system.now + 6.0)

    print("bob reads the ledger from the rolled-back server:")
    try:
        bob.read_sync(0)
        raise AssertionError("the stale read must not pass the checks")
    except OperationFailed as exc:
        print(f"  OperationFailed: {exc}")

    system.run(until=system.now + 20.0)  # let the FAILURE alert propagate
    print(f"failure notifications: {len(events.events)} "
          f"(clients: {sorted({e.client for e in events.events})})")
    for event in events.events[:1]:
        print(f"  first evidence: {event.reason}")
    assert events.events, "the rollback must be detected"


def main() -> None:
    honest_crash_recovery()
    rollback_attack()
    print()
    print("same crash, different recovery: exact state -> silence; stale "
          "state -> proof.")


if __name__ == "__main__":
    main()
