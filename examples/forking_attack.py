#!/usr/bin/env python3
"""Figure 3 of the paper: a forking attack that no USTOR check can catch —
and how FAUST exposes it anyway.

The Byzantine server hides C1's ``write(X1, u)`` from C2's first read
(which therefore returns BOTTOM) and then *rejoins* the branches: C2's
second read returns ``u`` with every signature genuine and every check of
Algorithm 1 passing.  The resulting history is exactly the paper's
Figure 3 — weakly fork-linearizable, so the protocol (correctly!) does not
halt; but it is not linearizable and not fork-linearizable.

The fork is still recorded in the version digests: C1's and C2's versions
are incomparable.  The moment the clients compare versions over the
offline channel, both output ``fail``.

Run:  python examples/forking_attack.py
"""

from repro.api import FailureNotification
from repro.consistency.causal import check_causal_consistency
from repro.consistency.fork import check_fork_linearizability_exhaustive
from repro.consistency.linearizability import check_linearizability
from repro.consistency.weak_fork import check_weak_fork_linearizability_exhaustive
from repro.workloads.scenarios import figure3_scenario


def main() -> None:
    print("Phase 1: the attack, against plain USTOR clients")
    result = figure3_scenario()
    print("  recorded history:")
    for op in result.history:
        print(f"    {op.describe()}")

    print("\n  classification by the independent checkers:")
    for name, check in [
        ("linearizability", check_linearizability),
        ("causal consistency", check_causal_consistency),
        ("fork-linearizability", check_fork_linearizability_exhaustive),
        ("weak fork-linearizability", check_weak_fork_linearizability_exhaustive),
    ]:
        verdict = check(result.history)
        print(f"    {name:28s} {'HOLDS' if verdict.ok else 'violated'}")

    print(f"\n  USTOR clients raised fail during the attack: {result.ustor_detected}")
    writer, victim = result.system.clients
    comparable = writer.version.comparable(victim.version)
    print(f"  C1/C2 versions comparable after the join:    {comparable}")
    assert not result.ustor_detected and not comparable

    print("\nPhase 2: the same attack, against FAUST clients with probing")
    faust = figure3_scenario(faust=True)
    system = faust.system
    alerts = system.notifications.subscribe(kinds=FailureNotification)
    system.run(until=system.now + 400)
    for event in alerts.events:
        print(f"  t={event.time:5.1f}  fail_C{event.client + 1}: {event.reason}")
    assert all(c.faust_failed for c in system.clients)
    assert {e.client for e in alerts.events} == {0, 1}
    print("\nThe offline version exchange turned an undetectable fork into")
    print("accurate, complete failure notifications at every client.")


if __name__ == "__main__":
    main()
