#!/usr/bin/env python3
"""Quickstart: a fail-aware untrusted storage service in ~40 lines.

Three clients share n SWMR registers through a simulated (correct) server.
The fail-aware layer returns a timestamp with every operation, emits
``stable`` notifications as consistency is established across clients, and
would emit ``fail`` if the server misbehaved.

Run:  python examples/quickstart.py
"""

from repro.faust.service import FaustService
from repro.workloads.runner import SystemBuilder


def main() -> None:
    # Build a world: deterministic scheduler, FIFO network, offline
    # channel, correct server, three FAUST clients with background
    # version propagation enabled.
    system = SystemBuilder(num_clients=3, seed=42).build_faust(dummy_read_period=3.0)
    alice = FaustService(system, 0)
    bob = FaustService(system, 1)

    # Alice writes her register; the response carries a timestamp.
    t1 = alice.write(b"design-doc v1")
    print(f"alice wrote v1           -> timestamp {t1}")

    # Bob reads Alice's register.
    value, t_bob = bob.read(0)
    print(f"bob read register X1     -> {value!r} (bob's timestamp {t_bob})")

    # Alice keeps editing.
    t2 = alice.write(b"design-doc v2")
    print(f"alice wrote v2           -> timestamp {t2}")

    # Wait until Alice's v2 write is STABLE w.r.t. every client: from here
    # on, no server misbehaviour can ever rewrite this prefix of history.
    stable = alice.wait_for_stability(t2, timeout=2_000)
    print(f"alice's v2 stable w.r.t. all clients: {stable}")
    print(f"alice's stability cut W = {list(alice.stability_cut)}")

    # Nothing went wrong, so no fail notifications fired.
    assert not alice.failed and not bob.failed
    print("no failure notifications — the server behaved. all done.")


if __name__ == "__main__":
    main()
