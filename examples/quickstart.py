#!/usr/bin/env python3
"""Quickstart: a fail-aware untrusted storage service in ~40 lines.

Three clients share n SWMR registers through a simulated (correct) server.
The unified ``repro.api`` facade opens the system on the FAUST backend:
per-client sessions return a timestamp with every operation, the
notification hub delivers typed ``stable`` events as consistency is
established across clients, and would deliver ``fail`` events if the
server misbehaved.

Run:  python examples/quickstart.py
"""

from repro.api import FaustBackend, FaustParams, StabilityNotification, SystemConfig


def main() -> None:
    # Build a world: deterministic scheduler, FIFO network, offline
    # channel, correct server, three FAUST clients with background
    # version propagation enabled.
    system = FaustBackend().open_system(
        SystemConfig(num_clients=3, seed=42, faust=FaustParams(dummy_read_period=3.0))
    )
    alice = system.session(0)
    bob = system.session(1)

    # Watch the fail-aware layer's output actions as typed events.
    subscription = system.notifications.subscribe()

    # Alice writes her register; the response carries a timestamp.
    t1 = alice.write_sync(b"design-doc v1")
    print(f"alice wrote v1           -> timestamp {t1}")

    # Bob reads Alice's register — as a future this time.
    result = bob.read(0).result()
    print(f"bob read register X1     -> {result.value!r} "
          f"(bob's timestamp {result.timestamp})")

    # Alice keeps editing.
    t2 = alice.write_sync(b"design-doc v2")
    print(f"alice wrote v2           -> timestamp {t2}")

    # Wait until Alice's v2 write is STABLE w.r.t. every client: from here
    # on, no server misbehaviour can ever rewrite this prefix of history.
    stable = alice.wait_for_stability(t2, timeout=2_000)
    print(f"alice's v2 stable w.r.t. all clients: {stable}")
    print(f"alice's stability cut W = {list(alice.stability_cut)}")

    # Nothing went wrong, so only stability notifications fired.
    events = subscription.events
    assert events and all(isinstance(e, StabilityNotification) for e in events)
    assert not alice.failed and not bob.failed
    print(f"{len(events)} stable notifications, no failures — the server behaved.")


if __name__ == "__main__":
    main()
