#!/usr/bin/env python3
"""Why FAUST talks client-to-client: stability surviving a server outage.

Section 6's key observation: dummy reads alone cannot make stability
detection complete, because a faulty server — even one that merely
crashes — can stop relaying versions.  FAUST therefore exchanges versions
over the *offline* channel (PROBE / VERSION messages).

This example completes two operations, kills the server, and shows that
the operations still become mutually stable through offline exchange —
while new operations (correctly) hang forever, and no client ever raises
``fail``: a crash is indistinguishable from slowness and is *not*
Byzantine evidence.

Run:  python examples/server_outage.py
"""

from repro.ustor.byzantine import CrashingServer
from repro.workloads.runner import SystemBuilder


def main() -> None:
    # The server will crash after serving exactly two SUBMITs — Alice's
    # write and Bob's read both complete, then the lights go out.
    system = SystemBuilder(
        num_clients=2,
        seed=33,
        server_factory=lambda n, name: CrashingServer(n, crash_after_submits=2, name=name),
    ).build_faust(
        dummy_read_period=1_000.0,  # isolate the offline path
        probe_check_period=3.0,
        delta=10.0,
    )
    alice, bob = system.clients

    done = []
    alice.write(b"final-report.pdf", done.append)
    system.run_until(lambda: len(done) == 1, timeout=100)
    bob.read(0, done.append)
    system.run_until(lambda: len(done) == 2, timeout=100)
    print(f"alice wrote her report (t={done[0].timestamp}); bob read it: "
          f"{done[1].value!r}")

    print("\n... the provider goes down (next request kills it) ...")
    system.run(until=system.now + 60)

    t = done[0].timestamp
    print(f"\nwaiting for alice's write (t={t}) to become stable w.r.t. bob,")
    print("with the server dead — only PROBE/VERSION exchange can do it:")
    reached = system.run_until(
        lambda: alice.tracker.stable_timestamp_for(1) >= t, timeout=2_000
    )
    print(f"  stable w.r.t. bob: {reached}")
    print(f"  alice's stability cut: {list(alice.tracker.stability_cut())}")

    print("\nmeanwhile, a new operation hangs (wait-freedom needs a correct server):")
    box = []
    try:
        alice.write(b"new-draft", box.append)
    except Exception as exc:  # the client may have halted ops — not here
        print(f"  {exc}")
    system.run(until=system.now + 200)
    print(f"  new write completed: {bool(box)} (expected: False)")

    print("\nand nobody cried wolf — a crash is not provable misbehaviour:")
    for client in system.clients:
        print(f"  {client.name}: fail raised = {client.faust_failed}")
    assert reached and not any(c.faust_failed for c in system.clients)


if __name__ == "__main__":
    main()
