#!/usr/bin/env python3
"""Why FAUST talks client-to-client: stability surviving a server outage.

Section 6's key observation: dummy reads alone cannot make stability
detection complete, because a faulty server — even one that merely
crashes — can stop relaying versions.  FAUST therefore exchanges versions
over the *offline* channel (PROBE / VERSION messages).

This example completes two operations, kills the server, and shows that
the operations still become mutually stable through offline exchange —
while new operations (correctly) hang forever, and no client ever raises
``fail``: a crash is indistinguishable from slowness and is *not*
Byzantine evidence.

Run:  python examples/server_outage.py
"""

from repro.api import (
    FaustBackend,
    FaustParams,
    OperationTimeout,
    SystemConfig,
)
from repro.ustor.byzantine import CrashingServer


def main() -> None:
    # The server will crash after serving exactly two SUBMITs — Alice's
    # write and Bob's read both complete, then the lights go out.
    system = FaustBackend().open_system(
        SystemConfig(
            num_clients=2,
            seed=33,
            server_factory=lambda n, name: CrashingServer(
                n, crash_after_submits=2, name=name
            ),
            faust=FaustParams(
                dummy_read_period=1_000.0,  # isolate the offline path
                probe_check_period=3.0,
                delta=10.0,
            ),
        )
    )
    alice, bob = system.session(0), system.session(1)

    write = alice.write(b"final-report.pdf").result(timeout=100)
    read = bob.read(0).result(timeout=100)
    print(f"alice wrote her report (t={write.timestamp}); bob read it: "
          f"{read.value!r}")

    print("\n... the provider goes down (next request kills it) ...")
    system.run(until=system.now + 60)

    t = write.timestamp
    print(f"\nwaiting for alice's write (t={t}) to become stable w.r.t. bob,")
    print("with the server dead — only PROBE/VERSION exchange can do it:")
    reached = system.run_until(
        lambda: alice.client.tracker.stable_timestamp_for(1) >= t, timeout=2_000
    )
    print(f"  stable w.r.t. bob: {reached}")
    print(f"  alice's stability cut: {list(alice.stability_cut)}")

    print("\nmeanwhile, a new operation hangs (wait-freedom needs a correct server):")
    handle = alice.write(b"new-draft")
    try:
        handle.result(timeout=200)
    except OperationTimeout as exc:
        print(f"  {exc}")
    print(f"  new write completed: {handle.done()} (expected: False)")

    print("\nand nobody cried wolf — a crash is not provable misbehaviour:")
    assert not system.notifications.failure_events()
    for client in system.clients:
        print(f"  {client.name}: fail raised = {client.faust_failed}")
    assert reached and not any(c.faust_failed for c in system.clients)


if __name__ == "__main__":
    main()
