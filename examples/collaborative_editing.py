#!/usr/bin/env python3
"""Figure 2 of the paper: Alice, Bob and Carlos edit a file worldwide.

Day time in Europe: Alice and Bob collaborate through the provider and see
each other's updates.  Carlos (in America) read Alice's early edits and
went to sleep.  Alice's stability notification shows exactly the paper's
cut:

    stable_Alice([10, 8, 3])

— consistent with herself up to her operation with timestamp 10, with Bob
up to 8, with Carlos up to 3.  Crucially, neither Alice nor Bob can tell
at this point whether Carlos is just asleep or whether the server is
hiding his operations.  When Carlos wakes up, version exchange resumes and
every operation becomes stable at every client — the benign explanation
wins.  (If the server *had* forked Carlos away, the offline PROBE/VERSION
exchange would instead have produced fail notifications — see
examples/forking_attack.py.)

Run:  python examples/collaborative_editing.py
"""

from repro.workloads.scenarios import figure2_scenario


def main() -> None:
    print("Day phase: Alice edits, Bob follows, Carlos sleeps after 3 edits.")
    result = figure2_scenario(include_carlos_return=True)
    alice, bob, carlos = result.system.clients

    print("\nAlice's stability notifications (before Carlos returns):")
    for cut in result.alice_cuts:
        marker = "   <-- Figure 2's stability cut" if cut == (10, 8, 3) else ""
        print(f"  stable_Alice({list(cut)}){marker}")
        if cut == (10, 8, 3):
            break

    assert result.reproduced, "the Figure 2 cut must be reproduced exactly"

    print("\nNight phase: Carlos returned; background exchange resumed.")
    system = result.system
    system.run_until(
        lambda: alice.tracker.stable_timestamp_for_all() >= 10, timeout=3_000
    )
    for client in (alice, bob, carlos):
        cut = client.tracker.stability_cut()
        print(f"  {client.name}: final cut {list(cut)}  failed={client.faust_failed}")

    assert alice.tracker.stable_timestamp_for_all() >= 10
    print("\nAll of Alice's day-phase operations are now stable at all clients.")


if __name__ == "__main__":
    main()
