#!/usr/bin/env python3
"""Figure 2 of the paper: Alice, Bob and Carlos edit a file worldwide.

Day time in Europe: Alice and Bob collaborate through the provider and see
each other's updates.  Carlos (in America) read Alice's early edits and
went to sleep.  Alice's stability notification shows exactly the paper's
cut:

    stable_Alice([10, 8, 3])

— consistent with herself up to her operation with timestamp 10, with Bob
up to 8, with Carlos up to 3.  Crucially, neither Alice nor Bob can tell
at this point whether Carlos is just asleep or whether the server is
hiding his operations.  When Carlos wakes up, version exchange resumes and
every operation becomes stable at every client — the benign explanation
wins.  (If the server *had* forked Carlos away, the offline PROBE/VERSION
exchange would instead have produced fail notifications — see
examples/forking_attack.py.)

Run:  python examples/collaborative_editing.py
"""

from repro.workloads.scenarios import figure2_scenario


def main() -> None:
    print("Day phase: Alice edits, Bob follows, Carlos sleeps after 3 edits.")
    result = figure2_scenario(include_carlos_return=True)
    system = result.system

    print("\nAlice's stability notifications (before Carlos returns):")
    for cut in result.alice_cuts:
        marker = "   <-- Figure 2's stability cut" if cut == (10, 8, 3) else ""
        print(f"  stable_Alice({list(cut)}){marker}")
        if cut == (10, 8, 3):
            break

    assert result.reproduced, "the Figure 2 cut must be reproduced exactly"

    # The same notifications, as typed events off the system's hub —
    # every stable_i(W) of every client, in global emission order.
    alice_events = [
        e for e in system.notifications.stability_events() if e.client == 0
    ]
    assert (10, 8, 3) in [e.cut for e in alice_events]

    print("\nNight phase: Carlos returned; background exchange resumed.")
    alice = system.session(0)
    system.run_until(
        lambda: alice.client.tracker.stable_timestamp_for_all() >= 10, timeout=3_000
    )
    for session in system.sessions():
        cut = session.stability_cut
        print(
            f"  {session.client.name}: final cut {list(cut)}  "
            f"failed={session.failed}"
        )

    assert alice.client.tracker.stable_timestamp_for_all() >= 10
    print("\nAll of Alice's day-phase operations are now stable at all clients.")


if __name__ == "__main__":
    main()
