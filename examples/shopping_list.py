#!/usr/bin/env python3
"""A multi-writer shopping list on fail-aware untrusted storage.

The paper's functionality is n single-writer registers; this example runs
the :class:`repro.apps.kvstore.KvStore` composition on top: every client
appends updates to its own register, readers merge all logs in Lamport
order.  The map inherits the storage guarantees — and when the same
deployment is pointed at a forking server, the divergence both *shows up
in the application state* and is *detected* by the fail-aware layer,
delivered here as typed failure notifications.

Run:  python examples/shopping_list.py
"""

from repro.api import FailureNotification, FaustBackend, FaustParams, SystemConfig
from repro.apps.kvstore import KvStore
from repro.ustor.byzantine import SplitBrainServer


def honest_session() -> None:
    print("=== Honest provider ===")
    system = FaustBackend().open_system(
        SystemConfig(num_clients=3, seed=21, faust=FaustParams(dummy_read_period=3.0))
    )
    alice, bob, carol = (KvStore(system, i) for i in range(3))

    alice.put("milk", "2 bottles")
    bob.put("eggs", "a dozen")
    carol.put("coffee", "1 bag")
    bob.snapshot()
    bob.put("milk", "3 bottles — we need more")  # bob overrides alice
    alice.delete("coffee")

    print("  the merged list, as each household member sees it:")
    for name, store in [("alice", alice), ("bob", bob), ("carol", carol)]:
        print(f"    {name}: {store.snapshot()}")

    t = alice.put("bread", "rye")
    stable = alice.wait_until_stable(t, timeout=3_000)
    print(f"  alice's last update stable w.r.t. everyone: {stable}")
    assert stable and not alice.failed


def forked_session() -> None:
    print("\n=== Forking provider (split brain) ===")
    system = FaustBackend().open_system(
        SystemConfig(
            num_clients=2,
            seed=22,
            server_factory=lambda n, name: SplitBrainServer(
                n, groups=[{0}, {1}], fork_time=0.0, name=name
            ),
            faust=FaustParams(
                dummy_read_period=5.0, probe_check_period=4.0, delta=15.0
            ),
        )
    )
    alerts = system.notifications.subscribe(kinds=FailureNotification)
    alice, bob = KvStore(system, 0), KvStore(system, 1)

    alice.put("party", "saturday")
    bob.put("party", "sunday")
    print(f"  alice's branch: {alice.snapshot()}")
    print(f"  bob's branch:   {bob.snapshot()}")
    print("  (the provider shows each a world without the other's update)")

    system.run(until=system.now + 600)
    for client in system.clients:
        status = "FAIL raised" if client.faust_failed else "no detection"
        print(f"  {client.name}: {status}")
    assert all(c.faust_failed for c in system.clients)
    assert {e.client for e in alerts.events} == {0, 1}
    print("  offline probing exposed the fork at both clients.")


def main() -> None:
    honest_session()
    forked_session()


if __name__ == "__main__":
    main()
