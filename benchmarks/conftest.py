"""Benchmark-suite configuration.

Each experiment benchmark runs the corresponding ``repro.experiments``
module in *quick* mode under pytest-benchmark and asserts the headline
findings, so ``pytest benchmarks/ --benchmark-only`` both times the
harness and re-verifies every reproduced claim.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_experiment(benchmark):
    """Benchmark an experiment module and return its (quick) result."""

    def runner(module):
        return benchmark.pedantic(
            lambda: module.run(quick=True), rounds=1, iterations=1, warmup_rounds=0
        )

    return runner
