"""Benchmark-suite configuration.

Each experiment benchmark runs the corresponding ``repro.experiments``
module in *quick* mode under pytest-benchmark and asserts the headline
findings, so ``pytest benchmarks/ --benchmark-only`` both times the
harness and re-verifies every reproduced claim.

Reproducibility and the perf trajectory:

* **One pinned seed.**  Every benchmark that needs randomness draws it
  from the ``bench_seed`` / ``bench_rng`` fixtures.  The seed defaults to
  :data:`BENCH_SEED` and can be overridden with ``REPRO_BENCH_SEED=<n>``;
  whichever value is used is stamped into the results file, so a run can
  always be replayed bit-for-bit.
* **Machine-readable results.**  Every run writes
  ``benchmarks/results/BENCH_<session>.json`` — per-test wall-clock call
  durations plus environment provenance — giving the performance
  trajectory concrete data points even when pytest-benchmark's own
  timing is disabled (as in CI's ``--benchmark-disable`` smoke).
"""

from __future__ import annotations

import json
import os
import platform
import random
import sys
import time
from pathlib import Path

import pytest

#: The suite-wide RNG seed; override with REPRO_BENCH_SEED.
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "20260730"))

RESULTS_DIR = Path(__file__).resolve().parent / "results"

_durations: dict[str, float] = {}
_session_started = time.time()


@pytest.fixture(scope="session")
def bench_seed() -> int:
    """The pinned (surfaceable) RNG seed of this benchmark run."""
    return BENCH_SEED


@pytest.fixture
def bench_rng(bench_seed) -> random.Random:
    """A fresh, seed-pinned RNG per test (no cross-test coupling)."""
    return random.Random(bench_seed)


@pytest.fixture
def run_experiment(benchmark):
    """Benchmark an experiment module and return its (quick) result."""

    def runner(module):
        return benchmark.pedantic(
            lambda: module.run(quick=True), rounds=1, iterations=1, warmup_rounds=0
        )

    return runner


# --------------------------------------------------------------------- #
# BENCH_*.json emission
# --------------------------------------------------------------------- #


def pytest_runtest_logreport(report):
    if report.when == "call" and report.passed:
        _durations[report.nodeid] = report.duration


def pytest_sessionfinish(session, exitstatus):
    if not _durations:
        return  # nothing benchmarked (collection error, -k filtered all, ...)
    RESULTS_DIR.mkdir(exist_ok=True)
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(_session_started))
    payload = {
        "schema": "repro-bench-v1",
        "started_at_unix": _session_started,
        "wall_seconds": time.time() - _session_started,
        "seed": BENCH_SEED,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "argv": sys.argv[1:],
        "exit_status": int(exitstatus),
        "tests": [
            {"id": nodeid, "call_seconds": duration}
            for nodeid, duration in sorted(_durations.items())
        ],
    }
    path = RESULTS_DIR / f"BENCH_{stamp}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    # One stable alias for tooling that wants "the latest run".
    (RESULTS_DIR / "BENCH_latest.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
