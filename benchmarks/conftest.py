"""Benchmark-suite configuration.

Each experiment benchmark runs the corresponding ``repro.experiments``
module in *quick* mode under pytest-benchmark and asserts the headline
findings, so ``pytest benchmarks/ --benchmark-only`` both times the
harness and re-verifies every reproduced claim.

Reproducibility and the perf trajectory:

* **One pinned seed.**  Every benchmark that needs randomness draws it
  from the ``bench_seed`` / ``bench_rng`` fixtures.  The seed defaults to
  :data:`BENCH_SEED` and can be overridden with ``REPRO_BENCH_SEED=<n>``;
  whichever value is used is stamped into the results file, so a run can
  always be replayed bit-for-bit.
* **Machine-readable results.**  Every run writes
  ``benchmarks/results/BENCH_<session>.json`` — per-test wall-clock call
  durations plus environment provenance — giving the performance
  trajectory concrete data points even when pytest-benchmark's own
  timing is disabled (as in CI's ``--benchmark-disable`` smoke).
* **Hot-path speedups.**  ``test_bench_perf.py`` measures the optimized
  protocol hot paths against their reference implementations and records
  the resulting *ratios* through the ``record_hot_path`` fixture into the
  results file's ``hot_paths`` section.  Ratios, unlike raw durations,
  transfer across machines, so the committed ``BENCH_baseline.json`` can
  gate CI via ``python -m repro.perf`` (see PERFORMANCE.md).
"""

from __future__ import annotations

import json
import os
import platform
import random
import sys
import time
from pathlib import Path

import pytest

#: The suite-wide RNG seed; override with REPRO_BENCH_SEED.
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "20260730"))

RESULTS_DIR = Path(__file__).resolve().parent / "results"

_durations: dict[str, float] = {}
_hot_paths: dict[str, dict] = {}
_session_started = time.time()


@pytest.fixture(scope="session")
def bench_seed() -> int:
    """The pinned (surfaceable) RNG seed of this benchmark run."""
    return BENCH_SEED


@pytest.fixture
def bench_rng(bench_seed) -> random.Random:
    """A fresh, seed-pinned RNG per test (no cross-test coupling)."""
    return random.Random(bench_seed)


@pytest.fixture
def record_hot_path():
    """Record one reference-vs-optimized hot-path measurement.

    ``rec(name, reference_seconds, optimized_seconds, **details)`` stores
    both timings, the speedup ratio and any extra workload details under
    ``hot_paths.<name>`` of this session's ``BENCH_*.json`` — the data
    the ``repro.perf`` regression gate compares across runs.

    ``gate=False`` marks a ratio as informational: recorded and reported,
    but not failed on.  Use it for ratios that measure machine properties
    (e.g. C-extension crypto cost vs. interpreter overhead) rather than
    properties of our code, which do not transfer between the committed
    baseline's machine and CI runners.
    """

    def rec(
        name: str,
        reference_seconds: float,
        optimized_seconds: float,
        gate: bool = True,
        **details,
    ) -> float:
        speedup = reference_seconds / optimized_seconds
        _hot_paths[name] = {
            "reference_seconds": reference_seconds,
            "optimized_seconds": optimized_seconds,
            "speedup": speedup,
            "gate": gate,
            **details,
        }
        return speedup

    return rec


@pytest.fixture
def run_experiment(benchmark):
    """Benchmark an experiment module and return its (quick) result."""

    def runner(module):
        return benchmark.pedantic(
            lambda: module.run(quick=True), rounds=1, iterations=1, warmup_rounds=0
        )

    return runner


# --------------------------------------------------------------------- #
# BENCH_*.json emission
# --------------------------------------------------------------------- #


def pytest_runtest_logreport(report):
    if report.when == "call" and report.passed:
        _durations[report.nodeid] = report.duration


def pytest_sessionfinish(session, exitstatus):
    if not _durations:
        return  # nothing benchmarked (collection error, -k filtered all, ...)
    RESULTS_DIR.mkdir(exist_ok=True)
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(_session_started))
    payload = {
        "schema": "repro-bench-v1",
        "started_at_unix": _session_started,
        "wall_seconds": time.time() - _session_started,
        "seed": BENCH_SEED,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "argv": sys.argv[1:],
        "exit_status": int(exitstatus),
        "tests": [
            {"id": nodeid, "call_seconds": duration}
            for nodeid, duration in sorted(_durations.items())
        ],
        "hot_paths": dict(sorted(_hot_paths.items())),
    }
    path = RESULTS_DIR / f"BENCH_{stamp}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    # One stable alias for tooling that wants "the latest run".
    (RESULTS_DIR / "BENCH_latest.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
