"""Micro-benchmarks of the protocol hot paths.

Measures simulated-operation throughput end to end (client + server +
network + recorder), the cost of one server SUBMIT application, and the
piggyback/eager and scheme trade-offs — the numbers a downstream user
needs to size a deployment of the simulator.
"""

from __future__ import annotations

import random

import pytest

from repro.common.types import OpKind
from repro.crypto.keystore import KeyStore
from repro.ustor.messages import InvocationTuple, SubmitMessage
from repro.ustor.server import ServerState, apply_submit
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts
from repro.workloads.runner import SystemBuilder


def _run_workload(num_clients: int, ops_per_client: int, seed: int, **builder_kwargs):
    system = SystemBuilder(num_clients=num_clients, seed=seed, **builder_kwargs).build()
    scripts = generate_scripts(
        num_clients,
        WorkloadConfig(ops_per_client=ops_per_client, read_fraction=0.5, mean_think_time=0.0),
        random.Random(seed),
    )
    driver = Driver(system)
    driver.attach_all(scripts)
    assert driver.run_to_completion(timeout=10_000_000)
    return driver.stats.total_completed()


@pytest.mark.parametrize("num_clients", [2, 8])
def test_ustor_throughput(benchmark, num_clients):
    ops = benchmark(_run_workload, num_clients, 25, 1)
    assert ops == num_clients * 25


def test_ustor_throughput_ed25519(benchmark):
    ops = benchmark(_run_workload, 4, 10, 2, scheme="ed25519")
    assert ops == 40


def test_ustor_throughput_piggyback(benchmark):
    ops = benchmark(_run_workload, 4, 25, 3, commit_piggyback=True)
    assert ops == 100


def test_server_apply_submit(benchmark):
    store = KeyStore(8, scheme="hmac")
    signer = store.signer(0)

    def one_submit():
        state = ServerState.initial(8)
        message = SubmitMessage(
            timestamp=1,
            invocation=InvocationTuple(
                client=0,
                opcode=OpKind.WRITE,
                register=0,
                submit_sig=signer.sign("SUBMIT", OpKind.WRITE, 0, 1),
            ),
            value=b"v" * 64,
            data_sig=signer.sign("DATA", 1, b"h"),
        )
        return apply_submit(state, message)

    reply = benchmark(one_submit)
    assert reply.commit_index == 0


def test_lockstep_throughput(benchmark):
    from repro.baselines.lockstep import build_lockstep_system

    def run():
        system = build_lockstep_system(4, seed=4)
        scripts = generate_scripts(
            4,
            WorkloadConfig(ops_per_client=15, read_fraction=0.5, mean_think_time=0.0),
            random.Random(4),
        )
        driver = Driver(system)
        driver.attach_all(scripts)
        assert driver.run_to_completion(timeout=10_000_000)
        return driver.stats.total_completed()

    assert benchmark(run) == 60
