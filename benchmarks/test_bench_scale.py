"""Scale-harness regression: bounded state must not cost throughput.

The open-loop harness (``repro.workloads.scale``) drives the FAUST
system with Poisson arrivals and samples resident state; this bench runs
the same seeded workload with checkpointing on and off and records the
wall-clock *ratio* through ``record_hot_path`` (``scale_bounded_state``,
informational — checkpointing trades a handful of offline-channel
messages for unbounded memory, so the ratio hovers near 1 and mostly
measures scheduler noise; what is gated here are the structural
findings, which hold on any machine):

* checkpointing keeps the post-warmup growth ratio of the resident
  aggregate near 1 while the uncheckpointed run keeps growing;
* operation latency percentiles are identical — the checkpoint protocol
  rides the offline channel and never touches the data path;
* both runs complete the full planned schedule with clean checkers.

The companion ``membership_overhead`` ratio prices the lease layer the
same way: the identical checkpointed workload with membership epochs on
vs off.  Fault-free, the lease bookkeeping rides the existing membership
tick and co-signs nothing, so the ratio again hovers near 1; the gated
findings are that the epoch stays 0, nobody is evicted, and the
checkpoint chain and latency percentiles are untouched.
"""

from __future__ import annotations

import time

from repro.faust.checkpoint import CheckpointPolicy
from repro.faust.membership import MembershipPolicy
from repro.workloads.generator import OpenLoopConfig
from repro.workloads.scale import ScaleConfig, run_scale


def _config(bench_seed: int, checkpoint, membership=None) -> ScaleConfig:
    return ScaleConfig(
        num_clients=4,
        seed=bench_seed,
        open_loop=OpenLoopConfig(rate=0.15, duration=400.0),
        checkpoint=checkpoint,
        membership=membership,
        sample_every=20.0,
    )


def test_scale_open_loop_bounded_state(bench_seed, record_hot_path):
    started = time.perf_counter()
    off = run_scale(_config(bench_seed, None))
    off_seconds = time.perf_counter() - started

    started = time.perf_counter()
    on = run_scale(
        _config(bench_seed, CheckpointPolicy(interval=16, keep_tail=2))
    )
    on_seconds = time.perf_counter() - started

    record_hot_path(
        "scale_bounded_state",
        reference_seconds=off_seconds,
        optimized_seconds=on_seconds,
        gate=False,
        clients=4,
        planned_ops=on.planned,
        checkpoints_installed=on.checkpoints_installed,
        growth_ratio_on=on.growth_ratio,
        growth_ratio_off=off.growth_ratio,
        final_bounded_on=on.samples[-1].bounded_total,
        final_bounded_off=off.samples[-1].bounded_total,
        latency_p99=on.latency_p99,
    )

    # Structural findings — machine-independent, asserted every run.
    assert on.checkpoints_installed >= 10
    assert on.growth_ratio < off.growth_ratio
    assert on.samples[-1].bounded_total < off.samples[-1].bounded_total
    assert (on.latency_p50, on.latency_p95, on.latency_p99) == (
        off.latency_p50, off.latency_p95, off.latency_p99
    )
    assert on.completed == on.planned == off.completed
    assert on.checker_ok == off.checker_ok == {
        "linearizability": True, "causal": True
    }
    assert on.failed_clients == off.failed_clients == 0


def test_scale_membership_overhead(bench_seed, record_hot_path):
    policy = CheckpointPolicy(interval=16, keep_tail=2)

    started = time.perf_counter()
    off = run_scale(_config(bench_seed, policy))
    off_seconds = time.perf_counter() - started

    started = time.perf_counter()
    on = run_scale(_config(bench_seed, policy, MembershipPolicy()))
    on_seconds = time.perf_counter() - started

    record_hot_path(
        "membership_overhead",
        reference_seconds=off_seconds,
        optimized_seconds=on_seconds,
        gate=False,
        clients=4,
        planned_ops=on.planned,
        checkpoints_installed=on.checkpoints_installed,
        epoch=on.epoch,
        growth_ratio_on=on.growth_ratio,
        growth_ratio_off=off.growth_ratio,
        latency_p99=on.latency_p99,
    )

    # Fault-free, the lease layer must be invisible: no epochs, no
    # evictions, and a checkpoint chain / latency profile identical to
    # the membership-off run.
    assert on.epoch == 0 and on.evicted_clients == ()
    assert on.checkpoints_installed == off.checkpoints_installed >= 10
    assert (on.latency_p50, on.latency_p95, on.latency_p99) == (
        off.latency_p50, off.latency_p95, off.latency_p99
    )
    assert on.completed == on.planned == off.completed
    assert on.checker_ok == off.checker_ok == {
        "linearizability": True, "causal": True
    }
    assert on.failed_clients == off.failed_clients == 0
