"""Scale-harness regression: bounded state must not cost throughput.

The open-loop harness (``repro.workloads.scale``) drives the FAUST
system with Poisson arrivals and samples resident state; this bench runs
the same seeded workload with checkpointing on and off and records the
wall-clock *ratio* through ``record_hot_path`` (``scale_bounded_state``,
informational — checkpointing trades a handful of offline-channel
messages for unbounded memory, so the ratio hovers near 1 and mostly
measures scheduler noise; what is gated here are the structural
findings, which hold on any machine):

* checkpointing keeps the post-warmup growth ratio of the resident
  aggregate near 1 while the uncheckpointed run keeps growing;
* operation latency percentiles are identical — the checkpoint protocol
  rides the offline channel and never touches the data path;
* both runs complete the full planned schedule with clean checkers.
"""

from __future__ import annotations

import time

from repro.faust.checkpoint import CheckpointPolicy
from repro.workloads.generator import OpenLoopConfig
from repro.workloads.scale import ScaleConfig, run_scale


def _config(bench_seed: int, checkpoint) -> ScaleConfig:
    return ScaleConfig(
        num_clients=4,
        seed=bench_seed,
        open_loop=OpenLoopConfig(rate=0.15, duration=400.0),
        checkpoint=checkpoint,
        sample_every=20.0,
    )


def test_scale_open_loop_bounded_state(bench_seed, record_hot_path):
    started = time.perf_counter()
    off = run_scale(_config(bench_seed, None))
    off_seconds = time.perf_counter() - started

    started = time.perf_counter()
    on = run_scale(
        _config(bench_seed, CheckpointPolicy(interval=16, keep_tail=2))
    )
    on_seconds = time.perf_counter() - started

    record_hot_path(
        "scale_bounded_state",
        reference_seconds=off_seconds,
        optimized_seconds=on_seconds,
        gate=False,
        clients=4,
        planned_ops=on.planned,
        checkpoints_installed=on.checkpoints_installed,
        growth_ratio_on=on.growth_ratio,
        growth_ratio_off=off.growth_ratio,
        final_bounded_on=on.samples[-1].bounded_total,
        final_bounded_off=off.samples[-1].bounded_total,
        latency_p99=on.latency_p99,
    )

    # Structural findings — machine-independent, asserted every run.
    assert on.checkpoints_installed >= 10
    assert on.growth_ratio < off.growth_ratio
    assert on.samples[-1].bounded_total < off.samples[-1].bounded_total
    assert (on.latency_p50, on.latency_p95, on.latency_p99) == (
        off.latency_p50, off.latency_p95, off.latency_p99
    )
    assert on.completed == on.planned == off.completed
    assert on.checker_ok == off.checker_ok == {
        "linearizability": True, "causal": True
    }
    assert on.failed_clients == off.failed_clients == 0
