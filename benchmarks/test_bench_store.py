"""Micro-benchmarks of the storage engine hot paths.

The log append is on the critical path of every SUBMIT/COMMIT (the WAL
record is written before the REPLY leaves the server), checkpoints bound
recovery time, and recovery itself bounds how long an outage extends —
the three numbers a deployment of the persistent server must size.  Runs
against both media: in-memory (the deterministic simulation's "disk")
and a real directory.
"""

from __future__ import annotations

import random

import pytest

from repro.common.types import OpKind
from repro.crypto.keystore import KeyStore
from repro.store import (
    DirectoryMedium,
    InMemoryMedium,
    LogStructuredEngine,
    decode_server_state,
    encode_server_state,
)
from repro.ustor.messages import InvocationTuple, SubmitMessage
from repro.ustor.server import ServerState, apply_submit
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts
from repro.workloads.runner import SystemBuilder

NUM_CLIENTS = 8


def _submit_batch(count: int) -> list[SubmitMessage]:
    """Deterministic, signature-complete SUBMITs round-robining clients."""
    store = KeyStore(NUM_CLIENTS, scheme="hmac")
    messages = []
    timestamps = [0] * NUM_CLIENTS
    for k in range(count):
        client = k % NUM_CLIENTS
        timestamps[client] += 1
        t = timestamps[client]
        signer = store.signer(client)
        messages.append(
            SubmitMessage(
                timestamp=t,
                invocation=InvocationTuple(
                    client=client,
                    opcode=OpKind.WRITE,
                    register=client,
                    submit_sig=signer.sign("SUBMIT", OpKind.WRITE, client, t),
                ),
                value=b"v" * 64,
                data_sig=signer.sign("DATA", t, b"h"),
            )
        )
    return messages


def _loaded_state(messages: list[SubmitMessage]) -> ServerState:
    state = ServerState.initial(NUM_CLIENTS)
    for message in messages:
        apply_submit(state, message)
    return state


@pytest.mark.parametrize(
    "medium_factory",
    [InMemoryMedium, "directory"],
    ids=["memory-medium", "directory-medium"],
)
def test_wal_append_throughput(benchmark, medium_factory, tmp_path):
    """Cost of logging one SUBMIT transition (per-operation overhead)."""
    messages = _submit_batch(200)

    def append_all():
        medium = (
            DirectoryMedium(tmp_path / "wal-bench")
            if medium_factory == "directory"
            else medium_factory()
        )
        medium.truncate(LogStructuredEngine.WAL)
        engine = LogStructuredEngine(
            NUM_CLIENTS, medium=medium, snapshot_interval=10**9
        )
        for message in messages:
            engine.log_submit(message)
        return engine.wal_appends

    assert benchmark(append_all) == 200


def test_snapshot_checkpoint(benchmark):
    """Cost of one checkpoint (canonical encode + atomic replace)."""
    state = _loaded_state(_submit_batch(200))
    engine = LogStructuredEngine(NUM_CLIENTS, snapshot_interval=10**9)

    def one_checkpoint():
        engine.checkpoint(state)
        return engine.last_snapshot_bytes

    assert benchmark(one_checkpoint) > 0


def test_recovery_replay_throughput(benchmark):
    """Cost of crash recovery: snapshot load + WAL replay of 200 records."""
    messages = _submit_batch(200)
    live = LogStructuredEngine(NUM_CLIENTS, snapshot_interval=10**9)
    state = live.recover()
    for message in messages:
        apply_submit(state, message)
        live.log_submit(message)

    def recover():
        return LogStructuredEngine(NUM_CLIENTS, medium=live.medium).recover()

    recovered = benchmark(recover)
    assert encode_server_state(recovered) == encode_server_state(state)


def test_state_codec_roundtrip(benchmark):
    """Canonical encode+decode of a populated ServerState."""
    state = _loaded_state(_submit_batch(200))

    def roundtrip():
        return decode_server_state(encode_server_state(state))

    assert benchmark(roundtrip) == state


def test_workload_throughput_log_engine(benchmark):
    """End-to-end simulated throughput with WAL+snapshot persistence on —
    compare against test_ustor_throughput (volatile) in
    test_bench_protocol.py for the durability overhead."""

    def run():
        system = SystemBuilder(num_clients=4, seed=9, storage="log").build()
        scripts = generate_scripts(
            4,
            WorkloadConfig(
                ops_per_client=25, read_fraction=0.5, mean_think_time=0.0
            ),
            random.Random(9),
        )
        driver = Driver(system)
        driver.attach_all(scripts)
        assert driver.run_to_completion(timeout=10_000_000)
        return driver.stats.total_completed()

    assert benchmark(run) == 100
