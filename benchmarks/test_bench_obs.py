"""Overhead benchmarks for the ``repro.obs`` metrics registry.

The observability instrumentation sits on the protocol hot seams —
session op issue/settle, batching flushes, server group commits — and
its contract is that the *default* (disabled) registry is a near-no-op:
at most 5% on top of the digest-chain and TLV-encode hot paths that
dominate those seams.  Each test times a protocol-shaped loop twice:

* **bare** — the digest/encode work alone, shaped exactly like
  ``test_bench_perf.py``'s workloads;
* **instrumented** — the same work plus the registry calls a hot seam
  makes per operation (counter bumps and one histogram observation, the
  density of ``Session._submit``/``_settle`` and the flush seam).

With the default ``NullRegistry`` the instrumented/bare ratio must stay
under :data:`OVERHEAD_BUDGET`; timings are best-of-``k`` minima and the
ratio gets a bounded retry so one noisy scheduler tick cannot fail the
gate.  The same loops re-timed under a live
:class:`~repro.obs.registry.Registry` are recorded ``gate=False``:
real bucket arithmetic is a cost we report but do not gate on.

The gated ``hot_paths`` entries store *reference = instrumented,
optimized = bare*, so the recorded ratio IS the overhead factor (just
above 1.0).  The 5% budget is enforced by the in-test assertion, which
runs in the same CI job as the regression pipeline; the baseline entry
keeps the pipeline aware the path exists (a vanished gated hot path
still fails CI).
"""

from __future__ import annotations

import gc
import time

from repro.common.encoding import encode
from repro.common.types import OpKind
from repro.obs.registry import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    Registry,
    get_registry,
    use_registry,
)
from repro.ustor.digests import extend_digest

#: Ceiling on instrumented/bare wall-clock with the registry disabled.
OVERHEAD_BUDGET = 1.05

#: Interleaved sampling rounds bounding the noise-floor search.
MEASURE_ATTEMPTS = 16


def _best_seconds(fn, repeats: int = 5) -> float:
    """Minimum wall-clock of ``repeats`` runs of ``fn`` (noise floor)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def _measure_overhead(bare, instrumented):
    """``(ratio, bare_seconds, instrumented_seconds)`` from noise floors.

    A single back-to-back timing pair swings by ±10% on a busy machine —
    far more than the ~2% effect under measurement — so the ratio is
    taken over the *global minima* of interleaved best-of-k samples:
    minima converge on each loop's true floor, where the instrumented
    loop's strictly-greater work shows up as a ratio just above 1.
    Sampling stops once the floors have separated cleanly (ratio between
    1 and the budget) or at the attempt bound, so one preempted run can
    neither flake the gate nor end the measurement early.
    """
    bare()  # warm caches (digest memo / encoding) outside the timings
    instrumented()
    best_bare = best_instrumented = float("inf")
    ratio = float("inf")
    was_collecting = gc.isenabled()
    gc.disable()  # a collection pause dwarfs the effect being measured
    try:
        for attempt in range(MEASURE_ATTEMPTS):
            best_bare = min(best_bare, _best_seconds(bare))
            best_instrumented = min(
                best_instrumented, _best_seconds(instrumented)
            )
            ratio = best_instrumented / best_bare
            if attempt >= 1 and 1.0 <= ratio <= OVERHEAD_BUDGET:
                break
    finally:
        if was_collecting:
            gc.enable()
    return ratio, best_bare, best_instrumented


# --------------------------------------------------------------------- #
# Digest-chain ops under the session issue/settle seam
# --------------------------------------------------------------------- #

DIGEST_OPS, CHAIN_LENGTH, CLIENTS = 32, 64, 8


def _bare_digest_ops(ops: int, length: int, clients: int):
    for _ in range(ops):
        digest = None
        for k in range(length):
            digest = extend_digest(digest, k % clients)


def _instrumented_digest_ops(ops, length, clients, issued, settled, latency):
    # One op = one updateVersion-sized chain fold; the seam bumps the
    # issued/settled counters and observes one latency per op — exactly
    # Session._submit/_settle's density.
    for _ in range(ops):
        issued.inc()
        digest = None
        for k in range(length):
            digest = extend_digest(digest, k % clients)
        settled.inc()
        latency.observe(float(length))


def test_digest_seam_overhead_with_registry_off(record_hot_path):
    registry = get_registry()
    assert not registry.enabled, "benchmarks assume the default NullRegistry"
    issued = registry.counter("bench.obs.issued")
    settled = registry.counter("bench.obs.settled")
    latency = registry.histogram("bench.obs.latency", LATENCY_BUCKETS)

    ratio, bare_seconds, instrumented_seconds = _measure_overhead(
        lambda: _bare_digest_ops(DIGEST_OPS, CHAIN_LENGTH, CLIENTS),
        lambda: _instrumented_digest_ops(
            DIGEST_OPS, CHAIN_LENGTH, CLIENTS, issued, settled, latency
        ),
    )
    record_hot_path(
        "obs_registry_off_digest",
        instrumented_seconds,
        bare_seconds,
        ops=DIGEST_OPS,
        chain_length=CHAIN_LENGTH,
        overhead_percent=round((ratio - 1.0) * 100.0, 2),
    )
    assert ratio <= OVERHEAD_BUDGET, (
        f"disabled-registry instrumentation costs {100 * (ratio - 1):.1f}% "
        f"on the digest hot path (budget {100 * (OVERHEAD_BUDGET - 1):.0f}%)"
    )


def test_digest_seam_cost_with_registry_on(record_hot_path):
    with use_registry(Registry()) as registry:
        issued = registry.counter("bench.obs.issued")
        settled = registry.counter("bench.obs.settled")
        latency = registry.histogram("bench.obs.latency", LATENCY_BUCKETS)
        bare = lambda: _bare_digest_ops(DIGEST_OPS, CHAIN_LENGTH, CLIENTS)
        instrumented = lambda: _instrumented_digest_ops(
            DIGEST_OPS, CHAIN_LENGTH, CLIENTS, issued, settled, latency
        )
        bare()
        instrumented()
        bare_seconds = _best_seconds(bare)
        instrumented_seconds = _best_seconds(instrumented)
        # Live recording really happened (not optimised away).
        assert issued.value > 0
        assert latency.count > 0
    record_hot_path(
        "obs_registry_on_digest",
        instrumented_seconds,
        bare_seconds,
        gate=False,  # live bucket arithmetic is a machine property
        ops=DIGEST_OPS,
        chain_length=CHAIN_LENGTH,
    )


# --------------------------------------------------------------------- #
# TLV-encode batches under the flush / group-commit seam
# --------------------------------------------------------------------- #

ENCODE_ROUNDS = 200


def _protocol_payloads(n: int = 8) -> list[tuple]:
    digest = b"\xaa" * 32
    vector = tuple(range(n))
    digests = tuple(digest for _ in range(n))
    return [
        ("SUBMIT", OpKind.WRITE, 3, 17),
        ("SUBMIT", OpKind.READ, 5, 42),
        ("DATA", 17, digest),
        ("COMMIT", vector, digests),
        ("PROOF", digest),
        ("VALUE", b"v" * 64),
    ]


def _bare_encode_batches(rounds: int, payloads: list[tuple]):
    for _ in range(rounds):
        for payload in payloads:
            encode(*payload)


def _instrumented_encode_batches(rounds, payloads, flushes, batch_ops):
    # One round = one flushed batch / group commit: a counter bump and
    # one batch-size observation per batch, not per frame — the density
    # of Session.flush and the server's group-commit seam.
    size = float(len(payloads))
    for _ in range(rounds):
        for payload in payloads:
            encode(*payload)
        flushes.inc()
        batch_ops.observe(size)


def test_encode_seam_overhead_with_registry_off(record_hot_path):
    registry = get_registry()
    assert not registry.enabled, "benchmarks assume the default NullRegistry"
    flushes = registry.counter("bench.obs.flushes")
    batch_ops = registry.histogram("bench.obs.batch_ops", COUNT_BUCKETS)
    payloads = _protocol_payloads()

    ratio, bare_seconds, instrumented_seconds = _measure_overhead(
        lambda: _bare_encode_batches(ENCODE_ROUNDS, payloads),
        lambda: _instrumented_encode_batches(
            ENCODE_ROUNDS, payloads, flushes, batch_ops
        ),
    )
    record_hot_path(
        "obs_registry_off_encode",
        instrumented_seconds,
        bare_seconds,
        rounds=ENCODE_ROUNDS,
        payloads=len(payloads),
        overhead_percent=round((ratio - 1.0) * 100.0, 2),
    )
    assert ratio <= OVERHEAD_BUDGET, (
        f"disabled-registry instrumentation costs {100 * (ratio - 1):.1f}% "
        f"on the encode hot path (budget {100 * (OVERHEAD_BUDGET - 1):.0f}%)"
    )


def test_encode_seam_cost_with_registry_on(record_hot_path):
    payloads = _protocol_payloads()
    with use_registry(Registry()) as registry:
        flushes = registry.counter("bench.obs.flushes")
        batch_ops = registry.histogram("bench.obs.batch_ops", COUNT_BUCKETS)
        bare = lambda: _bare_encode_batches(ENCODE_ROUNDS, payloads)
        instrumented = lambda: _instrumented_encode_batches(
            ENCODE_ROUNDS, payloads, flushes, batch_ops
        )
        bare()
        instrumented()
        bare_seconds = _best_seconds(bare)
        instrumented_seconds = _best_seconds(instrumented)
        assert flushes.value > 0
        assert batch_ops.count > 0
    record_hot_path(
        "obs_registry_on_encode",
        instrumented_seconds,
        bare_seconds,
        gate=False,  # live bucket arithmetic is a machine property
        rounds=ENCODE_ROUNDS,
        payloads=len(payloads),
    )
