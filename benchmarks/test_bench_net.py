"""Loopback throughput/latency of the real TCP transport.

Wall-clock numbers over real sockets measure the machine (kernel, loop
implementation, scheduler jitter) at least as much as our code, so every
ratio recorded here is ``gate=False``: stamped into ``BENCH_*.json`` for
the performance trajectory, never failed on.  The interesting trend is
the per-operation cost of the TCP path relative to the in-process
simulator — i.e. what a real deployment pays for real sockets.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.api.session import as_session
from repro.net.client import NetRuntime, open_tcp_system
from repro.net.server import NetServerHost
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts
from repro.workloads.runner import SystemBuilder

pytestmark = pytest.mark.net

OPS_PER_CLIENT = 40
NUM_CLIENTS = 3


def _open_loopback(num_clients: int):
    runtime = NetRuntime()
    host = NetServerHost(num_clients)
    runtime.run_coroutine(host.start())
    system = open_tcp_system(
        num_clients, (host.endpoint,), runtime=runtime, default_timeout=30.0
    )
    system.hosts.append(host)
    system.owns_runtime = True
    return system


def _drive(system, num_clients: int, seed: int) -> float:
    """Run the standard workload; returns wall seconds for the op phase."""
    scripts = generate_scripts(
        num_clients,
        WorkloadConfig(
            ops_per_client=OPS_PER_CLIENT,
            read_fraction=0.5,
            mean_think_time=0.0,
        ),
        random.Random(seed),
    )
    driver = Driver(system)
    driver.attach_all(scripts)
    started = time.perf_counter()
    assert driver.run_to_completion(timeout=120.0)
    return time.perf_counter() - started


def test_loopback_workload_throughput_vs_sim(record_hot_path, bench_seed):
    total_ops = NUM_CLIENTS * OPS_PER_CLIENT

    sim_system = SystemBuilder(num_clients=NUM_CLIENTS, seed=bench_seed).build()
    sim_seconds = _drive(sim_system, NUM_CLIENTS, bench_seed)
    assert len(sim_system.history()) == total_ops

    tcp_system = _open_loopback(NUM_CLIENTS)
    with tcp_system:
        tcp_seconds = _drive(tcp_system, NUM_CLIENTS, bench_seed)
        assert len(tcp_system.history()) == total_ops
        assert not any(c.failed for c in tcp_system.clients)

    record_hot_path(
        "net_tcp_loopback_vs_sim_workload",
        reference_seconds=tcp_seconds,
        optimized_seconds=sim_seconds,
        gate=False,  # wall-clock sockets: a machine property, not ours
        total_ops=total_ops,
        tcp_ops_per_second=total_ops / tcp_seconds,
        sim_ops_per_second=total_ops / sim_seconds,
    )


def test_loopback_write_latency(record_hot_path):
    # Single-client, serial writes: each one is a full SUBMIT/REPLY (+
    # COMMIT) round trip over the socket, so seconds/op is the loopback
    # end-to-end latency floor.
    rounds = 50
    system = _open_loopback(1)
    with system:
        session = as_session(system, 0)
        session.write_sync(b"warmup")
        started = time.perf_counter()
        for i in range(rounds):
            session.write_sync(b"x" * 64)
        elapsed = time.perf_counter() - started

    record_hot_path(
        "net_tcp_loopback_write_latency",
        reference_seconds=elapsed,
        optimized_seconds=elapsed,  # not a ratio: the raw latency is the datum
        gate=False,
        rounds=rounds,
        seconds_per_op=elapsed / rounds,
        ops_per_second=rounds / elapsed,
    )
