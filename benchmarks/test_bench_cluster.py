"""Cluster-layer benchmarks: routing overhead and shard scaling.

Two questions a deployment sizer asks of `repro.cluster`:

* what does the cluster facade *cost* over the bare protocol (the
  1-shard embedding should be near-free), and
* how does end-to-end throughput move as the same workload spreads over
  more shards (more servers, same register space).

All randomness comes from the pinned ``bench_seed``/``bench_rng``
fixtures, so runs are replayable and the emitted ``BENCH_*.json``
results are comparable across commits.
"""

from __future__ import annotations

import random

import pytest

from repro.api import FaustParams, SystemConfig, open_system
from repro.common.types import OpKind
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts


def _quiet(num_clients: int, shards: int, seed: int) -> SystemConfig:
    return SystemConfig(
        num_clients=num_clients,
        shards=shards,
        seed=seed,
        faust=FaustParams(enable_dummy_reads=False, enable_probes=False),
    )


def _run_cluster_workload(num_clients: int, shards: int, ops_per_client: int, seed: int) -> int:
    # The seed is fixed per benchmark (not drawn per call), so every
    # timing round — and every run of this commit — times the exact same
    # seeded workload.
    system = open_system(_quiet(num_clients, shards, seed), backend="cluster")
    scripts = generate_scripts(
        num_clients,
        WorkloadConfig(
            ops_per_client=ops_per_client, read_fraction=0.5, mean_think_time=0.0
        ),
        random.Random(seed),
    )
    driver = Driver(system)
    driver.attach_all(scripts)
    assert driver.run_to_completion(timeout=10_000_000)
    return driver.stats.total_completed()


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_cluster_throughput_by_shard_count(benchmark, shards, bench_seed):
    ops = benchmark(_run_cluster_workload, 8, shards, 15, bench_seed + shards)
    assert ops == 8 * 15


def test_cluster_session_routing_overhead(benchmark, bench_seed):
    """Synchronous cross-shard ping-pong through the full session facade.

    A fresh system per round (pedantic ``setup``): rounds must not time a
    progressively larger accumulated history.
    """

    def fresh_sessions():
        system = open_system(_quiet(4, 2, bench_seed), backend="cluster")
        return (system.sessions(),), {}

    def ping_pong(sessions):
        done = 0
        for session in sessions:
            session.write_sync(b"x" * 32)
            session.read_sync((session.client_id + 1) % 4)
            done += 2
        return done

    result = benchmark.pedantic(
        ping_pong, setup=fresh_sessions, rounds=5, iterations=1, warmup_rounds=0
    )
    assert result == 8


def test_split_brain_shard_scenario_end_to_end(benchmark):
    """The acceptance scenario, timed (and its invariants re-checked)."""
    from repro.workloads.scenarios import split_brain_shard_scenario

    result = benchmark.pedantic(
        lambda: split_brain_shard_scenario(
            num_clients=6, shards=4, forked_shards=(1,), seed=41,
            ops_per_client=8, run_for=300.0,
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert result.exact_detection
    assert result.avoiders_completed()
