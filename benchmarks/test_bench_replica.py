"""Replica-layer benchmarks: what rollback resistance costs.

The quorum buys masking and O(1) conviction at an inherently n-fold
price — every SUBMIT/COMMIT broadcast ``n`` ways, every replica
REPLYing, plus a constant attestation per REPLY.  These benchmarks
price that trade concretely:

* **write amplification** — the same seeded workload on a single server
  vs. a 3-replica group with durable counters, recorded as a
  ``gate=False`` hot-path ratio (the factor measures the topology, not
  our code: it must not fail CI when the baseline machine differs);
* **coordinator micro-cost** — quorum resolution is client-side
  bookkeeping on the latency path of every operation, so its per-REPLY
  cost is timed directly;
* **E18** — the rollback experiment's headline findings re-asserted in
  quick mode, like every other reproduced claim in this suite.
"""

from __future__ import annotations

import random
import time

from repro.replica.coordinator import QuorumCoordinator
from repro.ustor.messages import ReplyMessage
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts
from repro.workloads.runner import SystemBuilder


def _run_workload(seed: int, replicas: int, counter: str | None):
    system = SystemBuilder(
        num_clients=4, seed=seed, replicas=replicas, counter=counter
    ).build()
    scripts = generate_scripts(
        4,
        WorkloadConfig(ops_per_client=10, read_fraction=0.5, mean_think_time=0.0),
        random.Random(seed),
    )
    driver = Driver(system)
    driver.attach_all(scripts)
    system.run(until=1_000_000.0)
    assert driver.stats.all_done()
    return system.trace.total_bytes()


def test_replica_write_amplification(record_hot_path, bench_seed):
    """3 replicas + counters vs. the bare single server, same workload."""
    started = time.perf_counter()
    single_bytes = _run_workload(bench_seed, replicas=1, counter=None)
    single_seconds = time.perf_counter() - started

    started = time.perf_counter()
    replicated_bytes = _run_workload(bench_seed, replicas=3, counter="durable")
    replicated_seconds = time.perf_counter() - started

    amplification = record_hot_path(
        "replica_write_amplification",
        reference_seconds=replicated_seconds,
        optimized_seconds=single_seconds,
        gate=False,
        replicas=3,
        counter="durable",
        single_wire_bytes=single_bytes,
        replicated_wire_bytes=replicated_bytes,
        wire_bytes_ratio=replicated_bytes / single_bytes,
    )
    # The wire cost is structural — n SUBMIT copies, n REPLYs, one
    # attestation each — so the byte ratio must sit near n, and the
    # wall-clock amplification should not be wildly super-linear.
    assert 2.0 <= replicated_bytes / single_bytes <= 4.5
    assert amplification >= 1.0


def test_quorum_resolution_per_reply_cost(benchmark):
    """Absorbing one REPLY into a 3-replica round, steady state."""
    replicas = ("S/r0", "S/r1", "S/r2")
    reply = ReplyMessage(
        commit_index=0,
        last_version=None,
        pending=(),
        proofs=(None,),
    )

    def resolve_rounds():
        group = QuorumCoordinator(replicas)
        for index in range(200):
            group.begin_round(False, b"op-%d" % index)
            for name in replicas:
                group.absorb(name, reply)
        return group.rounds_resolved

    resolved = benchmark(resolve_rounds)
    assert resolved == 200


def test_e18_replica_rollback_experiment():
    """E18's headline findings, quick mode (see EXPERIMENTS.md)."""
    from repro.experiments import e18_replica_rollback

    result = e18_replica_rollback.run(quick=True)
    assert result.findings["single-server rollback is detected but halts the workload"]
    assert result.findings["an honest majority masks every deviant reply"]
    assert result.findings["a durable counter convicts the rolled-back replica"]
    assert result.findings["the counter catch is O(1) operations"]
    assert result.findings["a volatile counter falsely accuses honest recovery"]
    assert result.findings["wire traffic scales with the replica count"]
