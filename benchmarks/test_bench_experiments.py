"""One benchmark per experiment (E1-E11); asserts each headline finding.

This is the harness behind EXPERIMENTS.md: every figure and analytical
claim of the paper is regenerated here in quick mode.  Full-size sweeps:
``python -m repro.experiments --write``.
"""

from __future__ import annotations

from repro.experiments import (
    e01_stability_cut,
    e02_weak_fork_separation,
    e03_rounds_latency,
    e04_msg_complexity,
    e05_wait_freedom,
    e06_linearizability,
    e07_causality_attacks,
    e08_detection_latency,
    e09_stability_latency,
    e10_server_gc,
    e11_crypto_cost,
    e12_notion_separation,
    e13_digest_ablation,
    e14_definition5_validation,
    e19_checkpoint_memory,
)


def test_e01_figure2_stability_cut(run_experiment):
    result = run_experiment(e01_stability_cut)
    assert result.findings["figure-2 cut (10, 8, 3) emitted"]
    assert not result.findings["false failure alarms"]


def test_e02_figure3_separation(run_experiment):
    result = run_experiment(e02_weak_fork_separation)
    assert result.findings["history matches Figure 3"]
    assert result.findings["separation matches the paper"]
    assert result.findings["protocol-derived views certify weak fork-linearizability"]
    assert result.findings["FAUST detects the fork at all clients via offline exchange"]


def test_e03_rounds_and_latency(run_experiment):
    result = run_experiment(e03_rounds_latency)
    assert result.findings["USTOR critical path is one round per op"]
    assert result.findings["USTOR latency flat under contention"]
    assert result.findings["lock-step latency grows with contention"]


def test_e04_linear_message_complexity(run_experiment):
    result = run_experiment(e04_msg_complexity)
    assert result.findings["growth is linear (R^2 of linear fit)"] > 0.99


def test_e05_wait_freedom(run_experiment):
    result = run_experiment(e05_wait_freedom)
    assert result.findings["USTOR wait-free in every run"]
    assert result.findings["lock-step blocked in every run"]


def test_e06_linearizability_rate(run_experiment):
    result = run_experiment(e06_linearizability)
    assert result.findings["claim holds"]


def test_e07_causality_under_attack(run_experiment):
    result = run_experiment(e07_causality_attacks)
    assert result.findings["causality holds under every attack"]


def test_e08_detection(run_experiment):
    result = run_experiment(e08_detection_latency)
    assert result.findings["all correct clients detect the fork (every DELTA)"]
    assert result.findings["false alarms across correct-server runs"].startswith("0/")


def test_e09_stability_latency(run_experiment):
    result = run_experiment(e09_stability_latency)
    assert result.findings["every operation eventually became stable"]
    assert result.findings["stable prefixes are linearizable"]


def test_e10_garbage_collection(run_experiment):
    result = run_experiment(e10_server_gc)
    assert result.findings["eager mode drains L completely at quiescence"]
    assert result.findings["piggyback mode leaves residual entries in L"]


def test_e11_crypto_cost(run_experiment):
    result = run_experiment(e11_crypto_cost)
    assert result.findings["hmac stand-in speedup over ed25519 (sign)"] > 1.0


def test_e12_notion_separation(run_experiment):
    result = run_experiment(e12_notion_separation)
    assert result.findings["therefore the notions are incomparable (Section 4 claim)"]


def test_e13_digest_ablation(run_experiment):
    result = run_experiment(e13_digest_ablation)
    assert result.findings["figure-3 join detected only with digests"]
    assert result.findings["split-brain detected by both"]


def test_e14_definition5_validation(run_experiment):
    result = run_experiment(e14_definition5_validation)
    assert result.findings["Definition 5 holds in every run"]


def test_e19_checkpoint_memory(run_experiment):
    result = run_experiment(e19_checkpoint_memory)
    assert result.findings["uncheckpointed resident state keeps growing"]
    assert result.findings["checkpointing flattens the growth curve (ratio ~1)"]
    assert result.findings["latency percentiles are identical in every column"]
    assert result.findings["no client failed and every audit stayed clean"]
