"""Benchmarks of the consistency checkers on protocol-generated histories.

The fast linearizability/causality checkers are polynomial and must stay
usable on long recorded runs; the exhaustive checkers are exponential and
benchmarked only on figure-sized inputs.
"""

from __future__ import annotations

import random

import pytest

from repro.consistency.causal import check_causal_consistency
from repro.consistency.fork import check_fork_linearizability_exhaustive
from repro.consistency.linearizability import (
    check_linearizability,
    check_linearizability_exhaustive,
)
from repro.consistency.weak_fork import (
    check_weak_fork_linearizability_exhaustive,
    validate_weak_fork_linearizability,
)
from repro.ustor.viewhistory import build_client_views
from repro.workloads.generator import Driver, WorkloadConfig, generate_scripts
from repro.workloads.runner import SystemBuilder
from repro.workloads.scenarios import figure3_scenario


def _recorded_history(num_clients: int, ops_per_client: int, seed: int):
    system = SystemBuilder(num_clients=num_clients, seed=seed).build()
    scripts = generate_scripts(
        num_clients,
        WorkloadConfig(ops_per_client=ops_per_client, read_fraction=0.6, mean_think_time=0.0),
        random.Random(seed),
    )
    driver = Driver(system)
    driver.attach_all(scripts)
    assert driver.run_to_completion(timeout=10_000_000)
    return system


@pytest.mark.parametrize("total_ops", [100, 400])
def test_fast_linearizability_checker(benchmark, total_ops):
    system = _recorded_history(4, total_ops // 4, seed=1)
    history = system.history()
    result = benchmark(check_linearizability, history)
    assert result.ok


def test_causal_checker(benchmark):
    system = _recorded_history(4, 50, seed=2)
    history = system.history()
    result = benchmark(check_causal_consistency, history)
    assert result.ok


def test_weak_fork_validator_on_protocol_views(benchmark):
    system = _recorded_history(4, 25, seed=3)
    history = system.history()
    views = build_client_views(history, system.recorder, system.clients)
    result = benchmark(validate_weak_fork_linearizability, history, views)
    assert result.ok


def test_exhaustive_linearizability_small(benchmark):
    result = figure3_scenario(seed=3)
    verdict = benchmark(check_linearizability_exhaustive, result.history)
    assert not verdict.ok


def test_exhaustive_fork_checker_figure3(benchmark):
    result = figure3_scenario(seed=3)
    verdict = benchmark(check_fork_linearizability_exhaustive, result.history)
    assert not verdict.ok


def test_exhaustive_weak_fork_checker_figure3(benchmark):
    result = figure3_scenario(seed=3)
    verdict = benchmark(check_weak_fork_linearizability_exhaustive, result.history)
    assert verdict.ok
