"""Before/after benchmarks of the optimized protocol hot paths.

Each test times a protocol-shaped workload twice — once through the
*reference* implementation (the executable specification kept alongside
each fast path) and once through the *optimized* one — asserts the
speedup the ISSUE demands, and records both timings plus the ratio into
this session's ``BENCH_*.json`` via the ``record_hot_path`` fixture.

Ratios are what the regression pipeline gates on: they are measured in
the same process on the same machine, so they transfer across hardware
in a way raw durations do not (PERFORMANCE.md explains the pipeline).

Workload shapes mirror the protocol:

* the digest chain is extended link by link and *re-observed* by every
  client that processes a REPLY naming it (``n`` observers per link);
* encode payloads are the SUBMIT/COMMIT/DATA signature payloads of
  Algorithm 1 with realistic vector sizes;
* decode payloads are store-codec-sized state blobs;
* signature verification repeats across observers exactly as COMMIT and
  PROOF signatures do.
"""

from __future__ import annotations

import time

from repro.common.encoding import (
    decode,
    decode_reference,
    encode,
    encode_reference,
    reset_encoding_caches,
)
from repro.common.types import OpKind
from repro.crypto.keystore import KeyStore
from repro.crypto.signatures import make_scheme
from repro.faust.stability import StabilityTracker
from repro.perf import reset_hot_path_caches
from repro.ustor.digests import (
    extend_digest,
    extend_digest_reference,
    reset_chain_cache,
)
from repro.ustor.version import Version

#: Floor demanded by the ISSUE's acceptance criteria for the two headline
#: hot paths (digest chain, TLV encode/decode).
REQUIRED_SPEEDUP = 1.5


def _best_seconds(fn, repeats: int = 5) -> float:
    """Minimum wall-clock of ``repeats`` runs of ``fn`` (noise floor)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


# --------------------------------------------------------------------- #
# Digest chain updates (Algorithm 1 lines 44-47)
# --------------------------------------------------------------------- #


def _chain_workload(extend, observers: int, length: int, clients: int):
    """``observers`` clients each folding the same ``length``-link chain —
    the shape of updateVersion over a busy pending list."""
    final = None
    for _ in range(observers):
        digest = None
        for k in range(length):
            digest = extend(digest, k % clients)
        final = digest
    return final


def test_digest_chain_speedup(record_hot_path):
    observers, length, clients = 8, 128, 8

    reference_final = _chain_workload(
        extend_digest_reference, observers, length, clients
    )
    optimized_final = _chain_workload(extend_digest, observers, length, clients)
    assert optimized_final == reference_final  # byte-identical fast path

    reference_seconds = _best_seconds(
        lambda: _chain_workload(extend_digest_reference, observers, length, clients)
    )

    def optimized():
        reset_chain_cache()  # cold start: misses included in the timing
        _chain_workload(extend_digest, observers, length, clients)

    optimized_seconds = _best_seconds(optimized)
    speedup = record_hot_path(
        "digest_chain",
        reference_seconds,
        optimized_seconds,
        observers=observers,
        chain_length=length,
        clients=clients,
    )
    assert speedup >= REQUIRED_SPEEDUP


# --------------------------------------------------------------------- #
# TLV encode / decode (under every signature, hash and WAL record)
# --------------------------------------------------------------------- #


def _protocol_payloads(n: int = 8) -> list[tuple]:
    digest = b"\xaa" * 32
    vector = tuple(range(n))
    digests = tuple(digest for _ in range(n))
    return [
        ("SUBMIT", OpKind.WRITE, 3, 17),
        ("SUBMIT", OpKind.READ, 5, 42),
        ("DATA", 17, digest),
        ("COMMIT", vector, digests),
        ("PROOF", digest),
        ("VALUE", b"v" * 64),
    ]


def test_tlv_encode_speedup(record_hot_path):
    payloads = _protocol_payloads()
    rounds = 300

    for payload in payloads:  # byte-identical fast path
        assert encode(*payload) == encode_reference(*payload)

    def run(encoder):
        for _ in range(rounds):
            for payload in payloads:
                encoder(*payload)

    reference_seconds = _best_seconds(lambda: run(encode_reference))

    def optimized():
        reset_encoding_caches()  # cold start: misses included in the timing
        run(encode)

    optimized_seconds = _best_seconds(optimized)
    speedup = record_hot_path(
        "tlv_encode",
        reference_seconds,
        optimized_seconds,
        rounds=rounds,
        payloads=len(payloads),
    )
    assert speedup >= REQUIRED_SPEEDUP


def test_tlv_decode_speedup(record_hot_path):
    # A store-codec-shaped blob: nested sequences of ints, bytes, strings,
    # enum members and Nones, as persisted server state looks on disk.
    state_like = tuple(
        (
            i,
            OpKind.WRITE if i % 2 else OpKind.READ,
            b"\xcd" * 32,
            f"C{i}",
            None,
            tuple(range(8)),
            (True, False, -i * 1_000_003),
        )
        for i in range(16)
    )
    blob = encode(state_like)
    assert decode(blob, enums=(OpKind,)) == decode_reference(blob, enums=(OpKind,))
    rounds = 120

    def run(decoder):
        for _ in range(rounds):
            decoder(blob, enums=(OpKind,))

    reference_seconds = _best_seconds(lambda: run(decode_reference))
    optimized_seconds = _best_seconds(lambda: run(decode))
    speedup = record_hot_path(
        "tlv_decode",
        reference_seconds,
        optimized_seconds,
        rounds=rounds,
        blob_bytes=len(blob),
    )
    assert speedup >= REQUIRED_SPEEDUP


# --------------------------------------------------------------------- #
# Deduplicated signature verification (Algorithm 1 lines 35/41/49)
# --------------------------------------------------------------------- #


def test_verification_dedup_speedup(record_hot_path):
    """COMMIT/PROOF signatures are re-verified by every observing client;
    the shared per-keystore cache does the public-key work once.

    Ed25519 — the paper-faithful scheme — is where dedup matters: one
    verification costs tens of microseconds of curve arithmetic.  Both
    paths pay the canonical encode; the reference path re-runs the scheme
    per observer (a fresh keystore's cold cache), the optimized path hits
    the shared verdict cache.
    """
    n = 8
    digest = b"\xee" * 32
    vector = tuple(range(n))
    digests = tuple(digest for _ in range(n))
    payload = ("COMMIT", vector, digests)

    scheme = make_scheme("ed25519", n)
    store = KeyStore(n, scheme=scheme)
    signature = store.signer(0).sign(*payload)
    observers = [store.signer(i) for i in range(n)]
    rounds = 20

    def reference():
        # What every observer did before the shared cache: canonical
        # encode + a full scheme verification, per observation.
        for _ in range(rounds):
            for _observer in observers:
                assert scheme.verify(0, signature, encode(*payload))

    def optimized():
        for _ in range(rounds):
            for observer in observers:
                assert observer.verify(0, signature, *payload)

    optimized()  # warm the shared cache once: steady-state protocol shape
    reference_seconds = _best_seconds(reference, repeats=3)
    optimized_seconds = _best_seconds(optimized, repeats=3)
    speedup = record_hot_path(
        "verify_dedup",
        reference_seconds,
        optimized_seconds,
        # Informational: the ratio is (Ed25519 C-extension cost) /
        # (encode + dict probe) — a property of the machine's crypto
        # library vs. interpreter, so it does not transfer to other
        # hardware.  The >= floor below still gates wherever this runs.
        gate=False,
        observers=n,
        rounds=rounds,
        scheme="ed25519",
    )
    assert speedup >= REQUIRED_SPEEDUP


# --------------------------------------------------------------------- #
# Stability-cut advancement (polled after every simulation event)
# --------------------------------------------------------------------- #


def test_stability_cut_speedup(record_hot_path):
    n = 32
    tracker = StabilityTracker(client_id=0, num_clients=n)
    digest = b"\x11" * 32
    # Drive the tracker through n versions so W_i is populated.
    for j in range(n):
        vector = tuple(1 if k <= j else 0 for k in range(n))
        digests = tuple(digest if k <= j else None for k in range(n))
        tracker.absorb(j, Version(vector, digests), now=float(j))
    w = list(tracker.stability_cut())
    polls = 20_000

    def reference():
        for _ in range(polls):
            min(w)  # the pre-optimization rescan per poll

    def optimized():
        for _ in range(polls):
            tracker.stable_timestamp_for_all()

    # The semantic guarantee: the O(1) cached minimum equals the rescan.
    assert tracker.stable_timestamp_for_all() == min(w)
    reference_seconds = _best_seconds(reference)
    optimized_seconds = _best_seconds(optimized)
    record_hot_path(
        "stability_cut_poll",
        reference_seconds,
        optimized_seconds,
        # Informational: method-call vs. builtin-min interpreter ratio —
        # machine/interpreter property, not a portable code property, so
        # no timing assertion here either (a noisy runner must not fail
        # CI over it); the recorded ratio still lands in BENCH json.
        gate=False,
        num_clients=n,
        polls=polls,
    )


def teardown_module(module):
    """Leave process-wide caches fresh for whatever runs next."""
    reset_hot_path_caches()
