"""Crypto-scheme and simulation-kernel micro-benchmarks."""

from __future__ import annotations

import pytest

from repro.common.encoding import encode
from repro.crypto.hashing import hash_values
from repro.crypto.signatures import make_scheme
from repro.sim.network import FixedLatency, Network
from repro.sim.process import Node
from repro.sim.scheduler import Scheduler
from repro.ustor.digests import extend_digest
from repro.ustor.version import Version

PAYLOAD = b"m" * 128


@pytest.mark.parametrize("scheme_name", ["ed25519", "hmac", "insecure"])
def test_sign(benchmark, scheme_name):
    scheme = make_scheme(scheme_name, 2)
    signature = benchmark(scheme.sign, 0, PAYLOAD)
    assert scheme.verify(0, signature, PAYLOAD)


@pytest.mark.parametrize("scheme_name", ["ed25519", "hmac", "insecure"])
def test_verify(benchmark, scheme_name):
    scheme = make_scheme(scheme_name, 2)
    signature = scheme.sign(0, PAYLOAD)
    assert benchmark(scheme.verify, 0, signature, PAYLOAD)


def test_canonical_encoding(benchmark):
    payload = ("COMMIT", tuple(range(32)), tuple(bytes([i]) * 32 for i in range(32)))
    out = benchmark(encode, *payload)
    assert isinstance(out, bytes)


def test_hash_values(benchmark):
    digest = benchmark(hash_values, "DIGEST", b"\x01" * 32, 7)
    assert len(digest) == 32


def test_digest_extension(benchmark):
    digest = benchmark(extend_digest, b"\x02" * 32, 3)
    assert len(digest) == 32


@pytest.mark.parametrize("n", [4, 64])
def test_version_comparison(benchmark, n):
    digest = b"\x03" * 32
    a = Version(tuple(range(n)), tuple(digest for _ in range(n)))
    b = Version(tuple(t + 1 for t in range(n)), tuple(digest for _ in range(n)))
    assert benchmark(a.le, b) is True


def test_scheduler_event_dispatch(benchmark):
    def run():
        scheduler = Scheduler()
        sink = []
        for i in range(1_000):
            scheduler.schedule(float(i % 17), sink.append, i)
        scheduler.run()
        return len(sink)

    assert benchmark(run) == 1_000


def test_network_message_round(benchmark):
    class Echo(Node):
        def on_message(self, src, message):
            if message > 0:
                self.send(src, message - 1)

    def run():
        scheduler = Scheduler()
        network = Network(scheduler, default_latency=FixedLatency(0.5))
        a, b = Echo("A"), Echo("B")
        network.register(a)
        network.register(b)
        a.send("B", 500)  # 500 ping-pong hops
        scheduler.run()
        return scheduler.events_processed

    assert benchmark(run) >= 500
