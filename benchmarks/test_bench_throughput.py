"""End-to-end ops/sec: the batched pipeline vs the unbatched one.

The PR-5 throughput pipeline has four layers — session auto-flush
batching, transport burst coalescing, server group commit, and streaming
incremental audits — and this suite measures them the way the regression
gate needs:

* ``e2e_throughput_audited`` (GATED, >= 2x asserted here): the
  protocol-shaped workload *with periodic consistency audits*, the
  configuration every long-running deployment of the simulator uses.
  The reference pipeline is what the repo did before this PR — per-op
  transport, per-record WAL appends, and a full-history offline
  re-check per audit; the optimized pipeline batches all three and
  audits incrementally in O(delta).  The ratio is dominated by the
  audit-complexity change (O(history) -> O(delta) per audit), which is
  a property of the code, not the machine — it grows with workload
  length, so the floor below is conservative.
* ``e2e_throughput_pipelined`` (informational): the same workload with
  no audits at all.  Batching cannot make the protocol's crypto or
  encoding cheaper (the bytes are identical by design), so this ratio
  measures only the per-event machinery and hovers near 1; it is
  recorded so the trajectory shows where the wall-clock actually goes.

Deterministic structural assertions (scheduler events, WAL appends,
coalesced messages) run on every machine regardless of timing noise.
"""

from __future__ import annotations

import random
import time

from repro.api import BatchingPolicy, FaustParams, SystemConfig, open_system
from repro.consistency import check_causal_consistency, check_linearizability
from repro.sim.network import FixedLatency
from repro.workloads.generator import unique_value

#: Floor demanded by the ISSUE's acceptance criteria for the audited
#: end-to-end pipeline.
REQUIRED_THROUGHPUT_SPEEDUP = 2.0


def _open(num_clients: int, seed: int, batch: int | None, storage: str = "log"):
    return open_system(
        SystemConfig(
            num_clients=num_clients,
            seed=seed,
            latency=FixedLatency(1.0),
            storage=storage,
            batching=None if batch is None else BatchingPolicy(max_batch=batch),
            faust=FaustParams(enable_dummy_reads=False, enable_probes=False),
        ),
        backend="ustor",
    )


def _submit_round(sessions, round_index: int, rng) -> None:
    """One protocol-shaped round: every client writes (even rounds) or
    reads a random register (odd rounds).  The ONE definition of the
    workload shape — the reference and optimized pipelines must measure
    the same thing."""
    for client, session in enumerate(sessions):
        if round_index % 2 == 0:
            session.write(unique_value(client, round_index, 24))
        else:
            session.read(rng.randrange(len(sessions)))


def _pipelined_workload(system, ops_per_client: int, seed: int) -> int:
    """Submit the protocol-shaped workload through pipelined sessions."""
    rng = random.Random(seed)
    sessions = system.sessions()
    for round_index in range(ops_per_client):
        _submit_round(sessions, round_index, rng)
    for session in sessions:
        session.barrier(timeout=200_000)
    return ops_per_client * len(sessions)


def _run_reference(num_clients: int, ops_per_client: int, seed: int,
                   audit_every_rounds: int | None) -> tuple[float, int]:
    """The pre-PR pipeline: unbatched, offline full-history audits."""
    system = _open(num_clients, seed, batch=None)
    rng = random.Random(seed)
    sessions = system.sessions()
    started = time.perf_counter()
    for round_index in range(ops_per_client):
        _submit_round(sessions, round_index, rng)
        if audit_every_rounds and round_index % audit_every_rounds == (
            audit_every_rounds - 1
        ):
            for session in sessions:
                session.barrier(timeout=200_000)
            history = system.history()
            assert check_linearizability(history).ok
            assert check_causal_consistency(history).ok
    for session in sessions:
        session.barrier(timeout=200_000)
    elapsed = time.perf_counter() - started
    return elapsed, system.scheduler.events_processed


def _run_optimized(num_clients: int, ops_per_client: int, seed: int,
                   audit_every: float | None) -> tuple[float, int, object]:
    """The PR pipeline: batched transport + group commit + O(delta) audits."""
    system = _open(num_clients, seed, batch=8)
    auditor = system.attach_audit(every=audit_every) if audit_every else None
    started = time.perf_counter()
    _pipelined_workload(system, ops_per_client, seed)
    if auditor is not None:
        record = auditor.final()
        assert record.ok
    elapsed = time.perf_counter() - started
    return elapsed, system.scheduler.events_processed, system


# --------------------------------------------------------------------- #
# The gated end-to-end ratio (audited protocol-shaped workload)
# --------------------------------------------------------------------- #


def test_e2e_throughput_audited_speedup(record_hot_path, bench_seed):
    num_clients, ops_per_client = 4, 120
    # Reference audits at the same *frequency in operations* the
    # incremental pipeline uses in virtual time (every ~2 rounds = every
    # 8 ops vs audit_every=10 with ~4 ops per time unit).
    reference_seconds, reference_events = _run_reference(
        num_clients, ops_per_client, bench_seed, audit_every_rounds=2
    )
    optimized_seconds, optimized_events, system = _run_optimized(
        num_clients, ops_per_client, bench_seed, audit_every=10.0
    )
    total_ops = num_clients * ops_per_client
    speedup = record_hot_path(
        "e2e_throughput_audited",
        reference_seconds,
        optimized_seconds,
        clients=num_clients,
        ops=total_ops,
        reference_ops_per_sec=total_ops / reference_seconds,
        optimized_ops_per_sec=total_ops / optimized_seconds,
        reference_events=reference_events,
        optimized_events=optimized_events,
    )
    assert speedup >= REQUIRED_THROUGHPUT_SPEEDUP
    # The optimized pipeline must also be structurally lighter.
    assert optimized_events < reference_events


# --------------------------------------------------------------------- #
# The unaudited pipeline (informational ratio + structural assertions)
# --------------------------------------------------------------------- #


def test_e2e_throughput_pipelined(record_hot_path, bench_seed):
    num_clients, ops_per_client = 4, 60

    def run(batch):
        system = _open(num_clients, bench_seed, batch)
        started = time.perf_counter()
        _pipelined_workload(system, ops_per_client, bench_seed)
        return time.perf_counter() - started, system

    reference_seconds, reference = run(None)
    optimized_seconds, optimized = run(8)
    record_hot_path(
        "e2e_throughput_pipelined",
        reference_seconds,
        optimized_seconds,
        # Informational: with no audits the wall clock is dominated by
        # per-op crypto/encoding, which batching leaves byte-identical;
        # the ratio measures interpreter constants, not our code.
        gate=False,
        clients=num_clients,
        ops=num_clients * ops_per_client,
    )
    # The structural claims are deterministic and gate everywhere:
    assert optimized.scheduler.events_processed < reference.scheduler.events_processed
    assert optimized.raw.network.messages_coalesced > 0
    assert optimized.server.group_commits > 0
    # Group commit batches WAL appends: strictly fewer durable writes
    # than logged records.
    engine = optimized.server.engine
    records = engine.group_commit_records + (
        engine.wal_appends - engine.group_commit_batches
    )
    assert engine.wal_appends < records
    # ... and the protocol content is identical: same client versions.
    assert [tuple(c.version.vector) for c in optimized.clients] == [
        tuple(c.version.vector) for c in reference.clients
    ]
    assert [c.version.digests for c in optimized.clients] == [
        c.version.digests for c in reference.clients
    ]


# --------------------------------------------------------------------- #
# Incremental audits are O(delta): the per-audit work tracks the delta,
# not the history length (deterministic counter check).
# --------------------------------------------------------------------- #


def test_incremental_audit_is_o_delta(bench_seed):
    system = _open(4, bench_seed, batch=8)
    auditor = system.attach_audit(every=20.0)
    _pipelined_workload(system, 80, bench_seed)
    auditor.final()
    audits = [a for a in auditor.audits if a.delta_ops > 0]
    assert len(audits) >= 5
    # Every streamed operation is examined exactly once across all
    # audits: the total work equals the stream length (writes counted at
    # invocation + reads at response, once per consistency domain), so
    # per-audit cost is the delta — a full-history re-checker would
    # examine Theta(total) ops at *each* audit instead.
    total_examined = sum(a.delta_ops for a in auditor.audits)
    streamed = max(c.ops_processed for c in auditor.checkers.values())
    assert total_examined == streamed
    late_history_len = sum(a.delta_ops for a in auditor.audits[:-1])
    assert auditor.audits[-1].delta_ops < late_history_len


def test_e17_throughput_experiment():
    """E17's deterministic headline findings hold in quick mode."""
    from repro.experiments import e17_throughput

    result = e17_throughput.run(quick=True)
    assert result.findings[
        "batched runs fire fewer scheduler events in every cell"
    ]
    assert result.findings["transport coalescing engaged in every batched cell"]
    assert result.findings[
        "every cell's history stayed linearizable (honest servers)"
    ]
